//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the slice of proptest this workspace's property tests use:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, range and tuple
//! strategies, [`Strategy::prop_map`], [`collection::vec`], `Just`, and the
//! `prop_assert*` macros. Differences from the real crate:
//!
//! * cases are generated from a **fixed deterministic seed** (derived from
//!   the test name), so suites are reproducible run-to-run;
//! * there is **no shrinking** — a failing case reports its case index and
//!   message and panics immediately.

#[doc(hidden)]
pub use rand as __rand;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values, retrying until `f` accepts one.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 10000 consecutive values: {}",
                self.whence
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Number of elements to generate: a fixed count or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test runner configuration and error types.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
        /// Accepted and ignored (no persistence in the shim).
        pub failure_persistence: Option<()>,
    }

    impl Config {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                failure_persistence: None,
            }
        }
    }

    /// Why a single test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Case rejected (e.g. by `prop_assume`); not counted as a failure.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// `Result` alias used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Derives the deterministic per-test RNG seed from the test path.
    pub fn seed_for(test_path: &str) -> u64 {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`: {}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Rejects the current case unless `cond` holds (retries with a new case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                #![allow(unused_mut)]
                let config: $crate::test_runner::Config = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                let mut ran: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts = (config.cases as u64) * 20 + 1000;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => ran += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} of {} failed (seed {}): {}",
                                ran + 1,
                                stringify!($name),
                                seed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::test_runner::Config::default()) $($rest)*);
    };
}
