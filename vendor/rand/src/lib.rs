//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand` 0.8 it actually uses: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. `StdRng` here is SplitMix64
//! feeding xoshiro256++ — statistically solid for simulation workloads and
//! fully deterministic from a `u64` seed, which is what the test suites and
//! data generators rely on. It makes no cryptographic claims (the real
//! `StdRng` is a CSPRNG; nothing in this workspace needs that).

use core::ops::Range;

/// A random number generator seedable from a fixed-size state.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` — the only constructor this
    /// workspace uses. Mirrors `rand`'s SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core random-value methods, available on every generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods (`gen`, `gen_range`, …).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their "natural" domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can be sampled from (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style rejection-free enough for non-crypto use:
                // widening multiply maps 64 random bits onto [0, span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // `start + f·span` can round up to exactly `end` when f is within
        // half an ulp of 1; clamp to keep the half-open contract.
        if v < self.end {
            v
        } else {
            next_down(self.end)
        }
    }
}

/// Largest representable f64 strictly below `x` (finite `x` only).
/// Local stand-in for `f64::next_down`, which is past this crate's MSRV.
fn next_down(x: f64) -> f64 {
    if x > 0.0 {
        f64::from_bits(x.to_bits() - 1)
    } else if x < 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        // Just below ±0.0: the smallest-magnitude negative subnormal.
        -f64::from_bits(1)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is the one invalid xoshiro state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice extensions: in-place shuffle and random element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u64;
            let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
            self.get(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k draws is well within [0.45, 0.55].
        assert!((sum / 10_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
