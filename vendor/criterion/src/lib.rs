//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion's API its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], [`criterion_group!`], and [`criterion_main!`].
//!
//! Instead of criterion's statistical sampling it runs a short calibration
//! pass, then a fixed measurement window, and prints the median per-iteration
//! wall time. Good enough for relative comparisons during development; swap
//! in the real crate for publishable numbers.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id from a bare parameter (no function component).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: String::new(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing the median per-iteration time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in ~5 ms?
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < Duration::from_millis(5) {
            black_box(f());
            calib_iters += 1;
        }
        let batch = calib_iters.max(1);

        // Measure a handful of batches and keep the median.
        let mut samples: Vec<f64> = Vec::with_capacity(9);
        for _ in 0..9 {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("{label:<50} {:>12}/iter", human(b.ns_per_iter));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; the shim has no sampling to tune.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim has a fixed window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("── {name} ──");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Benchmarks `f` directly, outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }
}

/// Bundles benchmark functions under one name, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
