//! The paper's marketing-analyst scenario (Section 1): compare customer
//! transaction datasets collected from several stores, decide which stores
//! share data characteristics (and can share a marketing strategy), and
//! drill into *which* itemsets drive the differences.
//!
//! Demonstrates: δ between many dataset pairs, the δ* metric embedding,
//! structural operators + rank/select (Section 5.1), and focussed deviation
//! on one department's items.
//!
//! Run with: `cargo run --release --example retail_monitoring`

use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::mining::{Apriori, AprioriParams};

fn main() {
    // Four stores: 1 & 2 share a buying-pattern process, 3 drifts mildly
    // (more patterns), 4 strongly (longer patterns).
    let mut p_mild = AssocGenParams::small();
    p_mild.n_patterns = 80;
    let mut p_strong = AssocGenParams::small();
    p_strong.avg_pattern_len = 7.0;

    let shared = AssocGen::new(AssocGenParams::small(), 42);
    let stores: Vec<(&str, _)> = vec![
        ("store-1", shared.generate(5000, 1)),
        ("store-2", shared.generate(5000, 2)),
        ("store-3", AssocGen::new(p_mild, 43).generate(5000, 3)),
        ("store-4", AssocGen::new(p_strong, 44).generate(5000, 4)),
    ];

    let miner = Apriori::new(AprioriParams::with_minsup(0.02));
    let models: Vec<LitsModel> = stores.iter().map(|(_, d)| miner.mine(d)).collect();

    // --- Pairwise δ* screening (no data scans — Section 4.1.1) ----------
    println!("pairwise δ* (scan-free upper bounds):");
    for i in 0..stores.len() {
        for j in (i + 1)..stores.len() {
            let b = lits_upper_bound(&models[i], &models[j], AggFn::Sum);
            println!("  δ*({}, {}) = {b:.3}", stores[i].0, stores[j].0);
        }
    }

    // --- Exact deviation for the flagged pair ---------------------------
    let dev12 = lits_deviation(
        &models[0],
        &stores[0].1,
        &models[1],
        &stores[1].1,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    let dev14 = lits_deviation(
        &models[0],
        &stores[0].1,
        &models[3],
        &stores[3].1,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    println!(
        "\nexact δ(store-1, store-2) = {:.3}  (same process)",
        dev12.value
    );
    println!(
        "exact δ(store-1, store-4) = {:.3}  (different process)",
        dev14.value
    );
    assert!(dev14.value > dev12.value);

    // --- Section 5.1: which regions drive the difference? ---------------
    // Rank the structural union (= GCR) of the two models by per-region
    // deviation and take the top 5.
    let union = lits_union(models[0].itemsets(), models[3].itemsets());
    let scored = rank(union.clone(), |s| {
        let i = dev14.gcr.binary_search(s).expect("GCR contains union");
        dev14.per_region[i]
    });
    println!("\ntop-5 drifting itemsets between store-1 and store-4:");
    for r in select_top_n(&scored, 5) {
        println!("  {}  Δ = {:.4}", r.region, r.deviation);
    }

    // Structural difference: itemsets frequent in exactly one store —
    // newly appearing / disappearing buying patterns.
    let only_one_side = lits_difference(models[0].itemsets(), models[3].itemsets());
    println!(
        "\nitemsets frequent in exactly one of store-1/store-4: {}",
        only_one_side.len()
    );

    // --- Focussed deviation: one department (items 0..20) ---------------
    let department: Vec<u32> = (0..20).collect();
    let focussed = lits_deviation_focussed(
        &models[0],
        &stores[0].1,
        &models[3],
        &stores[3].1,
        &department,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    println!(
        "focussed δ on department items 0..20: {:.3} over {} regions (total {:.3})",
        focussed.value,
        focussed.gcr.len(),
        dev14.value
    );
    assert!(focussed.value <= dev14.value + 1e-9);
}
