//! Quickstart: measure whether two datasets differ in their "interesting
//! characteristics" — the FOCUS question.
//!
//! Run with: `cargo run --release --example quickstart`

use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::mining::{Apriori, AprioriParams};

fn main() {
    // Two snapshot datasets. D1 and D2 come from the SAME generating
    // process (same pattern table, different random draws); D3 comes from a
    // DIFFERENT process (longer patterns).
    let process_a = AssocGen::new(AssocGenParams::small(), 1);
    let process_b = AssocGen::new(
        {
            let mut p = AssocGenParams::small();
            p.avg_pattern_len = 6.0;
            p
        },
        2,
    );
    let d1 = process_a.generate(4000, 10);
    let d2 = process_a.generate(4000, 11);
    let d3 = process_b.generate(4000, 12);

    // Induce the models: frequent itemsets at 2% support.
    let miner = Apriori::new(AprioriParams::with_minsup(0.02));
    let m1 = miner.mine(&d1);
    let m2 = miner.mine(&d2);
    let m3 = miner.mine(&d3);
    println!(
        "model sizes: |M1|={}, |M2|={}, |M3|={}",
        m1.len(),
        m2.len(),
        m3.len()
    );

    // The deviation δ(f_a, g_sum): extend both models to their greatest
    // common refinement, scan once, aggregate per-region differences.
    let dev_same = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    let dev_diff = lits_deviation(&m1, &d1, &m3, &d3, DiffFn::Absolute, AggFn::Sum).value;
    println!("δ(D1, D2) [same process]      = {dev_same:.4}");
    println!("δ(D1, D3) [different process] = {dev_diff:.4}");

    // Raw deviation numbers are not interpretable alone — qualify them with
    // the bootstrap (Section 3.4): how extreme is the observed deviation
    // under the null hypothesis "one generating process"?
    let pipeline = |a: &TransactionSet, b: &TransactionSet| {
        let ma = miner.mine(a);
        let mb = miner.mine(b);
        lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
    };
    let q_same = qualify_transactions(&d1, &d2, dev_same, 49, 7, pipeline);
    let q_diff = qualify_transactions(&d1, &d3, dev_diff, 49, 7, pipeline);
    println!(
        "significance: same-process {:.0}%, different-process {:.0}%",
        q_same.significance_percent, q_diff.significance_percent
    );
    assert!(q_diff.significance_percent > q_same.significance_percent);

    // The scan-free upper bound δ* (Definition 4.1) screens cheaply:
    let b_same = lits_upper_bound(&m1, &m2, AggFn::Sum);
    let b_diff = lits_upper_bound(&m1, &m3, AggFn::Sum);
    println!("δ* bounds (no data scan): same {b_same:.4}, different {b_diff:.4}");
    assert!(b_same >= dev_same && b_diff >= dev_diff);
}
