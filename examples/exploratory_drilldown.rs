//! Exploratory analysis of two census-style snapshots (Section 5.1):
//! find *where* two datasets differ, not just by how much.
//!
//! Demonstrates: dt-model deviation, focussed deviation over predicate
//! regions (`age < 30` etc.), the rank/select operators over the GCR, and
//! the change-monitoring special cases (misclassification error,
//! chi-squared with bootstrap calibration).
//!
//! Run with: `cargo run --release --example exploratory_drilldown`

use focus::core::prelude::*;
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::tree::{DecisionTree, TreeParams};

fn fit(data: &LabeledTable) -> DtModel {
    DecisionTree::fit(
        data,
        TreeParams::default()
            .max_depth(8)
            .min_leaf(data.len() / 100),
    )
    .to_model()
}

fn main() {
    // Two snapshots: the labelling process drifts from F2 (age & salary
    // bands) to F3 (age & education bands) between them.
    let d_old = ClassifyGen::new(ClassifyFn::F2).generate(12_000, 1);
    let d_new = ClassifyGen::new(ClassifyFn::F3).generate(12_000, 2);
    let m_old = fit(&d_old);
    let m_new = fit(&d_new);
    println!(
        "trees: old {} leaves, new {} leaves",
        m_old.leaves().len(),
        m_new.leaves().len()
    );

    // Overall deviation.
    let dev = dt_deviation(&m_old, &d_old, &m_new, &d_new, DiffFn::Absolute, AggFn::Sum);
    println!(
        "overall δ(f_a, g_sum) = {:.4} over {} GCR cells",
        dev.value,
        dev.cells.len()
    );

    // --- Focus on analyst-specified regions (Section 2.3 style) ---------
    let schema = d_old.table.schema();
    let regions = [
        ("age < 30", BoxBuilder::new(schema).lt("age", 30.0).build()),
        (
            "30 ≤ age < 60",
            BoxBuilder::new(schema).range("age", 30.0, 60.0).build(),
        ),
        ("age ≥ 60", BoxBuilder::new(schema).ge("age", 60.0).build()),
        (
            "low education (elevel ∈ {0,1})",
            BoxBuilder::new(schema).cats("elevel", &[0, 1]).build(),
        ),
    ];
    println!("\nfocussed deviations:");
    for (name, region) in &regions {
        let f = dt_deviation_focussed(
            &m_old,
            &d_old,
            &m_new,
            &d_new,
            region,
            DiffFn::Absolute,
            AggFn::Sum,
        );
        println!("  δ_ρ({name}) = {:.4}", f.value);
    }

    // --- Rank the GCR cells by their contribution -----------------------
    // (the paper's SelectTop(Rank(Γ_T1 ⊔ Γ_T2, δ)) expression)
    let k = m_old.n_classes() as usize;
    let scored = rank(
        dev.cells.iter().enumerate().collect::<Vec<_>>(),
        |(i, _)| (0..k).map(|c| dev.per_region[i * k + c]).sum::<f64>(),
    );
    println!("\ntop-3 drifting regions of the GCR:");
    for r in select_top_n(&scored, 3) {
        let (_, cell) = r.region;
        println!(
            "  Δ = {:.4} at {}",
            r.deviation,
            cell.region.describe(schema)
        );
    }

    // --- Change monitoring (Section 5.2) --------------------------------
    // How badly does the OLD model misrepresent the NEW data?
    let me = misclassification_error(&m_old, &d_new);
    let me_self = misclassification_error(&m_old, &d_old);
    println!("\nmisclassification of old model: on old data {me_self:.4}, on new data {me:.4}");

    // Theorem 5.2: ME is ½·δ(f_a, g_sum) against the predicted dataset.
    let via = me_via_deviation(&m_old, &d_new);
    assert!((me - via).abs() < 1e-12);
    println!("Theorem 5.2 check: ME = ½δ against predicted dataset ✓");

    // Chi-squared with bootstrap calibration (Section 5.2.2): the
    // asymptotic table is unreliable here (empty expected cells), so
    // bootstrap the null distribution of X² from the old dataset.
    let x2 = chi_squared_statistic(&m_old, &d_new, 0.5);
    let q = qualify_chi_squared(&d_old, d_new.len(), x2, 99, 7, |d| {
        chi_squared_statistic(&m_old, d, 0.5)
    });
    println!(
        "X² = {x2:.1}; bootstrap significance {:.0}% (new data does NOT fit the old model)",
        q.significance_percent
    );
    assert!(q.significance_percent >= 99.0);
}
