//! Approximate query answering from models — the paper's stated future
//! work ("we intend to apply our framework to approximate query
//! answering"), prototyped.
//!
//! A dt-model is a selectivity synopsis: the measure component stores the
//! fraction of the dataset in every leaf × class region, so COUNT queries
//! over box predicates can be answered from the model alone, assuming
//! uniformity inside each leaf. The FOCUS deviation then has an operational
//! meaning: it bounds how stale a synopsis is — the larger
//! `δ(model(D_old), model(D_new))`, the worse the old synopsis answers
//! queries over the new data.
//!
//! Run with: `cargo run --release --example approximate_queries`

use focus::core::prelude::*;
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::tree::{DecisionTree, TreeParams};

/// Estimates the selectivity of `query` from a dt-model synopsis: for each
/// leaf, the overlap fraction is approximated by the per-attribute
/// interval-overlap product (the uniformity assumption inside leaves).
fn estimate_selectivity(model: &DtModel, query: &BoxRegion, data_bounds: &BoxRegion) -> f64 {
    let mut total = 0.0;
    for (leaf_idx, leaf) in model.leaves().iter().enumerate() {
        let Some(overlap) = leaf.intersect(query) else {
            continue;
        };
        // Volume fraction of the overlap inside the leaf (bounded attrs only).
        let mut frac = 1.0;
        for ((c_leaf, c_overlap), c_bounds) in leaf
            .constraints
            .iter()
            .zip(&overlap.constraints)
            .zip(&data_bounds.constraints)
        {
            let width = |c: &AttrConstraint| -> Option<f64> {
                match c {
                    AttrConstraint::Interval { lo, hi } => {
                        // Clip infinite bounds to the data's bounding box.
                        let (blo, bhi) = match c_bounds {
                            AttrConstraint::Interval { lo, hi } => (*lo, *hi),
                            _ => return None,
                        };
                        Some((hi.min(bhi) - lo.max(blo)).max(0.0))
                    }
                    AttrConstraint::Cats(m) => Some(m.count() as f64),
                }
            };
            if let (Some(wl), Some(wo)) = (width(c_leaf), width(c_overlap)) {
                if wl > 0.0 {
                    frac *= wo / wl;
                }
            }
        }
        let leaf_mass: f64 = (0..model.n_classes())
            .map(|c| model.measure(leaf_idx, c))
            .sum();
        total += leaf_mass * frac;
    }
    total
}

/// True selectivity by scanning.
fn true_selectivity(data: &LabeledTable, query: &BoxRegion) -> f64 {
    let hits = data.rows().filter(|(row, _)| query.contains(row)).count();
    hits as f64 / data.len().max(1) as f64
}

fn fit(data: &LabeledTable) -> DtModel {
    DecisionTree::fit(
        data,
        TreeParams::default()
            .max_depth(10)
            .min_leaf(data.len() / 400),
    )
    .to_model()
}

fn main() {
    let d_old = ClassifyGen::new(ClassifyFn::F2).generate(20_000, 1);
    let schema = d_old.table.schema();
    let synopsis = fit(&d_old);
    println!(
        "synopsis: {} leaves summarizing {} rows",
        synopsis.leaves().len(),
        d_old.len()
    );

    // Data bounding box for clipping unbounded leaf edges.
    let bounds = BoxBuilder::new(schema)
        .range("salary", 20_000.0, 150_000.0)
        .range("commission", 0.0, 75_000.0)
        .range("age", 20.0, 80.0)
        .range("hvalue", 0.0, 1_350_000.0)
        .range("hyears", 1.0, 30.0)
        .range("loan", 0.0, 500_000.0)
        .build();

    let queries = [
        ("young", BoxBuilder::new(schema).lt("age", 35.0).build()),
        (
            "mid-income",
            BoxBuilder::new(schema)
                .range("salary", 60_000.0, 90_000.0)
                .build(),
        ),
        (
            "young ∧ low-edu",
            BoxBuilder::new(schema)
                .lt("age", 40.0)
                .cats("elevel", &[0, 1])
                .build(),
        ),
        (
            "senior ∧ high-salary",
            BoxBuilder::new(schema)
                .ge("age", 60.0)
                .ge("salary", 100_000.0)
                .build(),
        ),
    ];

    println!("\nquery answering on the ORIGINAL data:");
    let mut max_err_fresh = 0.0f64;
    for (name, q) in &queries {
        let est = estimate_selectivity(&synopsis, q, &bounds);
        let truth = true_selectivity(&d_old, q);
        let err = (est - truth).abs();
        max_err_fresh = max_err_fresh.max(err);
        println!("  {name:22} est {est:.4}  true {truth:.4}  |err| {err:.4}");
    }
    assert!(max_err_fresh < 0.08, "synopsis error {max_err_fresh}");

    // The data drifts; the stale synopsis degrades, and the FOCUS deviation
    // predicts it.
    println!("\nafter drift (labels/shape now follow F4):");
    let d_new = ClassifyGen::new(ClassifyFn::F4).generate(20_000, 2);
    let model_new = fit(&d_new);
    let deviation = dt_deviation(
        &synopsis,
        &d_old,
        &model_new,
        &d_new,
        DiffFn::Absolute,
        AggFn::Sum,
    )
    .value;
    let mut max_err_stale = 0.0f64;
    for (name, q) in &queries {
        let est = estimate_selectivity(&synopsis, q, &bounds);
        let truth = true_selectivity(&d_new, q);
        let err = (est - truth).abs();
        max_err_stale = max_err_stale.max(err);
        println!("  {name:22} est {est:.4}  true {truth:.4}  |err| {err:.4}");
    }
    println!(
        "\nδ(old model, new model) = {deviation:.3}; \
         max query error grew {max_err_fresh:.4} → {max_err_stale:.4}"
    );
    // The attribute distributions are identical between F2 and F4 (only
    // labels shift), so box-COUNT queries stay accurate — the deviation
    // instead reflects the class-structure change. Demonstrate with a
    // class-aware query.
    let class_q = BoxBuilder::new(schema).lt("age", 40.0).class(1).build();
    let est = {
        // Class-aware estimate: leaf measure of class 1 only.
        let mut total = 0.0;
        for (leaf_idx, leaf) in synopsis.leaves().iter().enumerate() {
            if leaf.intersect(&class_q).is_some() {
                let overlap = leaf.intersect(&class_q).unwrap();
                let frac = if overlap == leaf.clone().with_class(1) {
                    1.0
                } else {
                    0.5
                };
                total += synopsis.measure(leaf_idx, 1) * frac;
            }
        }
        total
    };
    let truth = d_new
        .rows()
        .filter(|(row, label)| class_q.contains_labeled(row, *label))
        .count() as f64
        / d_new.len() as f64;
    println!("class-aware query (age<40 ∧ class A): est {est:.4} vs new truth {truth:.4}");
}
