//! The sample-size study of Section 6, in miniature: how representative is
//! a random sample, as a function of its size?
//!
//! The *sample deviation* SD = δ(model(D), model(sample)) quantifies the
//! representativeness of a sample; Wilcoxon rank-sum tests on sets of SD
//! values decide whether growing the sample helps significantly.
//!
//! Run with: `cargo run --release --example sample_size`

use focus::core::prelude::*;
use focus::data::classify::{ClassifyFn, ClassifyGen};
use focus::stats::wilcoxon::{rank_sum, Alternative};
use focus::tree::{DecisionTree, TreeParams};

fn fit(data: &LabeledTable) -> DtModel {
    DecisionTree::fit(
        data,
        TreeParams::default()
            .max_depth(8)
            .min_leaf((data.len() / 100).max(5)),
    )
    .to_model()
}

fn main() {
    let data = ClassifyGen::new(ClassifyFn::F2).generate(20_000, 7);
    let full_model = fit(&data);
    println!(
        "full dataset: {} rows, tree with {} leaves",
        data.len(),
        full_model.leaves().len()
    );

    let fractions = [0.05, 0.1, 0.2, 0.4, 0.8];
    let per_fraction = 12;
    let mut sd_sets: Vec<Vec<f64>> = Vec::new();
    println!("\n  SF    mean SD");
    for (i, &sf) in fractions.iter().enumerate() {
        let sds: Vec<f64> = (0..per_fraction)
            .map(|s| {
                let sample = data.sample_fraction(sf, 1000 + (i * 100 + s) as u64);
                let m = fit(&sample);
                dt_deviation(
                    &full_model,
                    &data,
                    &m,
                    &sample,
                    DiffFn::Absolute,
                    AggFn::Sum,
                )
                .value
            })
            .collect();
        let mean = sds.iter().sum::<f64>() / sds.len() as f64;
        println!("  {sf:<5} {mean:.4}");
        sd_sets.push(sds);
    }

    println!("\nWilcoxon: is the larger sample significantly more representative?");
    for w in sd_sets.windows(2).zip(fractions.windows(2)) {
        let (sets, sfs) = w;
        let r = rank_sum(&sets[1], &sets[0], Alternative::Less);
        println!(
            "  {} → {}: significance {:.1}%",
            sfs[0], sfs[1], r.significance_percent
        );
    }

    // The paper's practical takeaway: a 20–30% sample is often sufficient.
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    let sd_small = mean(&sd_sets[0]);
    let sd_large = mean(&sd_sets[4]);
    println!(
        "\nSD shrinks {:.1}× from a 5% to an 80% sample — but most of the
gain arrives by SF ≈ 0.2–0.3 (diminishing returns).",
        sd_small / sd_large.max(1e-12)
    );
}
