//! Streaming change detection — the paper's sales-analyst scenario
//! (Section 1) as a running monitor: weekly transaction batches arrive; the
//! analyst only wants to re-analyze when the data characteristics have
//! *significantly* changed.
//!
//! Demonstrates the `ChangeMonitor`: bootstrap-calibrated alarm threshold
//! (Section 3.4), full mining pipeline as the deviation oracle, and
//! re-baselining after a confirmed regime change.
//!
//! Run with: `cargo run --release --example stream_monitoring`

use focus::core::prelude::*;
use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::mining::{Apriori, AprioriParams};

fn main() {
    // The shop's historical snapshot and its buying-pattern process.
    let regular = AssocGen::new(AssocGenParams::small(), 7);
    let reference = regular.generate(4000, 0);

    // Deviation oracle: mine both sides, compare with δ(f_a, g_sum).
    let miner = Apriori::new(AprioriParams::with_minsup(0.03).min_count_floor(3));
    let pipeline = move |a: &TransactionSet, b: &TransactionSet| {
        let ma = miner.mine(a);
        let mb = miner.mine(b);
        lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
    };

    // Calibrate: the alarm fires only if a weekly batch deviates more than
    // 99% of same-process batches would.
    let mut monitor = ChangeMonitor::new(reference, 800, 0.99, 39, 11, pipeline).with_rebaseline();
    println!("calibrated alarm threshold: {:.3}", monitor.threshold());

    // Six quiet weeks, then the assortment changes (longer patterns), then
    // the new regime persists.
    let mut shifted_params = AssocGenParams::small();
    shifted_params.avg_pattern_len = 7.0;
    let shifted = AssocGen::new(shifted_params, 8);

    let mut alarms = Vec::new();
    for week in 0..10 {
        let batch = if week < 6 {
            regular.generate(800, 100 + week)
        } else {
            shifted.generate(800, 200 + week)
        };
        let verdict = monitor.observe(&batch);
        println!(
            "week {week:2}: δ = {:.3} (threshold {:.3}) {}",
            verdict.deviation,
            verdict.threshold,
            if verdict.drifted { "⚠ DRIFT" } else { "ok" }
        );
        if verdict.drifted {
            alarms.push(week);
        }
    }

    println!("\nalarms at weeks: {alarms:?}");
    assert!(
        alarms.contains(&6),
        "the regime change at week 6 must be flagged"
    );
    assert!(
        !alarms.contains(&1) && !alarms.contains(&4),
        "quiet weeks must stay quiet"
    );
    // Re-baselining: the monitor re-anchors on the new regime within a
    // few batches (a freshly-adopted 800-transaction reference is noisier
    // than the original 4000-transaction baseline, so a couple of
    // follow-up alarms while the threshold settles are expected).
    let late: Vec<_> = alarms.iter().filter(|&&w| w > 6).collect();
    assert!(
        late.len() <= 2,
        "monitor failed to adapt to the new regime: {alarms:?}"
    );
    assert!(
        !alarms.contains(&9),
        "by week 9 the monitor must treat the new regime as normal"
    );
}
