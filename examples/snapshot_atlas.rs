//! An *atlas* of dataset snapshots (Section 4.1.1): keep a registry of
//! daily extracts, compare every pair with δ*-screening, and embed the
//! whole collection in the plane for visual inspection.
//!
//! Demonstrates: the snapshot registry (persisted datasets + mined
//! models + manifest), the two-phase screened deviation matrix (exact
//! scans only where the model-only bound says the pair is interesting),
//! and the classical-MDS embedding under the δ* metric.
//!
//! Run with: `cargo run --release --example snapshot_atlas`

use focus::data::assoc::{AssocGen, AssocGenParams};
use focus::registry::{MatrixParams, Registry};

fn main() {
    let root = std::env::temp_dir().join(format!("focus-snapshot-atlas-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut reg = Registry::open_or_create(&root).expect("create registry");

    // Six "daily" snapshots from two market-basket regimes: days 0–2 from
    // the original process, days 3–5 after a pattern shift (a different
    // pattern seed — new co-purchase structure, same item universe).
    for day in 0..6u64 {
        let pattern_seed = if day < 3 { 1 } else { 9 };
        let gen = AssocGen::new(AssocGenParams::paper(200, 4.0), pattern_seed);
        let data = gen.generate(3_000, 40 + day);
        let entry = reg
            .add(&format!("day-{day}"), &data, 0.02)
            .expect("add snapshot");
        println!(
            "registered {:8} {} transactions, {} frequent itemsets",
            entry.name, entry.n_rows, entry.n_regions
        );
    }

    // Pass 1 — bounds only (threshold +∞): instantaneous, model-only.
    let bounds = reg
        .matrix(&MatrixParams {
            threshold: f64::INFINITY,
            ..MatrixParams::default()
        })
        .expect("bound matrix");
    let mut bs: Vec<f64> = (0..bounds.len())
        .flat_map(|i| ((i + 1)..bounds.len()).map(move |j| (i, j)))
        .map(|(i, j)| bounds.bound(i, j))
        .collect();
    bs.sort_by(f64::total_cmp);
    let threshold = (bs[0] + bs[bs.len() - 1]) / 2.0;
    println!(
        "\nδ* bounds span [{:.3}, {:.3}]; screening at the midpoint, {:.3}",
        bs[0],
        bs[bs.len() - 1],
        threshold
    );

    // Pass 2 — exact scans only where the bound clears the threshold.
    let matrix = reg
        .matrix(&MatrixParams {
            threshold,
            ..MatrixParams::default()
        })
        .expect("screened matrix");
    println!(
        "screened matrix: {} pairs, {} scanned, {} pruned\n",
        matrix.n_pairs(),
        matrix.scanned(),
        matrix.pruned()
    );
    let names = matrix.names();
    for i in 0..matrix.len() {
        for j in (i + 1)..matrix.len() {
            match matrix.exact(i, j) {
                Some(e) => println!(
                    "  {} vs {}  bound {:8.3}  exact {:8.3}",
                    names[i],
                    names[j],
                    matrix.bound(i, j),
                    e
                ),
                None => println!(
                    "  {} vs {}  bound {:8.3}  (pruned: certifiably similar)",
                    names[i],
                    names[j],
                    matrix.bound(i, j)
                ),
            }
        }
    }

    // The atlas: 2-D MDS under the δ* metric. The two regimes separate.
    let coords = matrix
        .embed(2)
        .expect("lits bounds form a full metric grid");
    let stress = matrix.stress(&coords).expect("same grid as the embedding");
    println!("\n2-D embedding (stress {stress:.4}):");
    for (name, c) in names.iter().zip(&coords) {
        println!("  {:8} ({:9.3}, {:9.3})", name, c[0], c[1]);
    }

    std::fs::remove_dir_all(&root).ok();
}
