//! Statistical substrate for the FOCUS framework.
//!
//! The FOCUS paper (Ganti et al., PODS 1999) leans on three pieces of
//! classical statistics that this crate provides from scratch:
//!
//! * the **bootstrap** ([`bootstrap`]) used by the qualification procedure of
//!   Section 3.4 to estimate the null distribution of deviation values and by
//!   Section 5.2.2 to calibrate the chi-squared statistic when the standard
//!   tables are inapplicable;
//! * the **Wilcoxon two-sample rank-sum test** ([`wilcoxon`]) used by the
//!   sample-size study of Section 6 to decide whether a larger sample is
//!   significantly more representative;
//! * the **chi-squared and normal distributions** ([`dist`], [`special`])
//!   needed to turn test statistics into significance levels.
//!
//! It also provides the random samplers ([`sample`]) required by the
//! synthetic data generators (Poisson, exponential, normal) so that the
//! workspace only depends on the `rand` core crate, and a small kit of
//! descriptive statistics ([`describe`]).
//!
//! Everything is deterministic given a seed and has no external dependencies
//! beyond `rand`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod describe;
pub mod dist;
pub mod ks;
pub mod sample;
pub mod special;
pub mod wilcoxon;

pub use bootstrap::{
    bootstrap_two_sample, bootstrap_two_sample_par, significance_percent, BootstrapResult,
};
pub use describe::{mean, median, pearson, percentile, spearman, stddev, variance};
pub use dist::{ChiSquared, Normal};
pub use focus_exec::Parallelism;
pub use ks::{kolmogorov_sf, ks_two_sample, KsResult};
pub use sample::{Exponential, NormalSampler, Poisson};
pub use wilcoxon::{rank_sum, Alternative, WilcoxonResult};
