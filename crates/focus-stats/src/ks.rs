//! Two-sample Kolmogorov–Smirnov test.
//!
//! A univariate companion to the FOCUS deviation: where FOCUS compares two
//! datasets through the models they induce, KS compares two *numeric
//! samples* through their empirical CDFs. The experiments use it as an
//! independent cross-check that the drifts injected by the workload
//! builders are real, and it rounds out the hypothesis-testing toolbox
//! next to Wilcoxon (location shifts) — KS is sensitive to any
//! distributional change.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The statistic `D = sup |F1(x) − F2(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution with the standard
    /// small-sample correction of Stephens).
    pub p_value: f64,
}

/// Runs the two-sample KS test. Samples must be non-empty and NaN-free.
pub fn ks_two_sample(sample1: &[f64], sample2: &[f64]) -> KsResult {
    assert!(
        !sample1.is_empty() && !sample2.is_empty(),
        "ks_two_sample requires non-empty samples"
    );
    let mut a: Vec<f64> = sample1.to_vec();
    let mut b: Vec<f64> = sample2.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in KS input"));

    let n1 = a.len();
    let n2 = b.len();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n1 && j < n2 {
        let x = a[i].min(b[j]);
        while i < n1 && a[i] <= x {
            i += 1;
        }
        while j < n2 && b[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    // Asymptotic p-value: Q_KS((√ne + 0.12 + 0.11/√ne) · D) with
    // ne = n1·n2/(n1+n2) (Stephens' correction).
    let ne = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`, clamped to `[0, 1]`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_d_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let r = ks_two_sample(&xs, &xs);
        assert_eq!(r.statistic, 0.0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn disjoint_supports_d_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.1);
    }

    #[test]
    fn textbook_statistic() {
        // F1 jumps at {1,2}, F2 at {1.5}: D at x=1 is |0.5 − 0| = 0.5,
        // at 1.5 it is |0.5 − 1| = 0.5, at 2 it is 0. D = 0.5.
        let r = ks_two_sample(&[1.0, 2.0], &[1.5]);
        assert!((r.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_high_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn shifted_distribution_low_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..300).map(|_| rng.gen::<f64>() + 0.3).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Q(0.8276) ≈ 0.5 (the median of the Kolmogorov distribution is
        // ≈ 0.82757); Q(1.3581) ≈ 0.05.
        assert!((kolmogorov_sf(0.82757) - 0.5).abs() < 1e-3);
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 1e-3);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(5.0) < 1e-10);
    }

    #[test]
    fn statistic_symmetry() {
        let a = [0.3, 0.9, 1.4, 2.0];
        let b = [0.1, 1.0, 1.1];
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        assert_eq!(r1.statistic, r2.statistic);
        assert_eq!(r1.p_value, r2.p_value);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn hand_computed_statistic_unequal_sizes() {
        // a = {1,2,3,4}, b = {2.5, 3.5}. Walking the pooled values:
        // F1 jumps by 1/4 at 1,2,3,4; F2 by 1/2 at 2.5, 3.5.
        // At x=2: |2/4 − 0| = 0.5 is the supremum.
        let r = ks_two_sample(&[1.0, 2.0, 3.0, 4.0], &[2.5, 3.5]);
        assert!((r.statistic - 0.5).abs() < 1e-12, "D = {}", r.statistic);
    }

    #[test]
    fn tabulated_critical_value_alpha_05() {
        // Large-sample two-sided critical value at α = 0.05:
        // D_crit = 1.358 · √((n1+n2)/(n1·n2)). A statistic exactly at the
        // critical value must produce p ≈ 0.05 (within the Stephens
        // correction's small bias).
        let (n1, n2) = (100usize, 100usize);
        let d_crit = 1.358 * (((n1 + n2) as f64) / ((n1 * n2) as f64)).sqrt();
        let ne = (n1 * n2) as f64 / (n1 + n2) as f64;
        let sqrt_ne = ne.sqrt();
        let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d_crit;
        let p = kolmogorov_sf(lambda);
        assert!((0.03..0.06).contains(&p), "p at critical value = {p}");
    }

    #[test]
    fn kolmogorov_sf_tabulated_quantiles() {
        // Tabulated Kolmogorov quantiles: Q(1.2238) ≈ 0.10, Q(1.6276) ≈ 0.01.
        assert!((kolmogorov_sf(1.2238) - 0.10).abs() < 1e-3);
        assert!((kolmogorov_sf(1.6276) - 0.01).abs() < 1e-3);
        // Monotone decreasing.
        let qs: Vec<f64> = (1..40).map(|i| kolmogorov_sf(i as f64 * 0.1)).collect();
        assert!(qs.windows(2).all(|w| w[1] <= w[0] + 1e-15));
    }
}
