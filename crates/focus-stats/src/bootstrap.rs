//! Bootstrap machinery for the FOCUS qualification procedure (Section 3.4).
//!
//! The question the paper asks is: *is an observed deviation `d` between two
//! datasets large enough that they are unlikely to come from the same
//! generating process?* The answer is obtained by bootstrapping: pool the two
//! datasets, repeatedly resample two pseudo-datasets of the original sizes
//! from the pool (with replacement), recompute the deviation for each
//! replicate, and read off where the observed value falls in that null
//! distribution. The same engine estimates the exact null distribution of
//! the chi-squared statistic when the textbook applicability conditions fail
//! (Section 5.2.2).
//!
//! The engine is generic over the element type and the statistic, so the
//! identical code path serves lits-models (elements = transactions),
//! dt-models (elements = labelled tuples) and raw numeric statistics.

use focus_exec::{derive_seed, map_indices, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a bootstrap significance computation.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// The observed statistic (deviation) between the two real datasets.
    pub observed: f64,
    /// The bootstrap null distribution (one value per replicate), sorted
    /// ascending.
    pub null_distribution: Vec<f64>,
    /// Significance as a percentage: `100 · (fraction of null values that are
    /// strictly below the observed value)`. A value of 99 means the observed
    /// deviation exceeds 99% of deviations expected between two datasets
    /// drawn from the same process — the paper's "%sig" columns.
    pub significance_percent: f64,
}

impl BootstrapResult {
    /// True if the observed deviation is significant at level `alpha`
    /// (e.g. `0.05` for 95%).
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.significance_percent >= 100.0 * (1.0 - alpha)
    }
}

/// Draws `reps` bootstrap replicates of a two-sample statistic under the
/// null hypothesis that both samples come from the pooled distribution,
/// at the process-wide default parallelism.
///
/// For each replicate, two pseudo-samples of sizes `n1` and `n2` are drawn
/// with replacement from `pool`, and `stat` is evaluated on them.
pub fn bootstrap_two_sample<T, F>(
    pool: &[T],
    n1: usize,
    n2: usize,
    reps: usize,
    seed: u64,
    stat: F,
) -> Vec<f64>
where
    T: Clone + Sync,
    F: Fn(&[T], &[T]) -> f64 + Sync,
{
    bootstrap_two_sample_par(pool, n1, n2, reps, seed, Parallelism::Global, stat)
}

/// [`bootstrap_two_sample`] with an explicit [`Parallelism`] for the
/// per-replicate fan-out.
///
/// Replicate `i` seeds its own `StdRng` from `derive_seed(seed, i)`, so
/// replicate `i`'s random draws depend only on `(seed, i)` — never on the
/// thread count — and the returned vector (in replicate order) is
/// bit-identical whether it was computed on one thread or many.
pub fn bootstrap_two_sample_par<T, F>(
    pool: &[T],
    n1: usize,
    n2: usize,
    reps: usize,
    seed: u64,
    par: Parallelism,
    stat: F,
) -> Vec<f64>
where
    T: Clone + Sync,
    F: Fn(&[T], &[T]) -> f64 + Sync,
{
    assert!(!pool.is_empty(), "bootstrap pool must be non-empty");
    assert!(n1 > 0 && n2 > 0, "resample sizes must be positive");
    map_indices(par, reps, |rep| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, rep as u64));
        let s1: Vec<T> = (0..n1)
            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
            .collect();
        let s2: Vec<T> = (0..n2)
            .map(|_| pool[rng.gen_range(0..pool.len())].clone())
            .collect();
        stat(&s1, &s2)
    })
}

/// Computes the paper's "%sig" number: the percentage of null values that
/// fall strictly below the observed statistic.
///
/// `null` need not be sorted.
pub fn significance_percent(observed: f64, null: &[f64]) -> f64 {
    if null.is_empty() {
        return 0.0;
    }
    let below = null.iter().filter(|&&v| v < observed).count();
    100.0 * below as f64 / null.len() as f64
}

/// End-to-end qualification: pools the two datasets, bootstraps the null
/// distribution of `stat`, and situates the observed value.
///
/// This is the direct implementation of Section 3.4: `stat` should be the
/// full model-induction + deviation pipeline (e.g. "mine frequent itemsets
/// from both pseudo-datasets and compute `δ(f_a, g_sum)`").
pub fn qualify<T, F>(
    d1: &[T],
    d2: &[T],
    observed: f64,
    reps: usize,
    seed: u64,
    stat: F,
) -> BootstrapResult
where
    T: Clone + Sync,
    F: Fn(&[T], &[T]) -> f64 + Sync,
{
    let pool: Vec<T> = d1.iter().cloned().chain(d2.iter().cloned()).collect();
    let mut null = bootstrap_two_sample(&pool, d1.len(), d2.len(), reps, seed, stat);
    let significance = significance_percent(observed, &null);
    null.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap statistic"));
    BootstrapResult {
        observed,
        null_distribution: null,
        significance_percent: significance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    #[test]
    fn null_distribution_is_deterministic_per_seed() {
        let pool: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let stat = |a: &[f64], b: &[f64]| (mean(a) - mean(b)).abs();
        let r1 = bootstrap_two_sample(&pool, 30, 30, 50, 1, stat);
        let r2 = bootstrap_two_sample(&pool, 30, 30, 50, 1, stat);
        let r3 = bootstrap_two_sample(&pool, 30, 30, 50, 2, stat);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
    }

    #[test]
    fn null_distribution_is_thread_count_invariant() {
        // The per-replicate seeding makes the null distribution (in
        // replicate order) bit-identical for every worker-thread count.
        let pool: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let stat = |a: &[f64], b: &[f64]| (mean(a) - mean(b)).abs();
        let seq = bootstrap_two_sample_par(&pool, 40, 25, 33, 9, Parallelism::Sequential, stat);
        for t in [2usize, 4, 7] {
            let par = bootstrap_two_sample_par(&pool, 40, 25, 33, 9, Parallelism::Threads(t), stat);
            assert_eq!(seq, par, "threads = {t}");
        }
    }

    #[test]
    fn same_process_deviation_is_not_significant() {
        // Both datasets drawn from the same uniform grid: the observed mean
        // difference should be unremarkable under the bootstrap null.
        let d1: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let d2: Vec<f64> = (0..200).map(|i| ((i + 7) % 20) as f64).collect();
        let stat = |a: &[f64], b: &[f64]| (mean(a) - mean(b)).abs();
        let observed = stat(&d1, &d2);
        let r = qualify(&d1, &d2, observed, 199, 42, stat);
        assert!(!r.is_significant(0.05), "sig = {}", r.significance_percent);
    }

    #[test]
    fn shifted_process_is_significant() {
        let d1: Vec<f64> = (0..200).map(|i| (i % 20) as f64).collect();
        let d2: Vec<f64> = (0..200).map(|i| (i % 20) as f64 + 25.0).collect();
        let stat = |a: &[f64], b: &[f64]| (mean(a) - mean(b)).abs();
        let observed = stat(&d1, &d2);
        let r = qualify(&d1, &d2, observed, 199, 42, stat);
        assert!(r.is_significant(0.01), "sig = {}", r.significance_percent);
        assert_eq!(r.significance_percent, 100.0);
    }

    #[test]
    fn significance_percent_counts_strictly_below() {
        let null = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(significance_percent(2.5, &null), 50.0);
        assert_eq!(significance_percent(0.0, &null), 0.0);
        assert_eq!(significance_percent(10.0, &null), 100.0);
        // Ties are not counted as "below".
        assert_eq!(significance_percent(3.0, &null), 50.0);
    }

    #[test]
    fn null_distribution_is_sorted_in_result() {
        let d: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let stat = |a: &[f64], b: &[f64]| mean(a) - mean(b);
        let r = qualify(&d, &d, 0.0, 64, 3, stat);
        assert!(r.null_distribution.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.null_distribution.len(), 64);
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn empty_pool_panics() {
        bootstrap_two_sample::<f64, _>(&[], 1, 1, 1, 0, |_, _| 0.0);
    }
}
