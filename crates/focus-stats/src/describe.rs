//! Descriptive statistics: mean, variance, median, percentiles, correlation.
//!
//! Figure 15 of the paper reports the correlation between misclassification
//! error and deviation; the sample-size study summarizes sets of 50 sample
//! deviations. These helpers keep those computations in one audited place.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator). Returns 0.0 for fewer than
/// two observations.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (linear-interpolated 50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Percentile `p ∈ [0, 100]` with linear interpolation between order
/// statistics. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Pearson product-moment correlation coefficient between two equal-length
/// samples. Returns 0.0 if either sample is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal-length samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation: Pearson correlation of the rank vectors
/// (average ranks for ties). Robust to monotone-nonlinear relationships —
/// a useful companion to [`pearson`] for the ME-vs-deviation study.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman requires equal-length samples");
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) of a sample, ties sharing their mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            out[idx] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[42.0], 90.0), 42.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|x| -x.exp()).collect();
        assert!((spearman(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        // Ties get average ranks; a perfectly tied sample correlates 0.
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        let r = spearman(&[1.0, 2.0, 2.0, 3.0], &[10.0, 20.0, 20.0, 30.0]);
        assert!((r - 1.0).abs() < 1e-12);
    }
}
