//! Special functions: log-gamma, regularized incomplete gamma, error function.
//!
//! These are the numerical kernels behind the chi-squared CDF (regularized
//! lower incomplete gamma) and the normal CDF (error function). The
//! implementations follow the classical Lanczos / series / continued-fraction
//! recipes and are accurate to roughly 1e-10 over the ranges exercised by the
//! FOCUS experiments, which is far tighter than the 0.01%-significance
//! resolution the paper reports.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients; relative
/// error is below 1e-13 for all positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Maximum iterations for the series / continued-fraction expansions.
const MAX_ITER: usize = 500;
/// Convergence tolerance for the expansions.
const EPS: f64 = 1e-14;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. For `x < a + 1` the series expansion
/// converges quickly; otherwise the complement's continued fraction is used.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, valid and fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction (modified Lentz) expansion of `Q(a, x)` for `x >= a+1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Error function `erf(x)`, via the incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed through `Q(1/2, x²)` for positive `x` so the deep tail keeps
/// precision instead of cancelling against 1.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0_f64;
        for n in 1..15_u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        close(gamma_p(2.0, 1e6), 1.0, 1e-12);
        // P + Q = 1 across both expansion branches.
        for &(a, x) in &[(0.5, 0.3), (3.0, 1.0), (3.0, 10.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        close(erf(0.5), 0.520_499_877_8, 1e-9);
        close(erf(1.0), 0.842_700_792_9, 1e-9);
        close(erf(2.0), 0.995_322_265_0, 1e-9);
        close(erf(-1.0), -0.842_700_792_9, 1e-9);
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(5) ≈ 1.537e-12; a naive 1 - erf(5) would lose all digits.
        let v = erfc(5.0);
        assert!(v > 1.0e-12 && v < 2.0e-12, "erfc(5) = {v}");
    }

    #[test]
    fn erf_erfc_complement() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.2, 1.0, 3.0] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "gamma_p requires x >= 0")]
    fn gamma_p_rejects_negative_x() {
        gamma_p(1.0, -1.0);
    }

    #[test]
    fn ln_gamma_tabulated_values() {
        // Γ(5.5) = 52.342777784553520181… (A&S 6.1.49 neighborhood).
        close(ln_gamma(5.5), 52.342_777_784_553_52_f64.ln(), 1e-12);
        // Γ(0.1) = 9.513507698668731836…
        close(ln_gamma(0.1), 9.513_507_698_668_732_f64.ln(), 1e-10);
        // Duplication sanity: Γ(2x) = Γ(x)Γ(x+1/2) 2^{2x−1}/√π at x = 3.3.
        let x = 3.3_f64;
        let lhs = ln_gamma(2.0 * x);
        let rhs = ln_gamma(x) + ln_gamma(x + 0.5) + (2.0 * x - 1.0) * 2.0_f64.ln()
            - 0.5 * std::f64::consts::PI.ln();
        close(lhs, rhs, 1e-10);
    }

    #[test]
    fn chi_squared_tabulated_critical_values() {
        // P(k/2, x/2) is the χ²_k CDF; at the tabulated 95th-percentile
        // critical values it must return 0.950 to table precision.
        for &(k, crit) in &[
            (1.0, 3.841),
            (2.0, 5.991),
            (5.0, 11.070),
            (10.0, 18.307),
            (30.0, 43.773),
        ] {
            let p = gamma_p(k / 2.0, crit / 2.0);
            close(p, 0.95, 5e-4);
        }
    }

    #[test]
    fn normal_quantiles_via_erf() {
        // Φ(z) = (1 + erf(z/√2))/2 at tabulated z: Φ(1.644854) ≈ 0.95,
        // Φ(1.959964) ≈ 0.975, Φ(2.575829) ≈ 0.995.
        let phi = |z: f64| 0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2));
        close(phi(1.644_854), 0.95, 1e-6);
        close(phi(1.959_964), 0.975, 1e-6);
        close(phi(2.575_829), 0.995, 1e-6);
    }
}
