//! Probability distributions: chi-squared and normal.
//!
//! FOCUS uses the chi-squared distribution to read off the significance of
//! the goodness-of-fit statistic (Section 5.2.2) and the normal distribution
//! for the large-sample approximation of the Wilcoxon rank-sum test
//! (Section 6). Quantiles are obtained by monotone bisection on the CDF,
//! which is plenty fast for the handful of calls the experiments make.

use crate::special::{erf, erfc, gamma_p, gamma_q};

/// Chi-squared distribution with `k` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates a chi-squared distribution with `k > 0` degrees of freedom.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0, "degrees of freedom must be positive, got {k}");
        Self { k }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.k
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.k / 2.0, x / 2.0)
        }
    }

    /// Survival function `P(X > x)`; this is the p-value of an observed
    /// chi-squared statistic `x`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.k / 2.0, x / 2.0)
        }
    }

    /// Quantile function (inverse CDF) by bisection; `p` must be in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
        // Bracket: the mean is k, the variance 2k; go far enough right.
        let mut lo = 0.0;
        let mut hi = self.k + 20.0 * (2.0 * self.k).sqrt() + 20.0;
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Standard normal, `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Normal with mean `mu` and standard deviation `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { mu, sigma }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }

    /// Survival function `P(X > x)`, computed via `erfc` to preserve tail
    /// precision (important for the 99.99%-significance entries in the
    /// paper's Tables 1 and 2).
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    /// Quantile function by bisection; `p` must be in `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
        let mut lo = self.mu - 40.0 * self.sigma;
        let mut hi = self.mu + 40.0 * self.sigma;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn chi2_cdf_reference() {
        // Classical table values: P(X ≤ 3.841) = 0.95 for k = 1,
        // P(X ≤ 5.991) = 0.95 for k = 2, P(X ≤ 7.815) = 0.95 for k = 3.
        close(ChiSquared::new(1.0).cdf(3.841_458_8), 0.95, 1e-6);
        close(ChiSquared::new(2.0).cdf(5.991_464_5), 0.95, 1e-6);
        close(ChiSquared::new(3.0).cdf(7.814_727_9), 0.95, 1e-6);
    }

    #[test]
    fn chi2_k2_is_exponential() {
        // With k = 2 the chi-squared is Exp(1/2): CDF = 1 - e^{-x/2}.
        let d = ChiSquared::new(2.0);
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            close(d.cdf(x), 1.0 - (-x / 2.0_f64).exp(), 1e-12);
        }
    }

    #[test]
    fn chi2_quantile_roundtrip() {
        let d = ChiSquared::new(5.0);
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
            close(d.cdf(d.quantile(p)), p, 1e-9);
        }
    }

    #[test]
    fn chi2_sf_complement() {
        let d = ChiSquared::new(4.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            close(d.cdf(x) + d.sf(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-12);
        close(n.cdf(1.0), 0.841_344_746_1, 1e-9);
        close(n.cdf(1.959_963_985), 0.975, 1e-9);
        close(n.cdf(-1.0), 1.0 - n.cdf(1.0), 1e-12);
    }

    #[test]
    fn normal_scaled() {
        let n = Normal::new(10.0, 2.0);
        close(n.cdf(10.0), 0.5, 1e-12);
        close(n.cdf(12.0), Normal::standard().cdf(1.0), 1e-12);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        let n = Normal::new(-3.0, 0.5);
        for &p in &[0.001, 0.1, 0.5, 0.9, 0.9999] {
            close(n.cdf(n.quantile(p)), p, 1e-9);
        }
    }

    #[test]
    fn normal_tail_sf() {
        // P(Z > 6) ≈ 9.87e-10; must not collapse to zero.
        let sf = Normal::standard().sf(6.0);
        assert!(sf > 9.0e-10 && sf < 1.1e-9, "sf(6) = {sf}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn normal_rejects_bad_sigma() {
        Normal::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "degrees of freedom must be positive")]
    fn chi2_rejects_bad_dof() {
        ChiSquared::new(0.0);
    }
}
