//! Random-variate samplers used by the synthetic data generators.
//!
//! The IBM Quest association generator (reimplemented in `focus-data`) draws
//! transaction and pattern lengths from a Poisson distribution, pattern
//! weights from an exponential distribution, and corruption levels from a
//! clipped normal. We implement these directly on top of `rand`'s uniform
//! source instead of pulling in `rand_distr`, keeping the dependency set to
//! the approved list.

use rand::Rng;

/// Poisson distribution sampler.
///
/// Uses Knuth's multiplication method, which is exact and fast for the small
/// means used by the generators (mean transaction length 20, mean pattern
/// length 4). For large means (> 30) it falls back to a normal approximation
/// that is adequate for workload synthesis.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson sampler with the given positive mean.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "Poisson mean must be positive, got {mean}");
        Self { mean }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean < 30.0 {
            let l = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction.
            let normal = NormalSampler::new(self.mean, self.mean.sqrt());
            let v = normal.sample(rng).round();
            if v < 0.0 {
                0
            } else {
                v as u64
            }
        }
    }
}

/// Exponential distribution sampler via inverse transform.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential sampler with the given positive rate `λ`
    /// (mean `1/λ`).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential rate must be positive, got {rate}");
        Self { rate }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - U avoids ln(0).
        -(1.0 - rng.gen::<f64>()).ln() / self.rate
    }
}

/// Normal distribution sampler via the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct NormalSampler {
    mu: f64,
    sigma: f64,
}

impl NormalSampler {
    /// Creates a normal sampler with mean `mu` and standard deviation
    /// `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive, got {sigma}");
        Self { mu, sigma }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    /// Draws one sample clamped to `[lo, hi]` — the paper's corruption
    /// levels are "normally distributed with mean 0.5 clipped to [0, 1]".
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 40_000;

    #[test]
    fn poisson_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Poisson::new(4.0);
        let xs: Vec<f64> = (0..N).map(|_| p.sample(&mut rng) as f64).collect();
        let m = crate::describe::mean(&xs);
        let v = crate::describe::variance(&xs);
        assert!((m - 4.0).abs() < 0.08, "mean {m}");
        assert!((v - 4.0).abs() < 0.25, "variance {v}");
    }

    #[test]
    fn poisson_large_mean_normal_branch() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = Poisson::new(100.0);
        let xs: Vec<f64> = (0..N).map(|_| p.sample(&mut rng) as f64).collect();
        let m = crate::describe::mean(&xs);
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = Exponential::new(2.0);
        let xs: Vec<f64> = (0..N).map(|_| e.sample(&mut rng)).collect();
        let m = crate::describe::mean(&xs);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_mean_and_sd() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = NormalSampler::new(0.5, 0.1);
        let xs: Vec<f64> = (0..N).map(|_| n.sample(&mut rng)).collect();
        let m = crate::describe::mean(&xs);
        let s = crate::describe::stddev(&xs);
        assert!((m - 0.5).abs() < 0.005, "mean {m}");
        assert!((s - 0.1).abs() < 0.005, "sd {s}");
    }

    #[test]
    fn normal_clamped_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = NormalSampler::new(0.5, 0.4);
        for _ in 0..1000 {
            let x = n.sample_clamped(&mut rng, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = Poisson::new(6.0);
            (0..16).map(|_| p.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
