//! Wilcoxon two-sample rank-sum test (Mann–Whitney U), with tie correction.
//!
//! Section 6 of the FOCUS paper compares, for each pair of adjacent sample
//! sizes, two sets of 50 sample-deviation values and reports the significance
//! `100·(1 − α)%` with which the null hypothesis "both sample sizes are
//! equally representative" is rejected (Tables 1 and 2). This module
//! implements the test with the normal approximation, average ranks for
//! ties, the tie-corrected variance, and a continuity correction — the
//! standard large-sample recipe of Bickel & Doksum, the reference the paper
//! cites.

use crate::dist::Normal;

/// The alternative hypothesis for the rank-sum test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// Sample 1 is stochastically smaller than sample 2.
    Less,
    /// Sample 1 is stochastically greater than sample 2.
    Greater,
    /// The two samples differ in location (either direction).
    TwoSided,
}

/// Result of a Wilcoxon rank-sum test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Rank-sum statistic `W` of the first sample (sum of its ranks in the
    /// pooled ordering, average ranks for ties).
    pub w: f64,
    /// Normal-approximation z-score (with continuity correction).
    pub z: f64,
    /// p-value under the requested alternative.
    pub p_value: f64,
    /// Convenience: significance as a percentage, `100·(1 − p)`, the way the
    /// paper reports it (e.g. "99.99").
    pub significance_percent: f64,
}

/// Runs the Wilcoxon rank-sum test on two samples.
///
/// Both samples must be non-empty and free of NaNs. Uses the normal
/// approximation, which the paper's n = 50 per group comfortably justifies.
///
/// # Example
///
/// ```
/// use focus_stats::wilcoxon::{rank_sum, Alternative};
/// // SD values for the larger sample size are systematically smaller.
/// let small_sample_sds = [0.9, 1.0, 1.1, 1.2, 0.95, 1.05];
/// let large_sample_sds = [0.5, 0.6, 0.55, 0.65, 0.58, 0.52];
/// let r = rank_sum(&large_sample_sds, &small_sample_sds, Alternative::Less);
/// assert!(r.p_value < 0.01);
/// ```
pub fn rank_sum(sample1: &[f64], sample2: &[f64], alternative: Alternative) -> WilcoxonResult {
    assert!(
        !sample1.is_empty() && !sample2.is_empty(),
        "rank_sum requires non-empty samples"
    );
    let n1 = sample1.len() as f64;
    let n2 = sample2.len() as f64;
    let n = n1 + n2;

    // Pool, sort, assign average ranks.
    let mut pooled: Vec<(f64, usize)> = sample1
        .iter()
        .map(|&x| (x, 0usize))
        .chain(sample2.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in rank_sum input"));

    let mut w = 0.0; // rank sum of sample 1
    let mut tie_term = 0.0; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < pooled.len() {
        let mut j = i;
        while j + 1 < pooled.len() && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        // Ranks are 1-based; the average rank of positions i..=j.
        let avg_rank = (i as f64 + 1.0 + j as f64 + 1.0) / 2.0;
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                w += avg_rank;
            }
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let mean_w = n1 * (n + 1.0) / 2.0;
    // Tie-corrected variance of W.
    let var_w = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    let sd_w = var_w.max(0.0).sqrt();

    // Degenerate case: all observations equal. No evidence either way.
    if sd_w == 0.0 {
        return WilcoxonResult {
            w,
            z: 0.0,
            p_value: 1.0,
            significance_percent: 0.0,
        };
    }

    // Continuity correction towards the mean.
    let diff = w - mean_w;
    let cc = 0.5 * diff.signum();
    let z = (diff - cc) / sd_w;

    let std = Normal::standard();
    let p_value = match alternative {
        Alternative::Less => std.cdf(z),
        Alternative::Greater => std.sf(z),
        Alternative::TwoSided => 2.0 * std.sf(z.abs()).min(0.5),
    };
    let p_value = p_value.clamp(0.0, 1.0);

    WilcoxonResult {
        w,
        z,
        p_value,
        significance_percent: 100.0 * (1.0 - p_value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_samples_not_significant() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = rank_sum(&xs, &xs, Alternative::TwoSided);
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn clearly_shifted_samples_significant() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 100.0).collect();
        let r = rank_sum(&a, &b, Alternative::Less);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.significance_percent > 99.99);
        // And the opposite direction is non-significant.
        let r2 = rank_sum(&a, &b, Alternative::Greater);
        assert!(r2.p_value > 0.999);
    }

    #[test]
    fn rank_sum_statistic_small_example() {
        // Sample1 = {1, 3}, sample2 = {2, 4}: ranks of sample1 are 1 and 3.
        let r = rank_sum(&[1.0, 3.0], &[2.0, 4.0], Alternative::TwoSided);
        assert_eq!(r.w, 4.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        // Pooled sorted: 1(s1), 2(s1), 2(s2), 3(s2); the tied 2s take rank 2.5.
        let r = rank_sum(&[1.0, 2.0], &[2.0, 3.0], Alternative::TwoSided);
        assert_eq!(r.w, 1.0 + 2.5);
    }

    #[test]
    fn all_equal_degenerates_gracefully() {
        let r = rank_sum(&[5.0; 10], &[5.0; 10], Alternative::TwoSided);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn type_i_error_is_controlled() {
        // Under the null (both samples from the same distribution), the
        // rejection rate at α = 0.05 should be ≈ 5%.
        let mut rng = StdRng::seed_from_u64(123);
        let mut rejections = 0;
        let trials = 400;
        for _ in 0..trials {
            let a: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
            let b: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
            let r = rank_sum(&a, &b, Alternative::TwoSided);
            if r.p_value < 0.05 {
                rejections += 1;
            }
        }
        let rate = rejections as f64 / trials as f64;
        assert!(rate < 0.10, "type-I error rate {rate}");
    }

    #[test]
    fn power_against_small_shift() {
        // The paper's setting: 50 observations per group; a modest shift
        // should be detected with high significance.
        let mut rng = StdRng::seed_from_u64(321);
        let a: Vec<f64> = (0..50).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..50).map(|_| rng.gen::<f64>() + 0.5).collect();
        let r = rank_sum(&a, &b, Alternative::Less);
        assert!(r.significance_percent > 99.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        rank_sum(&[], &[1.0], Alternative::TwoSided);
    }

    #[test]
    fn hand_computed_textbook_example() {
        // Pooled sorted: 60 68 70 75 77 80 82 85 90 92; sample-1 ranks are
        // {2, 5, 7, 8, 10}, so W = 32. With n1 = n2 = 5 and no ties:
        // E[W] = 27.5, Var[W] = 275/12, z = (4.5 − 0.5)/√(275/12) ≈ 0.8356,
        // two-sided p = 2(1 − Φ(0.8356)) ≈ 0.4033.
        let s1 = [68.0, 77.0, 82.0, 85.0, 92.0];
        let s2 = [60.0, 70.0, 75.0, 80.0, 90.0];
        let r = rank_sum(&s1, &s2, Alternative::TwoSided);
        assert_eq!(r.w, 32.0);
        assert!((r.z - 0.8356).abs() < 1e-3, "z = {}", r.z);
        assert!((r.p_value - 0.4033).abs() < 1e-3, "p = {}", r.p_value);
    }

    #[test]
    fn one_sided_p_values_complement() {
        // With the continuity correction, P(less) + P(greater) > 1 by the
        // mass at the observed point; both must still be proper and ordered.
        let a = [1.2, 3.4, 2.2, 5.0, 4.4, 0.9];
        let b = [2.0, 4.1, 3.3, 6.2, 5.7, 2.9];
        let less = rank_sum(&a, &b, Alternative::Less).p_value;
        let greater = rank_sum(&a, &b, Alternative::Greater).p_value;
        assert!(less < greater, "a is shifted left of b");
        assert!((0.0..=1.0).contains(&less) && (0.0..=1.0).contains(&greater));
        assert!((less + greater - 1.0).abs() < 0.25);
    }

    #[test]
    fn tie_correction_shrinks_variance() {
        // Heavy ties reduce Var[W]; with ties the same |W − E[W]| yields a
        // larger |z| than the tie-free variance would give. Check against
        // the closed form: Var = n1 n2/12 · (n+1 − Σ(t³−t)/(n(n−1))).
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 2.0, 3.0];
        let r = rank_sum(&a, &b, Alternative::TwoSided);
        // Tie groups: three 1s, three 2s, two 3s → Σ(t³−t) = 24+24+6 = 54.
        // Var = 16/12 · (9 − 54/56) = 16/12 · (9 − 27/28) = 10.714285…
        // W(sample1): ranks of the three 1s avg 2, the 2s avg 5, 3s avg 7.5
        // → W = 2 + 2 + 5 + 7.5 = 16.5; E[W] = 18; z = (−1.5+0.5)/√10.714.
        assert_eq!(r.w, 16.5);
        let var: f64 = 16.0 / 12.0 * (9.0 - 54.0 / 56.0);
        let z_expected = (16.5 - 18.0 + 0.5) / var.sqrt();
        assert!(
            (r.z - z_expected).abs() < 1e-12,
            "z = {} vs {}",
            r.z,
            z_expected
        );
    }
}
