//! A directory of named dataset snapshots and their mined models — any
//! model family.
//!
//! On disk a registry is a directory holding, per snapshot, a dataset file
//! and a model file (see [`SnapshotFamily`]) plus a line-oriented index:
//!
//! ```text
//! registry.manifest        line-oriented index (see below)
//! registry.layout          optional root index (see crate::shard)
//! <name>.txns / <name>.lits    lits snapshots  (focus_data::io / persist)
//! <name>.tbl  / <name>.dt      dt snapshots
//! <name>.rows / <name>.clu     cluster snapshots
//! shard-NNN/...                sharded layouts only
//! ```
//!
//! with the manifest
//!
//! ```text
//! #focus-registry v2
//! snapshot <name> kind <lits|dt|cluster> minsup <ms|-> n <rows> regions <count>
//! ```
//!
//! one line per snapshot, in insertion order. The manifest is append-only:
//! adding a snapshot writes the two artifact files, then appends its line,
//! so a torn write can at worst lose the line for artifacts that already
//! exist — never index artifacts that don't. Accordingly, a final manifest
//! line without its terminating newline is treated as that lost line: it
//! is ignored on open (whether or not it happens to parse — the writer
//! always terminates and fsyncs, so an unterminated tail is suspect by
//! construction) and surfaced through [`Registry::torn_lines`]; malformed
//! *interior* lines still fail the open. Version-1 manifests (the
//! lits-only format of earlier releases, `snapshot <name> minsup <ms> n
//! <txns> itemsets <count>`) still open — every entry reads as a lits
//! snapshot — and are upgraded in place on the first write.
//!
//! ## Layouts and formats
//!
//! [`RegistryLayout`] — fixed at creation, recorded in `registry.layout`,
//! absent for the classic flat/text layout — selects hash-sharded
//! directories (`shard-NNN/`, each with its own append-only manifest
//! carrying global `seq` numbers so insertion order survives the split)
//! and/or the binary columnar artifact format of [`crate::binfmt`]
//! (artifact files gain a `.bin` suffix and load zero-copy through
//! [`crate::binfmt::MappedBytes`]).
//!
//! ## Concurrency contract
//!
//! Artifact writes use unique temp names, so concurrent `add_snapshot`
//! calls from different handles or processes cannot clobber each other's
//! in-flight files. The *manifest append* however assumes a **single
//! writer per registry** (per shard, for sharded layouts): two writers
//! appending concurrently could interleave bytes within a line or mint
//! duplicate `seq` numbers. Readers are always safe alongside one writer.

use crate::binfmt::MappedBytes;
use crate::family::{SnapshotFamily, SnapshotKind};
use crate::matrix::{DeviationMatrix, MatrixError, MatrixParams};
use crate::shard::{RegistryLayout, LAYOUT_FILE};
use focus_core::data::TransactionSet;
use focus_core::family::LitsFamily;
use focus_core::model::LitsModel;
use focus_core::source::CountSource;
use focus_mining::{Apriori, AprioriParams};
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shard::StorageFormat;

const MANIFEST: &str = "registry.manifest";
const HEADER_V2: &str = "#focus-registry v2";
const HEADER_V1: &str = "#focus-registry v1";
const HEADER_SHARD: &str = "#focus-registry-shard v1";

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Fsyncs a directory so a just-renamed or just-created entry inside it
/// survives a crash — a rename is only durable once the *directory* is on
/// disk, not just the file. No-op on platforms where directories cannot be
/// opened for syncing.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Per-process counter making temp names unique within one process; the
/// pid in the name makes them unique across processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Durably writes one file: temp file in the same directory, `write`
/// callback, `sync_all` (flush + fsync the data), atomic rename over the
/// destination, then directory fsync so the rename itself survives a
/// crash. A crash at any point leaves either the old file or the new one,
/// never a torn or vanished entry.
///
/// The temp name is unique (pid + per-process counter) and created with
/// `create_new`, so concurrent writers — even other processes targeting
/// the same destination — can never open each other's temp file or
/// rename a half-written one into place; last completed rename wins. A
/// stale temp file left by a crashed process is never reused or
/// clobbered. On error the temp file is removed best-effort.
pub(crate) fn persist_file(
    path: &Path,
    write: impl FnOnce(&mut File) -> std::io::Result<()>,
) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp);
    let mut f = OpenOptions::new().write(true).create_new(true).open(&tmp)?;
    let written = write(&mut f).and_then(|()| f.sync_all());
    drop(f);
    let renamed = written.and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = renamed {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    sync_dir(path.parent().unwrap_or_else(|| Path::new(".")))
}

/// Makes a manifest safe to append to: if a crashed append left an
/// unterminated final line, rewrites the file (durably) without it. A
/// no-op — one metadata read plus one byte — on the healthy path.
fn repair_manifest_tail(path: &Path) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = File::open(path)?;
    if f.metadata()?.len() == 0 {
        return Ok(());
    }
    f.seek(SeekFrom::End(-1))?;
    let mut last = [0u8; 1];
    f.read_exact(&mut last)?;
    drop(f);
    if last[0] == b'\n' {
        return Ok(());
    }
    let (text, _) = read_manifest_text(path)?;
    persist_file(path, |f| f.write_all(text.as_bytes()))
}

/// Reads a manifest file, dropping an unterminated final line (a torn
/// tail from a crashed append — see the module docs). Returns the
/// surviving text and how many lines were dropped (0 or 1).
fn read_manifest_text(path: &Path) -> std::io::Result<(String, usize)> {
    let mut text = std::fs::read_to_string(path)?;
    if text.is_empty() || text.ends_with('\n') {
        return Ok((text, 0));
    }
    match text.rfind('\n') {
        Some(pos) => text.truncate(pos + 1),
        // The whole file is one unterminated line: even the header is
        // torn, so nothing survives (and the header check will fail).
        None => text.clear(),
    }
    Ok((text, 1))
}

/// One manifest entry: a named snapshot and its summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Snapshot name (file-name safe: `[A-Za-z0-9._-]`, no leading dot).
    pub name: String,
    /// The model family the snapshot belongs to.
    pub kind: SnapshotKind,
    /// Minimum support the model was mined at (`Some` for lits snapshots).
    pub minsup: Option<f64>,
    /// Number of rows/transactions in the dataset.
    pub n_rows: u64,
    /// Number of structural regions in the model (itemsets, leaves,
    /// clusters).
    pub n_regions: u64,
}

impl SnapshotEntry {
    fn manifest_line(&self) -> String {
        let ms = match self.minsup {
            Some(ms) => ms.to_string(),
            None => "-".to_string(),
        };
        format!(
            "snapshot {} kind {} minsup {} n {} regions {}",
            self.name, self.kind, ms, self.n_rows, self.n_regions
        )
    }
}

/// A collection of persisted snapshots rooted at a directory.
#[derive(Debug)]
pub struct Registry {
    root: PathBuf,
    entries: Vec<SnapshotEntry>,
    /// Snapshot names, for O(1) duplicate/membership checks at scale.
    names_idx: HashSet<String>,
    /// Manifest format found on open; v1 manifests upgrade on first write.
    version: u8,
    /// Directory layout and artifact format (fixed at creation).
    layout: RegistryLayout,
    /// Torn trailing manifest lines ignored on open (at most one per
    /// manifest file — see the module docs).
    torn: usize,
    /// Next global sequence number for sharded manifest lines.
    next_seq: u64,
}

/// A snapshot name must be usable verbatim as a file stem.
fn check_name(name: &str) -> std::io::Result<()> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(bad(&format!(
            "invalid snapshot name {name:?} (want [A-Za-z0-9._-]+, no leading dot)"
        )))
    }
}

fn parse_entry(line: &str, version: u8) -> std::io::Result<SnapshotEntry> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    let entry = if version == 1 {
        // snapshot <name> minsup <ms> n <txns> itemsets <count>
        if fields.len() != 8
            || fields[0] != "snapshot"
            || fields[2] != "minsup"
            || fields[4] != "n"
            || fields[6] != "itemsets"
        {
            return Err(bad(&format!("malformed v1 manifest line {line:?}")));
        }
        SnapshotEntry {
            name: fields[1].to_string(),
            kind: SnapshotKind::Lits,
            minsup: Some(
                fields[3]
                    .parse()
                    .map_err(|e| bad(&format!("bad minsup in manifest: {e}")))?,
            ),
            n_rows: fields[5]
                .parse()
                .map_err(|e| bad(&format!("bad n in manifest: {e}")))?,
            n_regions: fields[7]
                .parse()
                .map_err(|e| bad(&format!("bad itemset count in manifest: {e}")))?,
        }
    } else {
        // snapshot <name> kind <kind> minsup <ms|-> n <rows> regions <count>
        if fields.len() != 10
            || fields[0] != "snapshot"
            || fields[2] != "kind"
            || fields[4] != "minsup"
            || fields[6] != "n"
            || fields[8] != "regions"
        {
            return Err(bad(&format!("malformed manifest line {line:?}")));
        }
        let kind = SnapshotKind::parse(fields[3])
            .ok_or_else(|| bad(&format!("unknown snapshot kind {:?}", fields[3])))?;
        let minsup = if fields[5] == "-" {
            None
        } else {
            Some(
                fields[5]
                    .parse()
                    .map_err(|e| bad(&format!("bad minsup in manifest: {e}")))?,
            )
        };
        SnapshotEntry {
            name: fields[1].to_string(),
            kind,
            minsup,
            n_rows: fields[7]
                .parse()
                .map_err(|e| bad(&format!("bad n in manifest: {e}")))?,
            n_regions: fields[9]
                .parse()
                .map_err(|e| bad(&format!("bad region count in manifest: {e}")))?,
        }
    };
    check_name(&entry.name)?;
    Ok(entry)
}

/// Parses a sharded manifest line: a v2 entry line plus ` seq <n>`.
fn parse_shard_entry(line: &str) -> std::io::Result<(u64, SnapshotEntry)> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() != 12 || fields[10] != "seq" {
        return Err(bad(&format!("malformed shard manifest line {line:?}")));
    }
    let seq: u64 = fields[11]
        .parse()
        .map_err(|e| bad(&format!("bad seq in manifest: {e}")))?;
    let entry = parse_entry(&fields[..10].join(" "), 2)?;
    Ok((seq, entry))
}

impl Registry {
    /// Opens an existing registry, reading its layout file (if any) and
    /// manifest(s).
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        match RegistryLayout::read(&root)? {
            Some(layout) if layout.shards > 0 => Self::open_sharded(root, layout),
            Some(layout) => Self::open_flat(root, layout),
            None => Self::open_flat(root, RegistryLayout::flat_text()),
        }
    }

    fn open_flat(root: PathBuf, layout: RegistryLayout) -> std::io::Result<Self> {
        let (text, torn) = read_manifest_text(&root.join(MANIFEST))?;
        let mut lines = text.lines();
        let version = match lines.next() {
            Some(HEADER_V2) => 2,
            Some(HEADER_V1) => 1,
            _ => return Err(bad("missing registry manifest header")),
        };
        let mut entries = Vec::new();
        let mut names_idx = HashSet::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_entry(line, version)?;
            if !names_idx.insert(entry.name.clone()) {
                return Err(bad(&format!(
                    "duplicate snapshot {:?} in manifest",
                    entry.name
                )));
            }
            entries.push(entry);
        }
        let next_seq = entries.len() as u64;
        Ok(Self {
            root,
            entries,
            names_idx,
            version,
            layout,
            torn,
            next_seq,
        })
    }

    fn open_sharded(root: PathBuf, layout: RegistryLayout) -> std::io::Result<Self> {
        let mut tagged: Vec<(u64, SnapshotEntry)> = Vec::new();
        let mut torn = 0;
        for s in 0..layout.shards {
            let dir = RegistryLayout::shard_dir(s);
            let (text, t) = read_manifest_text(&root.join(&dir).join(MANIFEST))?;
            torn += t;
            let mut lines = text.lines();
            if lines.next() != Some(HEADER_SHARD) {
                return Err(bad(&format!("missing shard manifest header in {dir}")));
            }
            for line in lines {
                if line.trim().is_empty() {
                    continue;
                }
                tagged.push(parse_shard_entry(line)?);
            }
        }
        // Global insertion order is the seq order; per-shard order is
        // only the per-shard subsequence of it.
        tagged.sort_by_key(|(seq, _)| *seq);
        if let Some(w) = tagged.windows(2).find(|w| w[0].0 == w[1].0) {
            return Err(bad(&format!(
                "duplicate seq {} in shard manifests ({:?} and {:?})",
                w[0].0, w[0].1.name, w[1].1.name
            )));
        }
        let next_seq = tagged.last().map_or(0, |(s, _)| s + 1);
        let mut entries = Vec::with_capacity(tagged.len());
        let mut names_idx = HashSet::with_capacity(tagged.len());
        for (_, entry) in tagged {
            if !names_idx.insert(entry.name.clone()) {
                return Err(bad(&format!(
                    "duplicate snapshot {:?} in shard manifests",
                    entry.name
                )));
            }
            entries.push(entry);
        }
        Ok(Self {
            root,
            entries,
            names_idx,
            version: 2,
            layout,
            torn,
            next_seq,
        })
    }

    /// True when `root` already holds a registry (a manifest or a layout
    /// file).
    fn registry_exists(root: &Path) -> bool {
        root.join(MANIFEST).exists() || root.join(LAYOUT_FILE).exists()
    }

    /// Opens the registry at `root`, creating an empty one (classic
    /// flat/text layout) if none exists yet. An existing registry opens
    /// with whatever layout it was created with.
    pub fn open_or_create(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        if Self::registry_exists(&root) {
            return Self::open(root);
        }
        Self::create(root, RegistryLayout::flat_text())
    }

    /// Like [`Registry::open_or_create`], but a freshly created registry
    /// uses `layout`; opening an existing registry whose recorded layout
    /// differs from `layout` is an error (the layout is fixed at
    /// creation — re-laying-out means building a new registry).
    pub fn open_or_create_with(
        root: impl Into<PathBuf>,
        layout: RegistryLayout,
    ) -> std::io::Result<Self> {
        let root = root.into();
        if Self::registry_exists(&root) {
            let reg = Self::open(root)?;
            if reg.layout != layout {
                return Err(bad(&format!(
                    "registry already exists with shards={} format={}; asked for shards={} format={}",
                    reg.layout.shards, reg.layout.format, layout.shards, layout.format
                )));
            }
            return Ok(reg);
        }
        Self::create(root, layout)
    }

    /// Creates an empty registry. Shard directories and manifests are
    /// written first and the layout file last, so its presence certifies
    /// the structure beneath it; a crash mid-creation leaves a directory
    /// [`Registry::open`] refuses and a re-run repairs idempotently.
    fn create(root: PathBuf, layout: RegistryLayout) -> std::io::Result<Self> {
        std::fs::create_dir_all(&root)?;
        if layout.shards > 0 {
            for s in 0..layout.shards {
                let dir = root.join(RegistryLayout::shard_dir(s));
                std::fs::create_dir_all(&dir)?;
                persist_file(&dir.join(MANIFEST), |f| writeln!(f, "{HEADER_SHARD}"))?;
            }
        } else {
            persist_file(&root.join(MANIFEST), |f| writeln!(f, "{HEADER_V2}"))?;
        }
        if !layout.is_classic() {
            layout.write(&root)?;
        }
        Ok(Self {
            root,
            entries: Vec::new(),
            names_idx: HashSet::new(),
            version: 2,
            layout,
            torn: 0,
            next_seq: 0,
        })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The registry's directory layout and artifact format.
    pub fn layout(&self) -> RegistryLayout {
        self.layout
    }

    /// Number of torn trailing manifest lines ignored on open — nonzero
    /// after recovering from a crash that interrupted a manifest append.
    /// The lost line's artifacts may exist on disk unindexed; re-adding
    /// the snapshot reconciles them.
    pub fn torn_lines(&self) -> usize {
        self.torn
    }

    /// Manifest entries in insertion order.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Manifest entries of one kind, in insertion order.
    pub fn entries_of(&self, kind: SnapshotKind) -> Vec<&SnapshotEntry> {
        self.entries.iter().filter(|e| e.kind == kind).collect()
    }

    /// The distinct snapshot kinds present, in first-appearance order.
    pub fn kinds(&self) -> Vec<SnapshotKind> {
        let mut out = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.kind) {
                out.push(e.kind);
            }
        }
        out
    }

    /// Snapshot names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the registry holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if a snapshot with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.names_idx.contains(name)
    }

    fn entry(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The directory a snapshot's artifacts live in: the root for flat
    /// layouts, its hash shard otherwise.
    fn snapshot_dir(&self, name: &str) -> PathBuf {
        match self.layout.shard_of(name) {
            Some(s) => self.root.join(RegistryLayout::shard_dir(s)),
            None => self.root.clone(),
        }
    }

    fn artifact_path(&self, name: &str, ext: &str) -> PathBuf {
        let dir = self.snapshot_dir(name);
        match self.layout.format {
            StorageFormat::Text => dir.join(format!("{name}.{ext}")),
            StorageFormat::Binary => dir.join(format!("{name}.{ext}.bin")),
        }
    }

    /// The manifest file a snapshot's index line belongs in.
    fn manifest_path(&self, name: &str) -> PathBuf {
        self.snapshot_dir(name).join(MANIFEST)
    }

    /// Rewrites a v1 manifest in v2 format so new kind-tagged lines can be
    /// appended. The rewrite goes through [`persist_file`] (temp file +
    /// fsync + rename + directory fsync), so a crash leaves either the old
    /// or the new manifest, never a torn or lost one.
    fn upgrade_manifest(&mut self) -> std::io::Result<()> {
        if self.version == 2 {
            return Ok(());
        }
        persist_file(&self.root.join(MANIFEST), |f| {
            writeln!(f, "{HEADER_V2}")?;
            for e in &self.entries {
                writeln!(f, "{}", e.manifest_line())?;
            }
            Ok(())
        })?;
        self.version = 2;
        Ok(())
    }

    /// Adds a snapshot of any family: persists the dataset and model in
    /// the registry's storage format and appends the manifest line.
    /// Fails on duplicate or invalid names without touching the directory.
    pub fn add_snapshot<F: SnapshotFamily>(
        &mut self,
        name: &str,
        data: &F::Dataset,
        model: &F::Model,
    ) -> std::io::Result<&SnapshotEntry> {
        check_name(name)?;
        if self.contains(name) {
            return Err(bad(&format!("snapshot {name:?} already registered")));
        }
        match self.layout.format {
            StorageFormat::Text => {
                persist_file(&self.artifact_path(name, F::DATA_EXT), |f| {
                    F::write_dataset(data, f)
                })?;
                persist_file(&self.artifact_path(name, F::MODEL_EXT), |f| {
                    F::write_model(model, data, f)
                })?;
            }
            StorageFormat::Binary => {
                // Encode the model first: an unpersistable model (e.g.
                // classful cluster regions) must fail before any file
                // lands, exactly as the text path's first write does.
                let model_bytes = F::encode_model(model, data)?;
                let data_bytes = F::encode_dataset(data);
                persist_file(&self.artifact_path(name, F::DATA_EXT), |f| {
                    f.write_all(&data_bytes)
                })?;
                persist_file(&self.artifact_path(name, F::MODEL_EXT), |f| {
                    f.write_all(&model_bytes)
                })?;
            }
        }
        let entry = SnapshotEntry {
            name: name.to_string(),
            kind: F::KIND,
            minsup: F::model_minsup(model),
            n_rows: F::data_len(data),
            n_regions: F::model_regions(model),
        };
        let line = if self.layout.shards > 0 {
            format!("{} seq {}", entry.manifest_line(), self.next_seq)
        } else {
            self.upgrade_manifest()?;
            entry.manifest_line()
        };
        let manifest_path = self.manifest_path(name);
        // Appending after an unterminated torn tail would weld two lines
        // together; drop the tail (durably) before extending the file.
        repair_manifest_tail(&manifest_path)?;
        let mut manifest = OpenOptions::new().append(true).open(manifest_path)?;
        writeln!(manifest, "{line}")?;
        // The artifacts are already durable; make the index line durable
        // too before reporting success, or a crash could land a snapshot
        // whose files exist but which the manifest has never heard of.
        manifest.sync_all()?;
        self.next_seq += 1;
        self.names_idx.insert(entry.name.clone());
        self.entries.push(entry);
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Loads one snapshot's model, checking the stored kind matches `F`.
    pub fn load_snapshot_model<F: SnapshotFamily>(&self, name: &str) -> std::io::Result<F::Model> {
        self.check_kind::<F>(name)?;
        let path = self.artifact_path(name, F::MODEL_EXT);
        match self.layout.format {
            StorageFormat::Text => F::read_model(File::open(path)?),
            StorageFormat::Binary => F::decode_model(&MappedBytes::open(&path)?),
        }
    }

    /// Loads one snapshot's dataset, checking the stored kind matches `F`.
    /// Binary registries read zero-copy through
    /// [`crate::binfmt::MappedBytes`] where the platform allows.
    pub fn load_snapshot_dataset<F: SnapshotFamily>(
        &self,
        name: &str,
    ) -> std::io::Result<F::Dataset> {
        self.check_kind::<F>(name)?;
        let path = self.artifact_path(name, F::DATA_EXT);
        match self.layout.format {
            StorageFormat::Text => F::read_dataset(File::open(path)?),
            StorageFormat::Binary => F::decode_dataset(&MappedBytes::open(&path)?),
        }
    }

    /// Loads one **lits** snapshot as an owning [`CountSource`] — the
    /// counting handle the deviation engines scan through. Binary
    /// registries take the decode-to-index seam: the vertical tid-bitset
    /// index is built straight from the (memory-mapped) columnar words in
    /// one pass, with the same checksum and CSR validation as
    /// [`Registry::load_snapshot_dataset`] but no intermediate
    /// `TransactionSet`. Text registries wrap the parsed dataset, so the
    /// index is built lazily if and when the cost model wants it. Either
    /// way counts are bit-identical to scanning the loaded dataset.
    pub fn load_snapshot_source(&self, name: &str) -> std::io::Result<CountSource<'static>> {
        self.check_kind::<LitsFamily>(name)?;
        let path = self.artifact_path(name, <LitsFamily as SnapshotFamily>::DATA_EXT);
        match self.layout.format {
            StorageFormat::Text => Ok(CountSource::from_owned(
                <LitsFamily as SnapshotFamily>::read_dataset(File::open(path)?)?,
            )),
            StorageFormat::Binary => {
                let index =
                    crate::binfmt::decode_transactions_to_index(&MappedBytes::open(&path)?)?;
                Ok(CountSource::from_index(index))
            }
        }
    }

    fn check_kind<F: SnapshotFamily>(&self, name: &str) -> std::io::Result<()> {
        let entry = self
            .entry(name)
            .ok_or_else(|| bad(&format!("unknown snapshot {name:?}")))?;
        if entry.kind != F::KIND {
            return Err(bad(&format!(
                "snapshot {name:?} is a {} snapshot, not {}",
                entry.kind,
                F::KIND
            )));
        }
        Ok(())
    }

    /// Adds a lits snapshot: mines its model at `minsup` (same miner
    /// configuration as the CLI `mine` subcommand) and persists both.
    pub fn add(
        &mut self,
        name: &str,
        data: &TransactionSet,
        minsup: f64,
    ) -> std::io::Result<&SnapshotEntry> {
        // Reject bad/duplicate names *before* paying for the mine
        // (`add_snapshot` re-checks, but by then the work is done).
        check_name(name)?;
        if self.contains(name) {
            return Err(bad(&format!("snapshot {name:?} already registered")));
        }
        let model = Apriori::new(
            AprioriParams::with_minsup(minsup)
                .max_len(10)
                .min_count_floor(2),
        )
        .mine(data);
        self.add_with_model(name, data, &model)
    }

    /// [`Registry::add`] with a pre-mined model (any minsup / miner).
    pub fn add_with_model(
        &mut self,
        name: &str,
        data: &TransactionSet,
        model: &LitsModel,
    ) -> std::io::Result<&SnapshotEntry> {
        self.add_snapshot::<LitsFamily>(name, data, model)
    }

    /// Loads one lits snapshot's model.
    pub fn load_model(&self, name: &str) -> std::io::Result<LitsModel> {
        self.load_snapshot_model::<LitsFamily>(name)
    }

    /// Loads one lits snapshot's dataset.
    pub fn load_dataset(&self, name: &str) -> std::io::Result<TransactionSet> {
        self.load_snapshot_dataset::<LitsFamily>(name)
    }

    /// Loads every lits model, in manifest order.
    pub fn load_models(&self) -> std::io::Result<Vec<LitsModel>> {
        self.entries_of(SnapshotKind::Lits)
            .into_iter()
            .map(|e| self.load_model(&e.name))
            .collect()
    }

    /// Computes the screened pairwise deviation matrix of the registry's
    /// **lits** snapshots (see [`Registry::matrix_of`]).
    pub fn matrix(&self, params: &MatrixParams) -> std::io::Result<DeviationMatrix> {
        self.matrix_of::<LitsFamily>(params)
    }

    /// Computes the screened pairwise deviation matrix of the registry's
    /// snapshots of family `F` (other kinds are ignored). Models are
    /// loaded up front; datasets are loaded only for pairs that survive
    /// screening, so a high threshold never pays dataset IO at all —
    /// families without a model-only bound load (and scan) everything.
    pub fn matrix_of<F: SnapshotFamily>(
        &self,
        params: &MatrixParams,
    ) -> std::io::Result<DeviationMatrix> {
        params.validate()?;
        let entries = self.entries_of(F::KIND);
        let mut models = Vec::with_capacity(entries.len());
        for e in &entries {
            models.push(self.load_snapshot_model::<F>(&e.name)?);
        }
        // The screening decision needs only the models: run the phase-1
        // bound sweep once, load exactly the datasets that participate in
        // a surviving pair (the others get cheap empty stand-ins phase
        // two never touches), and hand the bounds to the engine so the
        // sweep is not paid twice.
        let bounds = crate::matrix::pair_bounds::<F>(&models, params.agg, params.par);
        let needed = crate::matrix::screened_members::<F>(&models, bounds.as_deref(), params);
        let mut datasets = Vec::with_capacity(entries.len());
        for (entry, needed) in entries.iter().zip(&needed) {
            datasets.push(if *needed {
                self.load_snapshot_dataset::<F>(&entry.name)?
            } else {
                F::empty_dataset()
            });
        }
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        Ok(crate::matrix::deviation_matrix_with_bounds::<F>(
            &models, &datasets, names, params, bounds,
        ))
    }

    /// Incremental matrix maintenance: extends `base` — a matrix computed
    /// over this registry's family-`F` snapshots *before* the latest one
    /// was added — by computing only the `N − 1` new pairs. Every old cell
    /// is copied bit-for-bit, and because per-pair deviations are
    /// independent the result is identical to recomputing
    /// [`Registry::matrix_of`] from scratch.
    ///
    /// Requires threshold screening (`params.top` must be `None`; the
    /// top-K cut is a global ranking, so it cannot be maintained pair-wise)
    /// and `params.threshold` equal to the base matrix's.
    pub fn add_to_matrix<F: SnapshotFamily>(
        &self,
        base: &DeviationMatrix,
        params: &MatrixParams,
    ) -> std::io::Result<DeviationMatrix> {
        params.validate()?;
        if params.top.is_some() {
            return Err(MatrixError::IncrementalNeedsThreshold.into());
        }
        let entries = self.entries_of(F::KIND);
        if entries.len() != base.len() + 1 {
            return Err(MatrixError::BaseMismatch(format!(
                "registry holds {} {} snapshot(s), base matrix covers {} (want exactly one new)",
                entries.len(),
                F::KIND,
                base.len()
            ))
            .into());
        }
        for (entry, name) in entries.iter().zip(base.names()) {
            if entry.name != *name {
                return Err(MatrixError::BaseMismatch(format!(
                    "snapshot {:?} vs base name {:?}",
                    entry.name, name
                ))
                .into());
            }
        }
        if base.threshold().to_bits() != params.threshold.to_bits() {
            return Err(MatrixError::BaseMismatch(format!(
                "base threshold {} vs params threshold {}",
                base.threshold(),
                params.threshold
            ))
            .into());
        }
        // The old cells carry the base's (f, g); extending them with pairs
        // measured differently would silently mix incompatible measures.
        // (Custom difference functions always mismatch here: function-
        // pointer identity is not a reliable equality witness, so refuse.)
        if !crate::matrix::same_diff(base.diff(), params.diff) || base.agg() != params.agg {
            return Err(MatrixError::BaseMismatch(format!(
                "base matrix used {:?}/{:?}, params ask for {:?}/{:?}",
                base.diff(),
                base.agg(),
                params.diff,
                params.agg
            ))
            .into());
        }

        let mut models = Vec::with_capacity(entries.len());
        for e in &entries {
            models.push(self.load_snapshot_model::<F>(&e.name)?);
        }
        let n = models.len();
        let last = n - 1;
        // Screen the N−1 new pairs from the models (and, with
        // `params.triangle` on a metric family, from the base matrix's
        // stored bounds — most new pairs then skip even the bound
        // evaluation).
        let plan = crate::matrix::plan_new_pairs::<F>(base, &models, params);
        // Load the new dataset plus every old dataset that participates in
        // a surviving new pair; the rest get empty stand-ins. The survivor
        // list is the same one `extend_matrix` will scan.
        let mut needed = vec![false; n];
        needed[last] = true;
        for &i in &plan.survivors {
            needed[i] = true;
        }
        let mut datasets = Vec::with_capacity(n);
        for (entry, needed) in entries.iter().zip(&needed) {
            datasets.push(if *needed {
                self.load_snapshot_dataset::<F>(&entry.name)?
            } else {
                F::empty_dataset()
            });
        }
        let names: Vec<String> = entries.iter().map(|e| e.name.clone()).collect();
        Ok(crate::matrix::extend_matrix::<F>(
            base, &models, &datasets, names, params, plan,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_core::data::{LabeledTable, Schema, Value};
    use focus_core::family::{ClusterFamily, DtFamily};
    use focus_core::model::{induce_dt_measures, ClusterModel};
    use focus_core::region::BoxBuilder;
    use focus_exec::Parallelism;
    use std::sync::Arc;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus-registry-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    #[test]
    fn add_persists_and_reopens() {
        let dir = scratch("roundtrip");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let d1 = random_dataset(1, 300, 0.0);
        let d2 = random_dataset(2, 300, 1.0);
        reg.add("day-01", &d1, 0.1).unwrap();
        reg.add("day-02", &d2, 0.1).unwrap();
        assert_eq!(reg.names(), vec!["day-01", "day-02"]);

        // A fresh handle sees the same entries and identical artifacts.
        let back = Registry::open(&dir).unwrap();
        assert_eq!(back.entries(), reg.entries());
        assert_eq!(back.load_dataset("day-01").unwrap(), d1);
        let m1 = back.load_model("day-01").unwrap();
        assert_eq!(m1.minsup(), 0.1);
        assert!(!m1.is_empty());
        assert_eq!(back.entries()[0].kind, SnapshotKind::Lits);
        assert_eq!(back.entries()[0].minsup, Some(0.1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_duplicates_and_bad_names() {
        let dir = scratch("names");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let d = random_dataset(1, 100, 0.0);
        reg.add("ok", &d, 0.2).unwrap();
        assert!(reg.add("ok", &d, 0.2).is_err(), "duplicate must fail");
        for bad_name in ["", "has space", "a/b", ".hidden", "semi;colon"] {
            assert!(reg.add(bad_name, &d, 0.2).is_err(), "{bad_name:?}");
        }
        // Failed adds leave the registry unchanged.
        assert_eq!(reg.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_requires_manifest() {
        let dir = scratch("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Registry::open(&dir).is_err());
        // A garbage manifest is InvalidData, not a panic.
        std::fs::write(dir.join(MANIFEST), "not a manifest\n").unwrap();
        let err = Registry::open(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_snapshot_is_an_error() {
        let dir = scratch("unknown");
        let reg = Registry::open_or_create(&dir).unwrap();
        assert!(reg.load_model("nope").is_err());
        assert!(reg.load_dataset("nope").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_source_counts_match_loaded_dataset() {
        use focus_core::model::count_itemsets_par;
        use focus_core::region::Itemset;
        for format in [StorageFormat::Text, StorageFormat::Binary] {
            let dir = scratch(&format!("source-{format:?}"));
            let layout = RegistryLayout { shards: 0, format };
            let mut reg = Registry::open_or_create_with(&dir, layout).unwrap();
            let data = random_dataset(7, 250, 0.5);
            reg.add("day-01", &data, 0.1).unwrap();

            let source = reg.load_snapshot_source("day-01").unwrap();
            // Binary registries decode straight to the index; text ones
            // defer the build to the cost model.
            assert_eq!(source.index_built(), format == StorageFormat::Binary);
            assert_eq!(source.len(), data.len());

            let itemsets: Vec<Itemset> = (0..8u32)
                .map(|i| Itemset::from_slice(&[i, (i + 3) % 8]))
                .chain(std::iter::once(Itemset::new(vec![])))
                .collect();
            let expect = count_itemsets_par(&data, &itemsets, Parallelism::Sequential);
            assert_eq!(
                source.counts(&itemsets, Parallelism::Sequential),
                expect,
                "{format:?}"
            );

            // Non-lits snapshots and unknown names are errors.
            let (dt_data, dt_model) = dt_snapshot(40.0);
            reg.add_snapshot::<DtFamily>("dt-day", &dt_data, &dt_model)
                .unwrap();
            assert!(reg.load_snapshot_source("dt-day").is_err());
            assert!(reg.load_snapshot_source("nope").is_err());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn v1_manifests_open_as_lits_and_upgrade_on_write() {
        let dir = scratch("v1compat");
        // Build a registry, then rewrite its manifest in the v1 format.
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let d = random_dataset(1, 200, 0.0);
        reg.add("day-01", &d, 0.2).unwrap();
        let entry = reg.entries()[0].clone();
        std::fs::write(
            dir.join(MANIFEST),
            format!(
                "{HEADER_V1}\nsnapshot {} minsup {} n {} itemsets {}\n",
                entry.name,
                entry.minsup.unwrap(),
                entry.n_rows,
                entry.n_regions
            ),
        )
        .unwrap();

        let mut back = Registry::open(&dir).unwrap();
        assert_eq!(back.entries(), std::slice::from_ref(&entry));
        assert_eq!(back.load_dataset("day-01").unwrap(), d);

        // The first write upgrades the manifest in place to v2.
        back.add("day-02", &random_dataset(2, 200, 1.0), 0.2)
            .unwrap();
        let text = std::fs::read_to_string(dir.join(MANIFEST)).unwrap();
        assert!(text.starts_with(HEADER_V2), "{text}");
        let again = Registry::open(&dir).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.entries()[0], entry);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn dt_snapshot_rows(boundary: f64, rows: usize) -> (LabeledTable, focus_core::model::DtModel) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut d = LabeledTable::new(Arc::clone(&schema), 2);
        for r in 0..rows {
            let x = r as f64;
            d.push_row(&[Value::Num(x)], u32::from(x < boundary));
        }
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("x", boundary).build(),
                BoxBuilder::new(&schema).ge("x", boundary).build(),
            ],
            &d,
        );
        (d, model)
    }

    fn dt_snapshot(boundary: f64) -> (LabeledTable, focus_core::model::DtModel) {
        dt_snapshot_rows(boundary, 150)
    }

    #[test]
    fn mixed_kind_registry_round_trips_and_filters() {
        let dir = scratch("mixed");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let lits_data = random_dataset(1, 200, 0.0);
        reg.add("txn-day", &lits_data, 0.2).unwrap();
        let (dt_data, dt_model) = dt_snapshot(40.0);
        reg.add_snapshot::<DtFamily>("dt-day", &dt_data, &dt_model)
            .unwrap();

        assert_eq!(reg.kinds(), vec![SnapshotKind::Lits, SnapshotKind::Dt]);
        assert_eq!(reg.entries_of(SnapshotKind::Dt).len(), 1);
        assert_eq!(reg.entries_of(SnapshotKind::Lits).len(), 1);
        let dt_entry = reg.entries_of(SnapshotKind::Dt)[0];
        assert_eq!(dt_entry.minsup, None);
        assert_eq!(dt_entry.n_regions, 2);

        // Reopen: kinds survive; typed loads enforce the kind.
        let back = Registry::open(&dir).unwrap();
        assert_eq!(back.entries(), reg.entries());
        assert_eq!(
            back.load_snapshot_model::<DtFamily>("dt-day").unwrap(),
            dt_model
        );
        assert_eq!(
            back.load_snapshot_dataset::<DtFamily>("dt-day").unwrap(),
            dt_data
        );
        let err = back.load_snapshot_model::<DtFamily>("txn-day").unwrap_err();
        assert!(err.to_string().contains("lits snapshot"), "{err}");
        // The lits matrix sees only the lits snapshot.
        let m = back.matrix(&MatrixParams::default()).unwrap();
        assert_eq!(m.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dt_matrix_from_registry_screens_and_skips_pruned_io() {
        let dir = scratch("dtmatrix");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        // `a` and `b` share a leaf partition (small bound); `c` does not
        // (bound = full mass of both trees, 2.0).
        for (name, b, rows) in [("a", 30.0, 120), ("b", 30.0, 150), ("c", 90.0, 150)] {
            let (d, m) = dt_snapshot_rows(b, rows);
            reg.add_snapshot::<DtFamily>(name, &d, &m).unwrap();
        }
        let full = reg
            .matrix_of::<DtFamily>(&MatrixParams {
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            })
            .unwrap();
        assert!(full.has_bounds());
        assert_eq!((full.n_pairs(), full.pruned()), (3, 0));

        // Threshold 2.5 prunes every pair: (a, b)'s bound is tiny and the
        // structurally-different pairs max out at the trees' total mass
        // (2.0). With nothing surviving, no dataset is ever read — prove
        // it by corrupting the dataset files.
        for name in ["a", "b", "c"] {
            std::fs::write(dir.join(format!("{name}.tbl")), "garbage").unwrap();
        }
        let screened = reg
            .matrix_of::<DtFamily>(&MatrixParams {
                threshold: 2.5,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            })
            .unwrap();
        assert_eq!((screened.scanned(), screened.pruned()), (0, 3));
        // The bounds survive unchanged and still embed (dt δ* is a metric).
        assert_eq!(screened.bound(0, 2).to_bits(), full.bound(0, 2).to_bits());
        assert_eq!(screened.embed(2).unwrap().len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_from_registry_prunes_and_scans() {
        let dir = scratch("matrix");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        // Two similar snapshots and one far-away one: with a threshold
        // between the intra- and inter-group bounds, exactly one pair is
        // pruned.
        reg.add("a", &random_dataset(1, 300, 0.0), 0.15).unwrap();
        reg.add("b", &random_dataset(2, 300, 0.0), 0.15).unwrap();
        reg.add("c", &random_dataset(3, 300, 1.0), 0.15).unwrap();
        let mut params = MatrixParams {
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let all = reg.matrix(&params).unwrap();
        assert_eq!(all.n_pairs(), 3);
        assert_eq!(all.pruned(), 0, "threshold 0 scans every positive pair");

        params.threshold = all.bound(0, 1) + 1e-9;
        let screened = reg.matrix(&params).unwrap();
        assert!(screened.pruned() >= 1, "similar pair must be pruned");
        assert!(screened.scanned() >= 1, "distant pair must be scanned");
        // Screening never changes the values of surviving pairs.
        for i in 0..3 {
            for j in (i + 1)..3 {
                if screened.exact(i, j).is_some() {
                    assert_eq!(
                        screened.exact(i, j).unwrap().to_bits(),
                        all.exact(i, j).unwrap().to_bits()
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_to_matrix_matches_full_recompute() {
        let dir = scratch("incremental");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        reg.add("a", &random_dataset(1, 300, 0.0), 0.15).unwrap();
        reg.add("b", &random_dataset(2, 300, 0.3), 0.15).unwrap();
        reg.add("c", &random_dataset(3, 300, 0.7), 0.15).unwrap();
        let params = MatrixParams {
            threshold: 0.5,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let base = reg.matrix(&params).unwrap();

        reg.add("d", &random_dataset(4, 300, 1.0), 0.15).unwrap();
        let incremental = reg.add_to_matrix::<LitsFamily>(&base, &params).unwrap();
        let full = reg.matrix(&params).unwrap();

        assert_eq!(incremental.names(), full.names());
        assert_eq!(incremental.scanned(), full.scanned());
        assert_eq!(incremental.pruned(), full.pruned());
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    incremental.bound(i, j).to_bits(),
                    full.bound(i, j).to_bits(),
                    "bound({i},{j})"
                );
                assert_eq!(
                    incremental.exact(i, j).map(f64::to_bits),
                    full.exact(i, j).map(f64::to_bits),
                    "exact({i},{j})"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_to_matrix_triangle_skips_bounds_but_matches_plain() {
        let dir = scratch("triangle");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        // Two tight groups; the threshold separates intra- from
        // inter-group bounds, so once one new pair of each flavour has
        // been evaluated the triangle envelopes decide the rest.
        for (name, seed, skew) in [
            ("a1", 1, 0.0),
            ("a2", 2, 0.05),
            ("b1", 3, 1.0),
            ("b2", 4, 0.95),
            ("a3", 5, 0.02),
        ] {
            reg.add(name, &random_dataset(seed, 300, skew), 0.15)
                .unwrap();
        }
        let probe = reg
            .matrix(&MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            })
            .unwrap();
        let intra = probe.bound(0, 1);
        let inter = probe.bound(0, 2);
        assert!(intra < inter);
        let params = MatrixParams {
            threshold: (intra + inter) / 2.0,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let base = reg.matrix(&params).unwrap();

        // Append a sixth snapshot from group a and extend both ways.
        reg.add("a4", &random_dataset(6, 300, 0.03), 0.15).unwrap();
        let plain = reg.add_to_matrix::<LitsFamily>(&base, &params).unwrap();
        let tri = reg
            .add_to_matrix::<LitsFamily>(
                &base,
                &MatrixParams {
                    triangle: true,
                    ..params
                },
            )
            .unwrap();

        assert_eq!(plain.bound_skips(), 0);
        assert!(tri.bound_skips() > 0, "triangle must skip bound evals");
        assert_eq!(tri.scanned(), plain.scanned());
        assert_eq!(tri.pruned(), plain.pruned());
        // Every surviving exact cell is bit-identical; the only difference
        // is NaN holes in the bound grid where evaluation was skipped.
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(
                    tri.exact(i, j).map(f64::to_bits),
                    plain.exact(i, j).map(f64::to_bits),
                    "exact({i},{j})"
                );
                let (tb, pb) = (tri.bound(i, j), plain.bound(i, j));
                assert!(
                    tb.is_nan() || tb.to_bits() == pb.to_bits(),
                    "bound({i},{j}): {tb} vs {pb}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_to_matrix_rejects_mismatched_bases() {
        let dir = scratch("incremental-guard");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        reg.add("a", &random_dataset(1, 200, 0.0), 0.15).unwrap();
        reg.add("b", &random_dataset(2, 200, 0.5), 0.15).unwrap();
        let params = MatrixParams {
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let base = reg.matrix(&params).unwrap();

        // No new snapshot yet: the registry matches the base exactly.
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &params).is_err());

        reg.add("c", &random_dataset(3, 200, 1.0), 0.15).unwrap();
        // Threshold mismatch.
        let other = MatrixParams {
            threshold: 9.0,
            ..params
        };
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &other).is_err());
        // Top-K mode is not maintainable incrementally.
        let topped = MatrixParams {
            top: Some(1),
            ..params
        };
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &topped).is_err());
        // A different difference or aggregate function would mix
        // incompatible measures into the copied cells.
        let other_diff = MatrixParams {
            diff: focus_core::diff::DiffFn::Scaled,
            ..params
        };
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &other_diff).is_err());
        let other_agg = MatrixParams {
            agg: focus_core::diff::AggFn::Max,
            ..params
        };
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &other_agg).is_err());
        // A matching call succeeds.
        assert!(reg.add_to_matrix::<LitsFamily>(&base, &params).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_manifest_line_is_tolerated_at_every_offset() {
        let dir = scratch("torn");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        reg.add("day-01", &random_dataset(1, 80, 0.0), 0.3).unwrap();
        reg.add("day-02", &random_dataset(2, 80, 1.0), 0.3).unwrap();
        let full = std::fs::read(dir.join(MANIFEST)).unwrap();
        assert_eq!(*full.last().unwrap(), b'\n', "writer terminates lines");

        // Crash-inject: truncate the manifest at every byte offset. The
        // complete lines must survive, an unterminated tail must be
        // dropped (and counted), and a manifest whose header never made
        // it to disk must refuse to open.
        for cut in 0..=full.len() {
            let prefix = &full[..cut];
            std::fs::write(dir.join(MANIFEST), prefix).unwrap();
            let newlines = prefix.iter().filter(|&&b| b == b'\n').count();
            let opened = Registry::open(&dir);
            if newlines == 0 {
                assert!(opened.is_err(), "cut {cut}: headerless must fail");
                continue;
            }
            let back = opened.unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(back.len(), newlines - 1, "cut {cut}");
            let torn = usize::from(!prefix.ends_with(b"\n"));
            assert_eq!(back.torn_lines(), torn, "cut {cut}");
            for (i, e) in back.entries().iter().enumerate() {
                assert_eq!(e.name, format!("day-0{}", i + 1), "cut {cut}");
            }
        }

        // Recovery: re-adding the snapshot whose line was torn works on
        // the reopened handle (its artifacts are simply overwritten).
        std::fs::write(dir.join(MANIFEST), &full[..full.len() - 1]).unwrap();
        let mut back = Registry::open(&dir).unwrap();
        assert_eq!((back.len(), back.torn_lines()), (1, 1));
        back.add("day-02", &random_dataset(2, 80, 1.0), 0.3)
            .unwrap();
        assert_eq!(
            Registry::open(&dir).unwrap().names(),
            vec!["day-01", "day-02"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_terminated_lines_still_error() {
        let dir = scratch("interior");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        reg.add("day-01", &random_dataset(1, 80, 0.0), 0.3).unwrap();
        let full = std::fs::read_to_string(dir.join(MANIFEST)).unwrap();

        // A malformed *interior* line is corruption, not a torn append.
        let (header, entry) = full.split_once('\n').unwrap();
        std::fs::write(dir.join(MANIFEST), format!("{header}\nwat wat\n{entry}")).unwrap();
        assert!(Registry::open(&dir).is_err());
        // So is a malformed *final* line that carries its newline: the
        // writer terminated it, so truncation cannot explain the damage.
        std::fs::write(dir.join(MANIFEST), format!("{full}wat wat\n")).unwrap();
        assert!(Registry::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_file_ignores_stale_tmp_files_and_cleans_up() {
        let dir = scratch("tmpfiles");
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.txt");
        // A stale temp from the old fixed-name scheme (or any crashed
        // writer) must be neither reused nor clobbered.
        let stale = dir.join("out.txt.tmp");
        std::fs::write(&stale, "stale").unwrap();
        persist_file(&target, |f| f.write_all(b"fresh")).unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "fresh");
        assert_eq!(std::fs::read_to_string(&stale).unwrap(), "stale");

        // A failed write leaves no temp droppings and no target.
        let missing = dir.join("never.txt");
        let err = persist_file(&missing, |_| Err(bad("boom"))).unwrap_err();
        assert_eq!(err.to_string(), "boom");
        assert!(!missing.exists());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn cluster_snapshot(split: f64) -> (focus_core::data::Table, ClusterModel) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut t = focus_core::data::Table::new(Arc::clone(&schema));
        for r in 0..80 {
            t.push_row(&[Value::Num(r as f64)]);
        }
        let clusters = vec![
            BoxBuilder::new(&schema).lt("x", split).build(),
            BoxBuilder::new(&schema).ge("x", split).build(),
        ];
        let lo = (split.clamp(0.0, 80.0) / 80.0 * 80.0).round() / 80.0;
        let model = ClusterModel::new(clusters, vec![lo, 1.0 - lo], t.len() as u64);
        (t, model)
    }

    #[test]
    fn sharded_binary_registry_round_trips_all_families() {
        let dir = scratch("sharded-bin");
        let layout = RegistryLayout {
            shards: 3,
            format: StorageFormat::Binary,
        };
        let mut reg = Registry::open_or_create_with(&dir, layout).unwrap();
        assert_eq!(reg.layout(), layout);

        let lits_data = random_dataset(1, 200, 0.4);
        reg.add("txn-day", &lits_data, 0.2).unwrap();
        let (dt_data, dt_model) = dt_snapshot(40.0);
        reg.add_snapshot::<DtFamily>("dt-day", &dt_data, &dt_model)
            .unwrap();
        let (clu_data, clu_model) = cluster_snapshot(30.0);
        reg.add_snapshot::<ClusterFamily>("clu-day", &clu_data, &clu_model)
            .unwrap();

        // Artifacts live in shard directories with a `.bin` suffix; the
        // root holds only the layout file and the shard directories.
        for name in ["txn-day", "dt-day", "clu-day"] {
            let shard = layout.shard_of(name).unwrap();
            let sdir = dir.join(RegistryLayout::shard_dir(shard));
            let found = std::fs::read_dir(&sdir)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .filter(|f| f.starts_with(name))
                .collect::<Vec<_>>();
            assert_eq!(found.len(), 2, "{name}: {found:?}");
            assert!(found.iter().all(|f| f.ends_with(".bin")), "{found:?}");
        }
        let root_files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            root_files
                .iter()
                .all(|f| f == LAYOUT_FILE || f.starts_with("shard-")),
            "{root_files:?}"
        );

        // A fresh handle merges the shard manifests back into insertion
        // order and decodes identical artifacts.
        let back = Registry::open(&dir).unwrap();
        assert_eq!(back.entries(), reg.entries());
        assert_eq!(back.names(), vec!["txn-day", "dt-day", "clu-day"]);
        assert_eq!(back.load_dataset("txn-day").unwrap(), lits_data);
        assert_eq!(
            back.load_snapshot_dataset::<DtFamily>("dt-day").unwrap(),
            dt_data
        );
        assert_eq!(
            back.load_snapshot_model::<DtFamily>("dt-day").unwrap(),
            dt_model
        );
        assert_eq!(
            back.load_snapshot_dataset::<ClusterFamily>("clu-day")
                .unwrap(),
            clu_data
        );
        assert_eq!(
            back.load_snapshot_model::<ClusterFamily>("clu-day")
                .unwrap(),
            clu_model
        );

        // `open_or_create` respects the existing layout instead of
        // clobbering it; asking for a *different* layout is an error.
        assert_eq!(Registry::open_or_create(&dir).unwrap().layout(), layout);
        assert!(Registry::open_or_create_with(&dir, RegistryLayout::flat_text()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_manifest_torn_tail_is_tolerated() {
        let dir = scratch("shard-torn");
        let layout = RegistryLayout {
            shards: 2,
            format: StorageFormat::Text,
        };
        let mut reg = Registry::open_or_create_with(&dir, layout).unwrap();
        for (name, seed) in [("a", 1), ("b", 2), ("c", 3)] {
            reg.add(name, &random_dataset(seed, 80, 0.0), 0.3).unwrap();
        }
        // "c" holds the greatest seq, so it is the last line of its
        // shard's manifest; tear that line mid-byte.
        let shard = layout.shard_of("c").unwrap();
        let manifest = dir.join(RegistryLayout::shard_dir(shard)).join(MANIFEST);
        let text = std::fs::read(&manifest).unwrap();
        std::fs::write(&manifest, &text[..text.len() - 3]).unwrap();

        let mut back = Registry::open(&dir).unwrap();
        assert_eq!(back.torn_lines(), 1);
        assert_eq!(back.names(), vec!["a", "b"]);
        // Re-adding the lost snapshot reconciles; insertion order and seq
        // numbering pick up where the survivors left off.
        back.add("c", &random_dataset(3, 80, 0.0), 0.3).unwrap();
        let healed = Registry::open(&dir).unwrap();
        assert_eq!(healed.names(), vec!["a", "b", "c"]);
        assert_eq!(healed.torn_lines(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_add_of_unpersistable_model_leaves_directory_untouched() {
        let dir = scratch("bin-reject");
        let layout = RegistryLayout {
            shards: 0,
            format: StorageFormat::Binary,
        };
        let mut reg = Registry::open_or_create_with(&dir, layout).unwrap();
        let (t, clu) = cluster_snapshot(30.0);
        let classful = ClusterModel::new(
            clu.clusters()
                .iter()
                .map(|c| c.clone().with_class(0))
                .collect(),
            clu.measures().to_vec(),
            clu.n_rows(),
        );
        assert!(reg
            .add_snapshot::<ClusterFamily>("nope", &t, &classful)
            .is_err());
        assert_eq!(reg.len(), 0);
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            files.iter().all(|f| f == MANIFEST || f == LAYOUT_FILE),
            "{files:?}"
        );

        // The persistable model goes through, with `.bin` artifacts in
        // the (flat) root.
        reg.add_snapshot::<ClusterFamily>("ok", &t, &clu).unwrap();
        assert!(dir.join("ok.rows.bin").exists());
        assert!(dir.join("ok.clu.bin").exists());
        let back = Registry::open(&dir).unwrap();
        assert_eq!(
            back.load_snapshot_model::<ClusterFamily>("ok").unwrap(),
            clu
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
