//! A directory of named dataset snapshots and their mined models.
//!
//! On disk a registry is a directory holding
//!
//! ```text
//! registry.manifest        line-oriented index (see below)
//! <name>.txns              the dataset  (focus_data::io format)
//! <name>.lits              its lits-model (focus_core::persist format)
//! ```
//!
//! with the manifest
//!
//! ```text
//! #focus-registry v1
//! snapshot <name> minsup <ms> n <transactions> itemsets <count>
//! ```
//!
//! one line per snapshot, in insertion order. The manifest is append-only:
//! adding a snapshot writes the two artifact files, then appends its line,
//! so a torn write can at worst lose the line for artifacts that already
//! exist — never index artifacts that don't.

use crate::matrix::{DeviationMatrix, MatrixParams};
use focus_core::data::TransactionSet;
use focus_core::model::LitsModel;
use focus_core::persist::{read_lits_model, write_lits_model};
use focus_data::io::{read_transactions, write_transactions};
use focus_mining::{Apriori, AprioriParams};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "registry.manifest";
const HEADER: &str = "#focus-registry v1";

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// One manifest entry: a named snapshot and its summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Snapshot name (file-name safe: `[A-Za-z0-9._-]`, no leading dot).
    pub name: String,
    /// Minimum support the model was mined at.
    pub minsup: f64,
    /// Number of transactions in the dataset.
    pub n_transactions: u64,
    /// Number of frequent itemsets in the model.
    pub n_itemsets: u64,
}

/// A collection of persisted snapshots rooted at a directory.
#[derive(Debug)]
pub struct Registry {
    root: PathBuf,
    entries: Vec<SnapshotEntry>,
}

/// A snapshot name must be usable verbatim as a file stem.
fn check_name(name: &str) -> std::io::Result<()> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(bad(&format!(
            "invalid snapshot name {name:?} (want [A-Za-z0-9._-]+, no leading dot)"
        )))
    }
}

impl Registry {
    /// Opens an existing registry, reading its manifest.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        let text = std::fs::read_to_string(root.join(MANIFEST))?;
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            _ => return Err(bad("missing registry manifest header")),
        }
        let mut entries = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            // snapshot <name> minsup <ms> n <txns> itemsets <count>
            if fields.len() != 8
                || fields[0] != "snapshot"
                || fields[2] != "minsup"
                || fields[4] != "n"
                || fields[6] != "itemsets"
            {
                return Err(bad(&format!("malformed manifest line {line:?}")));
            }
            check_name(fields[1])?;
            let entry = SnapshotEntry {
                name: fields[1].to_string(),
                minsup: fields[3]
                    .parse()
                    .map_err(|e| bad(&format!("bad minsup in manifest: {e}")))?,
                n_transactions: fields[5]
                    .parse()
                    .map_err(|e| bad(&format!("bad n in manifest: {e}")))?,
                n_itemsets: fields[7]
                    .parse()
                    .map_err(|e| bad(&format!("bad itemset count in manifest: {e}")))?,
            };
            if entries.iter().any(|e: &SnapshotEntry| e.name == entry.name) {
                return Err(bad(&format!(
                    "duplicate snapshot {:?} in manifest",
                    entry.name
                )));
            }
            entries.push(entry);
        }
        Ok(Self { root, entries })
    }

    /// Opens the registry at `root`, creating an empty one (directory and
    /// manifest) if none exists yet.
    pub fn open_or_create(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        if root.join(MANIFEST).exists() {
            return Self::open(root);
        }
        std::fs::create_dir_all(&root)?;
        let mut f = File::create(root.join(MANIFEST))?;
        writeln!(f, "{HEADER}")?;
        Ok(Self {
            root,
            entries: Vec::new(),
        })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Manifest entries in insertion order.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Snapshot names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the registry holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if a snapshot with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    fn data_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.txns"))
    }

    fn model_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.lits"))
    }

    /// Adds a snapshot: mines its lits-model at `minsup` (same miner
    /// configuration as the CLI `mine` subcommand), persists dataset and
    /// model, and appends the manifest line. Fails on duplicate or invalid
    /// names without touching the directory.
    pub fn add(
        &mut self,
        name: &str,
        data: &TransactionSet,
        minsup: f64,
    ) -> std::io::Result<&SnapshotEntry> {
        // Reject bad/duplicate names *before* paying for the mine
        // (`add_with_model` re-checks, but by then the work is done).
        check_name(name)?;
        if self.contains(name) {
            return Err(bad(&format!("snapshot {name:?} already registered")));
        }
        let model = Apriori::new(
            AprioriParams::with_minsup(minsup)
                .max_len(10)
                .min_count_floor(2),
        )
        .mine(data);
        self.add_with_model(name, data, &model)
    }

    /// [`Registry::add`] with a pre-mined model (any minsup / miner).
    pub fn add_with_model(
        &mut self,
        name: &str,
        data: &TransactionSet,
        model: &LitsModel,
    ) -> std::io::Result<&SnapshotEntry> {
        check_name(name)?;
        if self.contains(name) {
            return Err(bad(&format!("snapshot {name:?} already registered")));
        }
        write_transactions(data, File::create(self.data_path(name))?)?;
        write_lits_model(model, File::create(self.model_path(name))?)?;
        let entry = SnapshotEntry {
            name: name.to_string(),
            minsup: model.minsup(),
            n_transactions: data.len() as u64,
            n_itemsets: model.len() as u64,
        };
        let mut manifest = OpenOptions::new()
            .append(true)
            .open(self.root.join(MANIFEST))?;
        writeln!(
            manifest,
            "snapshot {} minsup {} n {} itemsets {}",
            entry.name, entry.minsup, entry.n_transactions, entry.n_itemsets
        )?;
        manifest.flush()?;
        self.entries.push(entry);
        Ok(self.entries.last().expect("just pushed"))
    }

    /// Loads one snapshot's model.
    pub fn load_model(&self, name: &str) -> std::io::Result<LitsModel> {
        if !self.contains(name) {
            return Err(bad(&format!("unknown snapshot {name:?}")));
        }
        read_lits_model(File::open(self.model_path(name))?)
    }

    /// Loads one snapshot's dataset.
    pub fn load_dataset(&self, name: &str) -> std::io::Result<TransactionSet> {
        if !self.contains(name) {
            return Err(bad(&format!("unknown snapshot {name:?}")));
        }
        read_transactions(File::open(self.data_path(name))?)
    }

    /// Loads every model, in manifest order.
    pub fn load_models(&self) -> std::io::Result<Vec<LitsModel>> {
        self.entries
            .iter()
            .map(|e| self.load_model(&e.name))
            .collect()
    }

    /// Computes the δ*-screened pairwise deviation matrix of the whole
    /// collection (see [`deviation_matrix_par`]). Models are loaded up
    /// front; datasets are loaded only for pairs that survive screening,
    /// so a high threshold never pays dataset IO at all.
    pub fn matrix(&self, params: &MatrixParams) -> std::io::Result<DeviationMatrix> {
        let models = self.load_models()?;
        // The screening decision needs only the models: run the phase-1
        // bound sweep once, load exactly the datasets that participate in
        // a surviving pair (the others get cheap empty stand-ins phase
        // two never touches), and hand the bounds to the engine so the
        // sweep is not paid twice.
        let bounds = crate::matrix::pair_bounds(&models, params.agg, params.par);
        let needed = crate::matrix::screened_members(&models, &bounds, params);
        let mut datasets = Vec::with_capacity(self.len());
        for (entry, needed) in self.entries.iter().zip(&needed) {
            datasets.push(if *needed {
                self.load_dataset(&entry.name)?
            } else {
                TransactionSet::new(0)
            });
        }
        let names: Vec<String> = self.entries.iter().map(|e| e.name.clone()).collect();
        Ok(crate::matrix::deviation_matrix_with_bounds(
            &models, &datasets, names, params, bounds,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_exec::Parallelism;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus-registry-{tag}-{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }
        dir
    }

    #[test]
    fn add_persists_and_reopens() {
        let dir = scratch("roundtrip");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let d1 = random_dataset(1, 300, 0.0);
        let d2 = random_dataset(2, 300, 1.0);
        reg.add("day-01", &d1, 0.1).unwrap();
        reg.add("day-02", &d2, 0.1).unwrap();
        assert_eq!(reg.names(), vec!["day-01", "day-02"]);

        // A fresh handle sees the same entries and identical artifacts.
        let back = Registry::open(&dir).unwrap();
        assert_eq!(back.entries(), reg.entries());
        assert_eq!(back.load_dataset("day-01").unwrap(), d1);
        let m1 = back.load_model("day-01").unwrap();
        assert_eq!(m1.minsup(), 0.1);
        assert!(!m1.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_duplicates_and_bad_names() {
        let dir = scratch("names");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        let d = random_dataset(1, 100, 0.0);
        reg.add("ok", &d, 0.2).unwrap();
        assert!(reg.add("ok", &d, 0.2).is_err(), "duplicate must fail");
        for bad_name in ["", "has space", "a/b", ".hidden", "semi;colon"] {
            assert!(reg.add(bad_name, &d, 0.2).is_err(), "{bad_name:?}");
        }
        // Failed adds leave the registry unchanged.
        assert_eq!(reg.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_requires_manifest() {
        let dir = scratch("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(Registry::open(&dir).is_err());
        // A garbage manifest is InvalidData, not a panic.
        std::fs::write(dir.join(MANIFEST), "not a manifest\n").unwrap();
        let err = Registry::open(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_snapshot_is_an_error() {
        let dir = scratch("unknown");
        let reg = Registry::open_or_create(&dir).unwrap();
        assert!(reg.load_model("nope").is_err());
        assert!(reg.load_dataset("nope").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_from_registry_prunes_and_scans() {
        let dir = scratch("matrix");
        let mut reg = Registry::open_or_create(&dir).unwrap();
        // Two similar snapshots and one far-away one: with a threshold
        // between the intra- and inter-group bounds, exactly one pair is
        // pruned.
        reg.add("a", &random_dataset(1, 300, 0.0), 0.15).unwrap();
        reg.add("b", &random_dataset(2, 300, 0.0), 0.15).unwrap();
        reg.add("c", &random_dataset(3, 300, 1.0), 0.15).unwrap();
        let mut params = MatrixParams {
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let all = reg.matrix(&params).unwrap();
        assert_eq!(all.n_pairs(), 3);
        assert_eq!(all.pruned(), 0, "threshold 0 scans every positive pair");

        params.threshold = all.bound(0, 1) + 1e-9;
        let screened = reg.matrix(&params).unwrap();
        assert!(screened.pruned() >= 1, "similar pair must be pruned");
        assert!(screened.scanned() >= 1, "distant pair must be scanned");
        // Screening never changes the values of surviving pairs.
        for i in 0..3 {
            for j in (i + 1)..3 {
                if screened.exact(i, j).is_some() {
                    assert_eq!(
                        screened.exact(i, j).unwrap().to_bits(),
                        all.exact(i, j).unwrap().to_bits()
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
