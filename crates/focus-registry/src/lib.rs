//! # focus-registry — snapshot collections and screened deviation matrices
//!
//! Section 4.1.1 of the paper frames δ* as the engine of an *interactive
//! exploratory loop*: an analyst keeps a whole collection of dataset
//! snapshots (daily sales extracts, say), embeds them in a metric space
//! using the model-only upper bound, and pays for an exact two-dataset
//! scan only where the bound says the pair is interesting (the "Time for
//! δ*" column of Figure 13). This crate packages that loop:
//!
//! * [`Registry`] — a directory of named snapshots: each one a persisted
//!   dataset plus its mined model, indexed by a line-oriented manifest.
//!   Artifacts default to diff-friendly plain text (`focus_data::io` +
//!   `focus_core::persist`); production registries can instead choose the
//!   checksummed binary columnar format of [`binfmt`] (loaded zero-copy
//!   via mmap where available) and a hash-sharded directory layout
//!   ([`RegistryLayout`]) that scales to 10⁴–10⁵ snapshots;
//! * [`DeviationMatrix`] — all `N·(N−1)/2` pairwise deviations of a
//!   collection, computed with **two-phase δ* screening**: phase one
//!   evaluates the scan-free upper bound for every pair, phase two runs
//!   the exact data-scan deviation only for pairs whose bound exceeds a
//!   caller threshold. Pairs below the threshold are certifiably
//!   uninteresting (`δ ≤ δ* ≤ threshold`), so pruning them is sound.
//!
//! Both phases fan out over `focus_exec::map_indices` and inherit the
//! workspace-wide determinism contract: results are **bit-identical for
//! any worker-thread count**.
//!
//! Everything is **multi-family**: snapshots are kind-tagged
//! ([`SnapshotKind`]), persistence routes through the [`SnapshotFamily`]
//! trait, and the matrix engine is generic over
//! [`focus_core::family::ModelFamily`] — lits, dt and cluster pairs all
//! screen on their family's model-only δ* bound (leaf-mass for dt,
//! centroid-mass/box-overlap for cluster); screening silently disables
//! itself wherever the dominance argument does not apply.

#![warn(missing_docs)]
// `deny`, not `forbid`: the one mmap module in `binfmt` carries a scoped
// `allow(unsafe_code)` with its safety argument; everything else stays
// unsafe-free.
#![deny(unsafe_code)]

pub mod binfmt;
mod family;
mod matrix;
mod registry;
mod shard;
#[cfg(test)]
mod testutil;

pub use binfmt::{mmap_active, BinError, MappedBytes};
pub use family::{SnapshotFamily, SnapshotKind};
pub use matrix::{
    deviation_matrix, deviation_matrix_par, DeviationMatrix, MatrixError, MatrixParams,
};
pub use registry::{Registry, SnapshotEntry};
pub use shard::{RegistryLayout, StorageFormat};
