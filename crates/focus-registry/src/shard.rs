//! Registry layout: flat vs hash-sharded directories, text vs binary
//! artifacts.
//!
//! A classic (pre-PR-8) registry is one flat directory — manifest plus
//! artifact files — which is fine for dozens of snapshots and wrong for
//! 10⁴–10⁵ of them: every `add` appends to one manifest and every file
//! lands in one directory whose lookup and fsync costs grow with the
//! whole population. A *sharded* registry splits the namespace by a hash
//! of the snapshot name into `shard-NNN/` subdirectories, each with its
//! own append-only manifest, so directory size and manifest length scale
//! with `N / shards`.
//!
//! The layout is fixed at creation time and recorded in a root index
//! file, `registry.layout`:
//!
//! ```text
//! #focus-registry-layout v1
//! shards <n>            0 = flat (no shard directories)
//! format <text|bin>
//! ```
//!
//! written with the same temp-file + fsync + rename discipline as every
//! other registry file. **No layout file means the classic flat/text
//! layout**, so every registry written by earlier releases opens
//! unchanged and byte-for-byte golden files stay golden.

use std::io::Write;
use std::path::Path;

/// Name of the root index file.
pub(crate) const LAYOUT_FILE: &str = "registry.layout";
const LAYOUT_HEADER: &str = "#focus-registry-layout v1";

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Which artifact format a registry persists snapshots in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageFormat {
    /// The plain-text golden/interchange formats (`focus_data::io`,
    /// `focus_core::persist`) — the default, and the only format earlier
    /// releases wrote.
    #[default]
    Text,
    /// The binary columnar format of [`crate::binfmt`], read zero-copy
    /// via [`crate::binfmt::MappedBytes`] where available.
    Binary,
}

impl StorageFormat {
    /// The layout-file/CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            StorageFormat::Text => "text",
            StorageFormat::Binary => "bin",
        }
    }

    /// Parses a layout-file/CLI spelling.
    pub fn parse(s: &str) -> Option<StorageFormat> {
        match s {
            "text" => Some(StorageFormat::Text),
            "bin" | "binary" => Some(StorageFormat::Binary),
            _ => None,
        }
    }
}

impl std::fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A registry's on-disk layout: how many hash shards (0 = flat) and
/// which artifact format. Chosen at creation time; immutable afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryLayout {
    /// Number of hash shards; 0 keeps everything in the root directory.
    pub shards: u32,
    /// Artifact format for datasets and models.
    pub format: StorageFormat,
}

impl RegistryLayout {
    /// The classic layout: flat directory, plain-text artifacts.
    pub fn flat_text() -> RegistryLayout {
        RegistryLayout::default()
    }

    /// True when this is the classic layout that needs no layout file.
    pub fn is_classic(&self) -> bool {
        *self == RegistryLayout::flat_text()
    }

    /// The shard a snapshot name lives in (`None` for flat layouts):
    /// FNV-1a 64 of the name modulo the shard count, so placement is a
    /// pure function of the name and stable across handles and releases.
    pub fn shard_of(&self, name: &str) -> Option<u32> {
        if self.shards == 0 {
            None
        } else {
            Some((crate::binfmt::fnv1a64(name.as_bytes()) % u64::from(self.shards)) as u32)
        }
    }

    /// Directory name of shard `i` (`shard-000`, `shard-001`, …).
    pub(crate) fn shard_dir(i: u32) -> String {
        format!("shard-{i:03}")
    }

    /// Reads `root`'s layout file; `Ok(None)` when absent (classic
    /// layout), an error only for a present-but-malformed file.
    pub(crate) fn read(root: &Path) -> std::io::Result<Option<RegistryLayout>> {
        let path = root.join(LAYOUT_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(LAYOUT_HEADER) {
            return Err(bad("missing registry layout header"));
        }
        let mut shards = None;
        let mut format = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match line.split_once(' ') {
                Some(("shards", v)) => {
                    shards = Some(
                        v.trim()
                            .parse()
                            .map_err(|e| bad(&format!("bad shard count: {e}")))?,
                    );
                }
                Some(("format", v)) => {
                    format = Some(
                        StorageFormat::parse(v.trim())
                            .ok_or_else(|| bad(&format!("unknown storage format {v:?}")))?,
                    );
                }
                _ => return Err(bad(&format!("malformed layout line {line:?}"))),
            }
        }
        Ok(Some(RegistryLayout {
            shards: shards.ok_or_else(|| bad("layout file missing shards line"))?,
            format: format.ok_or_else(|| bad("layout file missing format line"))?,
        }))
    }

    /// Durably writes the layout file through the registry's
    /// `persist_file` (temp + fsync + rename + directory fsync).
    pub(crate) fn write(&self, root: &Path) -> std::io::Result<()> {
        crate::registry::persist_file(&root.join(LAYOUT_FILE), |f| {
            writeln!(f, "{LAYOUT_HEADER}")?;
            writeln!(f, "shards {}", self.shards)?;
            writeln!(f, "format {}", self.format)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_spellings_round_trip() {
        for fmt in [StorageFormat::Text, StorageFormat::Binary] {
            assert_eq!(StorageFormat::parse(fmt.as_str()), Some(fmt));
            assert_eq!(format!("{fmt}"), fmt.as_str());
        }
        assert_eq!(StorageFormat::parse("binary"), Some(StorageFormat::Binary));
        assert_eq!(StorageFormat::parse("nope"), None);
    }

    #[test]
    fn shard_placement_is_stable_and_covers_all_shards() {
        let layout = RegistryLayout {
            shards: 8,
            format: StorageFormat::Binary,
        };
        let mut seen = [false; 8];
        for i in 0..200 {
            let name = format!("snap-{i}");
            let s = layout.shard_of(&name).unwrap();
            assert_eq!(layout.shard_of(&name), Some(s), "placement must be pure");
            assert!(s < 8);
            seen[s as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "200 names should touch all 8 shards"
        );
        assert_eq!(RegistryLayout::flat_text().shard_of("snap-1"), None);
        assert_eq!(RegistryLayout::shard_dir(3), "shard-003");
    }

    #[test]
    fn layout_file_round_trips_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("focus-layout-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let layout = RegistryLayout {
            shards: 16,
            format: StorageFormat::Binary,
        };
        layout.write(&dir).unwrap();
        assert_eq!(RegistryLayout::read(&dir).unwrap(), Some(layout));

        let missing = dir.join("nope");
        assert_eq!(RegistryLayout::read(&missing).unwrap(), None);

        for garbage in [
            "not a layout\n",
            "#focus-registry-layout v1\nshards x\nformat text\n",
            "#focus-registry-layout v1\nshards 4\nformat carrier-pigeon\n",
            "#focus-registry-layout v1\nshards 4\n",
            "#focus-registry-layout v1\nwat\n",
        ] {
            std::fs::write(dir.join(LAYOUT_FILE), garbage).unwrap();
            assert!(RegistryLayout::read(&dir).is_err(), "{garbage:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
