//! The [`SnapshotFamily`] trait: how each model family's snapshots live on
//! disk.
//!
//! [`focus_core::family::ModelFamily`] captures the *mathematics* a family
//! must provide (GCR, measure extension, the optional δ* bound); this
//! trait adds the *plumbing* a [`Registry`](crate::Registry) needs — which
//! plain-text formats persist the family's datasets and models, which file
//! extensions its artifacts use, and which summary statistics its manifest
//! line records. All three of the paper's families implement it, so one
//! generic registry handles lits-, dt- and cluster-snapshots alike.

use focus_core::data::{LabeledTable, Schema, Table, TransactionSet};
use focus_core::family::{ClusterFamily, DtFamily, LitsFamily, ModelFamily};
use focus_core::persist::{
    read_cluster_model, read_dt_model, read_lits_model, write_cluster_model, write_dt_model,
    write_lits_model,
};
use focus_data::io::{
    read_labeled_table, read_table, read_transactions, write_labeled_table, write_table,
    write_transactions,
};
use std::io::{Read, Write};
use std::sync::Arc;

/// The model family a snapshot belongs to, as recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotKind {
    /// Frequent-itemset models over transaction data.
    Lits,
    /// Decision-tree models over labelled tables.
    Dt,
    /// Cluster models over plain tables.
    Cluster,
}

impl SnapshotKind {
    /// The manifest/CLI spelling of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            SnapshotKind::Lits => "lits",
            SnapshotKind::Dt => "dt",
            SnapshotKind::Cluster => "cluster",
        }
    }

    /// Parses a manifest/CLI spelling.
    pub fn parse(s: &str) -> Option<SnapshotKind> {
        match s {
            "lits" => Some(SnapshotKind::Lits),
            "dt" => Some(SnapshotKind::Dt),
            "cluster" => Some(SnapshotKind::Cluster),
            _ => None,
        }
    }
}

impl std::fmt::Display for SnapshotKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A [`ModelFamily`] whose snapshots a [`Registry`](crate::Registry) can
/// persist and reload.
pub trait SnapshotFamily: ModelFamily {
    /// The manifest kind tag of this family's snapshots.
    const KIND: SnapshotKind;
    /// File extension of persisted datasets.
    const DATA_EXT: &'static str;
    /// File extension of persisted models.
    const MODEL_EXT: &'static str;

    /// Writes a dataset in the family's plain-text format.
    fn write_dataset(data: &Self::Dataset, w: impl Write) -> std::io::Result<()>;
    /// Reads a dataset written by [`SnapshotFamily::write_dataset`].
    fn read_dataset(r: impl Read) -> std::io::Result<Self::Dataset>;
    /// Writes a model; `data` supplies the schema where the model does not
    /// carry one itself (dt and cluster).
    fn write_model(model: &Self::Model, data: &Self::Dataset, w: impl Write)
        -> std::io::Result<()>;
    /// Reads a model written by [`SnapshotFamily::write_model`].
    fn read_model(r: impl Read) -> std::io::Result<Self::Model>;

    /// Encodes a dataset in the binary columnar format of
    /// [`crate::binfmt`].
    fn encode_dataset(data: &Self::Dataset) -> Vec<u8>;
    /// Decodes a dataset encoded by [`SnapshotFamily::encode_dataset`];
    /// corruption surfaces as a named [`crate::binfmt::BinError`] wrapped
    /// in `InvalidData`.
    fn decode_dataset(bytes: &[u8]) -> std::io::Result<Self::Dataset>;
    /// Encodes a model in the binary format; `data` supplies the schema
    /// where the model does not carry one (dt and cluster). Enforces the
    /// same persistability rules as [`SnapshotFamily::write_model`], so a
    /// model the text format rejects is rejected here too.
    fn encode_model(model: &Self::Model, data: &Self::Dataset) -> std::io::Result<Vec<u8>>;
    /// Decodes a model encoded by [`SnapshotFamily::encode_model`].
    fn decode_model(bytes: &[u8]) -> std::io::Result<Self::Model>;

    /// The minsup recorded in the manifest (`Some` for lits only).
    fn model_minsup(model: &Self::Model) -> Option<f64>;
    /// Number of structural regions recorded in the manifest (itemsets,
    /// leaves, clusters).
    fn model_regions(model: &Self::Model) -> u64;
    /// An empty stand-in dataset for members whose every pair was pruned —
    /// phase 2 never touches it, so the registry can skip the dataset IO.
    fn empty_dataset() -> Self::Dataset;
}

impl SnapshotFamily for LitsFamily {
    const KIND: SnapshotKind = SnapshotKind::Lits;
    const DATA_EXT: &'static str = "txns";
    const MODEL_EXT: &'static str = "lits";

    fn write_dataset(data: &TransactionSet, w: impl Write) -> std::io::Result<()> {
        write_transactions(data, w)
    }

    fn read_dataset(r: impl Read) -> std::io::Result<TransactionSet> {
        read_transactions(r)
    }

    fn write_model(
        model: &Self::Model,
        _data: &TransactionSet,
        w: impl Write,
    ) -> std::io::Result<()> {
        write_lits_model(model, w)
    }

    fn read_model(r: impl Read) -> std::io::Result<Self::Model> {
        read_lits_model(r)
    }

    fn encode_dataset(data: &TransactionSet) -> Vec<u8> {
        crate::binfmt::encode_transactions(data)
    }

    fn decode_dataset(bytes: &[u8]) -> std::io::Result<TransactionSet> {
        Ok(crate::binfmt::decode_transactions(bytes)?)
    }

    fn encode_model(model: &Self::Model, _data: &TransactionSet) -> std::io::Result<Vec<u8>> {
        Ok(crate::binfmt::encode_lits_model(model))
    }

    fn decode_model(bytes: &[u8]) -> std::io::Result<Self::Model> {
        Ok(crate::binfmt::decode_lits_model(bytes)?)
    }

    fn model_minsup(model: &Self::Model) -> Option<f64> {
        Some(model.minsup())
    }

    fn model_regions(model: &Self::Model) -> u64 {
        model.len() as u64
    }

    fn empty_dataset() -> TransactionSet {
        TransactionSet::new(0)
    }
}

impl SnapshotFamily for DtFamily {
    const KIND: SnapshotKind = SnapshotKind::Dt;
    const DATA_EXT: &'static str = "tbl";
    const MODEL_EXT: &'static str = "dt";

    fn write_dataset(data: &LabeledTable, w: impl Write) -> std::io::Result<()> {
        write_labeled_table(data, w)
    }

    fn read_dataset(r: impl Read) -> std::io::Result<LabeledTable> {
        read_labeled_table(r)
    }

    fn write_model(model: &Self::Model, data: &LabeledTable, w: impl Write) -> std::io::Result<()> {
        write_dt_model(model, data.table.schema(), w)
    }

    fn read_model(r: impl Read) -> std::io::Result<Self::Model> {
        read_dt_model(r).map(|(model, _schema)| model)
    }

    fn encode_dataset(data: &LabeledTable) -> Vec<u8> {
        crate::binfmt::encode_labeled_table(data)
    }

    fn decode_dataset(bytes: &[u8]) -> std::io::Result<LabeledTable> {
        Ok(crate::binfmt::decode_labeled_table(bytes)?)
    }

    fn encode_model(model: &Self::Model, data: &LabeledTable) -> std::io::Result<Vec<u8>> {
        Ok(crate::binfmt::encode_dt_model(model, data.table.schema()))
    }

    fn decode_model(bytes: &[u8]) -> std::io::Result<Self::Model> {
        let (model, _schema) = crate::binfmt::decode_dt_model(bytes)?;
        Ok(model)
    }

    fn model_minsup(_model: &Self::Model) -> Option<f64> {
        None
    }

    fn model_regions(model: &Self::Model) -> u64 {
        model.leaves().len() as u64
    }

    fn empty_dataset() -> LabeledTable {
        LabeledTable::new(Arc::new(Schema::new(Vec::new())), 1)
    }
}

impl SnapshotFamily for ClusterFamily {
    const KIND: SnapshotKind = SnapshotKind::Cluster;
    const DATA_EXT: &'static str = "rows";
    const MODEL_EXT: &'static str = "clu";

    fn write_dataset(data: &Table, w: impl Write) -> std::io::Result<()> {
        write_table(data, w)
    }

    fn read_dataset(r: impl Read) -> std::io::Result<Table> {
        read_table(r)
    }

    fn write_model(model: &Self::Model, data: &Table, w: impl Write) -> std::io::Result<()> {
        write_cluster_model(model, data.schema(), w)
    }

    fn read_model(r: impl Read) -> std::io::Result<Self::Model> {
        read_cluster_model(r).map(|(model, _schema)| model)
    }

    fn encode_dataset(data: &Table) -> Vec<u8> {
        crate::binfmt::encode_table(data)
    }

    fn decode_dataset(bytes: &[u8]) -> std::io::Result<Table> {
        Ok(crate::binfmt::decode_table(bytes)?)
    }

    fn encode_model(model: &Self::Model, data: &Table) -> std::io::Result<Vec<u8>> {
        crate::binfmt::encode_cluster_model(model, data.schema())
    }

    fn decode_model(bytes: &[u8]) -> std::io::Result<Self::Model> {
        let (model, _schema) = crate::binfmt::decode_cluster_model(bytes)?;
        Ok(model)
    }

    fn model_minsup(_model: &Self::Model) -> Option<f64> {
        None
    }

    fn model_regions(model: &Self::Model) -> u64 {
        model.clusters().len() as u64
    }

    fn empty_dataset() -> Table {
        Table::new(Arc::new(Schema::new(Vec::new())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_spellings_round_trip() {
        for kind in [SnapshotKind::Lits, SnapshotKind::Dt, SnapshotKind::Cluster] {
            assert_eq!(SnapshotKind::parse(kind.as_str()), Some(kind));
            assert_eq!(format!("{kind}"), kind.as_str());
        }
        assert_eq!(SnapshotKind::parse("nope"), None);
    }

    #[test]
    fn family_artifact_extensions_are_distinct() {
        let exts = [
            <LitsFamily as SnapshotFamily>::DATA_EXT,
            <LitsFamily as SnapshotFamily>::MODEL_EXT,
            <DtFamily as SnapshotFamily>::DATA_EXT,
            <DtFamily as SnapshotFamily>::MODEL_EXT,
            <ClusterFamily as SnapshotFamily>::DATA_EXT,
            <ClusterFamily as SnapshotFamily>::MODEL_EXT,
        ];
        let unique: std::collections::HashSet<&str> = exts.iter().copied().collect();
        assert_eq!(unique.len(), exts.len(), "extensions must not collide");
    }
}
