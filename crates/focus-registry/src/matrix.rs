//! The batch pairwise deviation engine with two-phase δ* screening,
//! generic over any [`ModelFamily`].
//!
//! Phase 1 evaluates the family's model-only upper bound
//! ([`ModelFamily::upper_bound`]) for every unordered pair — a pure
//! function of the two *models*, no dataset scans, effectively free (the
//! "Time for δ*" column of Figure 13). Phase 2 runs the exact data-scan
//! deviation ([`focus_core::deviation::deviate_par`]) only for pairs whose
//! bound exceeds the caller's threshold (or, in `--top K` mode, for the K
//! pairs with the largest bounds); by Theorem 4.2 (1) `δ(f_a, g) ≤ δ*`, so
//! a pair whose bound falls below the cut is *certified* uninteresting and
//! the scan is pruned without loss.
//!
//! Screening auto-disables exactly where the bound does not dominate
//! ([`ModelFamily::bound_dominates`]): for the lits family that means any
//! non-`f_a` difference function or a mixed-minsup pair; the dt and
//! cluster families define no model-only bound at all, so every one of
//! their pairs gets an exact scan and the matrix is complete.
//!
//! Both phases fan out over [`map_indices`] in pair-index order, so the
//! whole matrix inherits the workspace determinism contract: bit-identical
//! results for any worker-thread count.

use focus_core::data::TransactionSet;
use focus_core::deviation::deviate_par;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::embed::DistanceMatrix;
use focus_core::family::{LitsFamily, ModelFamily};
use focus_core::model::LitsModel;
use focus_exec::{map_indices, Parallelism};

/// A named, recoverable failure of the matrix engine: invalid screening
/// parameters or an impossible embedding request.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The screening threshold was NaN or negative. A NaN threshold makes
    /// every `bound > threshold` comparison false-ish in surprising ways
    /// and a negative one silently disables pruning — both are almost
    /// certainly caller bugs, so they are rejected by name instead.
    InvalidThreshold(f64),
    /// `embed(k)` was asked for at least as many dimensions as there are
    /// snapshots: classical MDS of `n` points spans at most `n − 1`
    /// dimensions, so the extra coordinates would be meaningless zeros.
    EmbedDims {
        /// Requested dimension count.
        k: usize,
        /// Number of snapshots in the collection.
        n: usize,
    },
    /// Incremental matrix maintenance was asked to use `--top K`
    /// screening: the top-K cut is a *global* ranking over all pairs, so
    /// adding one snapshot can evict previously-scanned pairs and the
    /// result would no longer match a fresh computation. Use a threshold.
    IncrementalNeedsThreshold,
    /// The base matrix handed to incremental maintenance does not match
    /// the registry's current collection or the requested parameters
    /// (wrong names, size, threshold, or difference/aggregate function).
    BaseMismatch(String),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::InvalidThreshold(t) => write!(
                f,
                "invalid screening threshold {t}: must be a non-negative number"
            ),
            MatrixError::EmbedDims { k, n } => write!(
                f,
                "cannot embed {n} snapshot(s) in {k} dimensions: k must satisfy 1 <= k < n"
            ),
            MatrixError::IncrementalNeedsThreshold => write!(
                f,
                "incremental matrix maintenance requires threshold screening, not --top"
            ),
            MatrixError::BaseMismatch(msg) => write!(f, "base matrix mismatch: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<MatrixError> for std::io::Error {
    fn from(e: MatrixError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// Parameters for [`deviation_matrix_par`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixParams {
    /// Difference function for the exact scans (the bound, where the
    /// family defines one, is always the `f_a` bound of Definition 4.1).
    pub diff: DiffFn,
    /// Aggregate `g ∈ {sum, max}`, used by both the bound and the scans.
    pub agg: AggFn,
    /// Screening threshold: pairs with `δ* ≤ threshold` skip the exact
    /// scan. `0.0` (the default) scans every pair with a positive bound.
    /// Must be non-negative and not NaN ([`MatrixParams::validate`]).
    ///
    /// Screening only applies to pairs whose bound *dominates* the chosen
    /// deviation ([`ModelFamily::bound_dominates`] — for lits: `f_a` and a
    /// shared minsup); every other pair is scanned regardless, since
    /// pruning there would silently discard pairs the bound does not
    /// certify. Families without a bound scan every pair.
    pub threshold: f64,
    /// `--top K` screening: when `Some(k)`, the `k` screenable pairs with
    /// the *largest* bounds get exact scans (ties broken by pair index)
    /// and the rest are pruned — `threshold` is not consulted for the cut
    /// (it is still validated). Pairs whose bound does not dominate are
    /// scanned as always.
    pub top: Option<usize>,
    /// Worker threads for both fan-out phases.
    pub par: Parallelism,
}

impl Default for MatrixParams {
    fn default() -> Self {
        Self {
            diff: DiffFn::Absolute,
            agg: AggFn::Sum,
            threshold: 0.0,
            top: None,
            par: Parallelism::Global,
        }
    }
}

impl MatrixParams {
    /// Rejects screening parameters that would otherwise fail silently: a
    /// NaN or negative threshold no longer *disables* pruning — it is an
    /// error by name.
    pub fn validate(&self) -> Result<(), MatrixError> {
        if self.threshold.is_nan() || self.threshold < 0.0 {
            return Err(MatrixError::InvalidThreshold(self.threshold));
        }
        Ok(())
    }
}

/// The screened pairwise deviation matrix of a snapshot collection.
///
/// (No `PartialEq`: pruned cells are stored as NaN, so derived equality
/// would be reflexively false — compare cells via the accessors instead.)
#[derive(Debug, Clone)]
pub struct DeviationMatrix {
    names: Vec<String>,
    n: usize,
    /// Row-major symmetric δ* bounds (zero diagonal); `None` when the
    /// family defines no model-only bound.
    bounds: Option<Vec<f64>>,
    /// Row-major exact deviations; NaN where the scan was pruned (see
    /// [`DeviationMatrix::exact`] for the `Option` view).
    exact: Vec<f64>,
    threshold: f64,
    diff: DiffFn,
    agg: AggFn,
    scanned: usize,
}

/// Whether two difference functions are provably the same measure.
/// `Custom` pairs answer `false` even for the same function pointer —
/// pointer identity is not a reliable equality witness, and the only
/// consumer (incremental maintenance) must refuse rather than guess.
pub(crate) fn same_diff(a: DiffFn, b: DiffFn) -> bool {
    match (a, b) {
        (DiffFn::Absolute, DiffFn::Absolute) | (DiffFn::Scaled, DiffFn::Scaled) => true,
        (DiffFn::ChiSquared { c: ca }, DiffFn::ChiSquared { c: cb }) => {
            ca.to_bits() == cb.to_bits()
        }
        _ => false,
    }
}

/// Unordered pairs `(i, j)`, `i < j`, in lexicographic order — the one
/// canonical pair enumeration both phases and all consumers share.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// Phase 1: the δ* bound for every unordered pair, in [`pairs`] order,
/// fanned out over `par`. Model-only — no dataset scans. `None` when the
/// family defines no bound (nothing to screen on).
pub(crate) fn pair_bounds<F: ModelFamily>(
    models: &[F::Model],
    agg: AggFn,
    par: Parallelism,
) -> Option<Vec<f64>> {
    if !F::HAS_BOUND {
        return None;
    }
    let pair_list = pairs(models.len());
    Some(map_indices(par, pair_list.len(), |p| {
        let (i, j) = pair_list[p];
        F::upper_bound(&models[i], &models[j], agg).expect("HAS_BOUND families always bound")
    }))
}

/// The pair indices (into [`pairs`] order) whose exact scan survives
/// screening under `params`. A pair can be pruned only when its bound is
/// certified to dominate ([`ModelFamily::bound_dominates`]); among those,
/// either the threshold cut or the top-K cut applies. With no bounds at
/// all, every pair survives.
fn surviving_pairs<F: ModelFamily>(
    models: &[F::Model],
    bounds: Option<&[f64]>,
    params: &MatrixParams,
) -> Vec<usize> {
    let pair_list = pairs(models.len());
    let Some(bounds) = bounds else {
        return (0..pair_list.len()).collect();
    };
    let dominated: Vec<bool> = pair_list
        .iter()
        .map(|&(i, j)| F::bound_dominates(params.diff, &models[i], &models[j]))
        .collect();
    match params.top {
        None => (0..bounds.len())
            .filter(|&p| !dominated[p] || bounds[p] > params.threshold)
            .collect(),
        Some(k) => {
            // Rank the screenable pairs by bound, largest first; ties break
            // to the lower pair index so the cut is deterministic.
            let mut ranked: Vec<usize> = (0..bounds.len()).filter(|&p| dominated[p]).collect();
            ranked.sort_by(|&a, &b| bounds[b].total_cmp(&bounds[a]).then(a.cmp(&b)));
            ranked.truncate(k);
            let keep: std::collections::HashSet<usize> = ranked.into_iter().collect();
            (0..bounds.len())
                .filter(|&p| !dominated[p] || keep.contains(&p))
                .collect()
        }
    }
}

/// Which collection members participate in at least one pair that
/// survives screening — i.e. whose *datasets* phase 2 will scan. Lets
/// callers that load datasets lazily (the registry) skip the IO for
/// members whose every pair was pruned. `bounds` must come from
/// [`pair_bounds`] over the same collection.
pub(crate) fn screened_members<F: ModelFamily>(
    models: &[F::Model],
    bounds: Option<&[f64]>,
    params: &MatrixParams,
) -> Vec<bool> {
    let pair_list = pairs(models.len());
    let mut needed = vec![false; models.len()];
    for p in surviving_pairs::<F>(models, bounds, params) {
        let (i, j) = pair_list[p];
        needed[i] = true;
        needed[j] = true;
    }
    needed
}

/// [`deviation_matrix_par`] for the lits family at the process-wide
/// default parallelism and default parameters except the given threshold.
pub fn deviation_matrix(
    models: &[LitsModel],
    datasets: &[TransactionSet],
    names: Vec<String>,
    threshold: f64,
) -> Result<DeviationMatrix, MatrixError> {
    deviation_matrix_par::<LitsFamily>(
        models,
        datasets,
        names,
        &MatrixParams {
            threshold,
            ..MatrixParams::default()
        },
    )
}

/// Computes the screened pairwise deviation matrix of a collection of any
/// model family.
///
/// `models[k]` and `datasets[k]` must describe the same snapshot `k`
/// (named `names[k]`). Datasets whose every pair is pruned are never
/// touched — callers may pass empty stand-ins for them (see
/// [`Registry::matrix`](crate::Registry::matrix)).
///
/// Bit-identical for every worker-thread count: pair enumeration, chunk
/// decomposition, and merge order are all pure functions of the input
/// sizes, and the per-pair scans are themselves thread-count-invariant.
pub fn deviation_matrix_par<F: ModelFamily>(
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
) -> Result<DeviationMatrix, MatrixError> {
    params.validate()?;
    // Phase 1: model-only bounds for every pair. One pair is one work
    // item; the bound needs no dataset scan, so this phase is cheap even
    // for large collections.
    let bounds = pair_bounds::<F>(models, params.agg, params.par);
    Ok(deviation_matrix_with_bounds::<F>(
        models, datasets, names, params, bounds,
    ))
}

/// [`deviation_matrix_par`] with the phase-1 bounds already in hand (in
/// [`pairs`] order) — lets the registry reuse the bounds it computed to
/// decide which datasets to load instead of paying the sweep twice.
/// `params` must already be validated.
pub(crate) fn deviation_matrix_with_bounds<F: ModelFamily>(
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
    pair_bounds: Option<Vec<f64>>,
) -> DeviationMatrix {
    let n = models.len();
    assert_eq!(n, datasets.len(), "one dataset per model");
    assert_eq!(n, names.len(), "one name per model");
    let pair_list = pairs(n);
    if let Some(b) = &pair_bounds {
        assert_eq!(pair_list.len(), b.len(), "one bound per pair");
    }

    // Screening: where the bound dominates the chosen deviation
    // (Theorem 4.2 (1) for lits), falling below the cut certifies the
    // pair as uninteresting; everywhere else the certificate is void and
    // the pair survives.
    let survivors = surviving_pairs::<F>(models, pair_bounds.as_deref(), params);

    // Phase 2: exact scans for the surviving pairs only. Each pair is one
    // work item; nested scan parallelism inside a worker runs inline per
    // the focus-exec nesting guard.
    let exact_vals = map_indices(params.par, survivors.len(), |s| {
        let (i, j) = pair_list[survivors[s]];
        deviate_par::<F>(
            &models[i],
            &datasets[i],
            &models[j],
            &datasets[j],
            params.diff,
            params.agg,
            params.par,
        )
        .value
    });

    let bounds = pair_bounds.map(|pb| {
        let mut bounds = vec![0.0; n * n];
        for (p, &(i, j)) in pair_list.iter().enumerate() {
            bounds[i * n + j] = pb[p];
            bounds[j * n + i] = pb[p];
        }
        bounds
    });
    let mut exact = vec![f64::NAN; n * n];
    for (s, &p) in survivors.iter().enumerate() {
        let (i, j) = pair_list[p];
        exact[i * n + j] = exact_vals[s];
        exact[j * n + i] = exact_vals[s];
    }
    DeviationMatrix {
        names,
        n,
        bounds,
        exact,
        threshold: params.threshold,
        diff: params.diff,
        agg: params.agg,
        scanned: survivors.len(),
    }
}

/// Which of the `N − 1` new pairs `(i, last)` survive screening when one
/// member is appended to a collection of `models`. The single place the
/// incremental survivor predicate lives: both [`extend_matrix`] (which
/// scans the survivors) and the registry's dataset-loading decision call
/// it, so the two can never drift apart.
pub(crate) fn new_pair_survivors<F: ModelFamily>(
    models: &[F::Model],
    new_bounds: Option<&[f64]>,
    params: &MatrixParams,
) -> Vec<usize> {
    let last = models.len() - 1;
    (0..last)
        .filter(|&i| {
            let dominated = F::bound_dominates(params.diff, &models[i], &models[last]);
            match new_bounds {
                Some(b) => !dominated || b[i] > params.threshold,
                None => true,
            }
        })
        .collect()
}

/// Extends a base matrix over `models[..n-1]` with one new member — the
/// incremental-maintenance core. Only the `n − 1` new pairs `(i, n−1)` are
/// bounded, screened and (where surviving) scanned; every old cell is
/// copied bit-for-bit, so the result is identical to recomputing the full
/// matrix from scratch. `params` must be validated, threshold-mode only.
pub(crate) fn extend_matrix<F: ModelFamily>(
    base: &DeviationMatrix,
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
    new_bounds: Option<Vec<f64>>,
) -> DeviationMatrix {
    let n = models.len();
    debug_assert_eq!(base.len() + 1, n);
    debug_assert_eq!(params.top, None);
    let last = n - 1;

    // Screen the new pairs exactly as a full run would.
    let survivors = new_pair_survivors::<F>(models, new_bounds.as_deref(), params);
    let exact_vals = map_indices(params.par, survivors.len(), |s| {
        let i = survivors[s];
        deviate_par::<F>(
            &models[i],
            &datasets[i],
            &models[last],
            &datasets[last],
            params.diff,
            params.agg,
            params.par,
        )
        .value
    });

    // Reassemble: old cells verbatim, new row/column from the fresh pairs.
    let old = base.len();
    let copy_block = |src: &[f64], fill: f64| {
        let mut dst = vec![fill; n * n];
        for i in 0..old {
            for j in 0..old {
                dst[i * n + j] = src[i * old + j];
            }
        }
        dst
    };
    let bounds = match (&base.bounds, &new_bounds) {
        (Some(ob), Some(nb)) => {
            let mut bounds = copy_block(ob, 0.0);
            for (i, &b) in nb.iter().enumerate() {
                bounds[i * n + last] = b;
                bounds[last * n + i] = b;
            }
            Some(bounds)
        }
        (None, None) => None,
        _ => unreachable!("bound presence is a family constant"),
    };
    let mut exact = copy_block(&base.exact, f64::NAN);
    for (s, &i) in survivors.iter().enumerate() {
        exact[i * n + last] = exact_vals[s];
        exact[last * n + i] = exact_vals[s];
    }
    DeviationMatrix {
        names,
        n,
        bounds,
        exact,
        threshold: params.threshold,
        diff: params.diff,
        agg: params.agg,
        scanned: base.scanned + survivors.len(),
    }
}

impl DeviationMatrix {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Snapshot names, in collection order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The screening threshold the matrix was computed at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The difference function the exact scans used.
    pub fn diff(&self) -> DiffFn {
        self.diff
    }

    /// The aggregate function the bounds and exact scans used.
    pub fn agg(&self) -> AggFn {
        self.agg
    }

    /// Number of unordered pairs, `n·(n−1)/2`.
    pub fn n_pairs(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// Number of pairs whose exact scan ran (bound above the cut).
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Number of pairs whose exact scan was pruned by the δ* screen.
    pub fn pruned(&self) -> usize {
        self.n_pairs() - self.scanned
    }

    /// True when the matrix carries model-only δ* bounds (the family
    /// defines one — lits today). Boundless matrices are always complete:
    /// every pair was scanned.
    pub fn has_bounds(&self) -> bool {
        self.bounds.is_some()
    }

    /// The δ* upper bound for a pair (`0` on the diagonal); NaN when the
    /// family defines no bound (see [`DeviationMatrix::has_bounds`]).
    pub fn bound(&self, i: usize, j: usize) -> f64 {
        match &self.bounds {
            Some(b) => b[i * self.n + j],
            None => f64::NAN,
        }
    }

    /// The exact deviation for a pair, if its scan survived screening.
    pub fn exact(&self, i: usize, j: usize) -> Option<f64> {
        let v = self.exact[i * self.n + j];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// The best available deviation estimate for a pair: the exact value
    /// where scanned, else the δ* bound (an upper bound on the truth).
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.exact(i, j).unwrap_or_else(|| self.bound(i, j))
    }

    /// The collection as a [`DistanceMatrix`]: the δ* bounds where the
    /// family has them — δ* is a metric (Theorem 4.2 (2–3)), the exact
    /// deviations in general are not — else the exact deviations, which a
    /// boundless matrix always has in full.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        match &self.bounds {
            Some(_) => DistanceMatrix::from_fn(self.n, |i, j| self.bound(i, j)),
            None => DistanceMatrix::from_fn(self.n, |i, j| self.value(i, j)),
        }
    }

    /// Classical MDS coordinates of the collection in `k` dimensions
    /// under the matrix's metric (Section 4.1.1's visual-comparison
    /// embedding). `n` points span at most `n − 1` dimensions, so
    /// `k >= n` (and `k == 0`) are rejected instead of producing junk
    /// zero coordinates.
    pub fn embed(&self, k: usize) -> Result<Vec<Vec<f64>>, MatrixError> {
        if k == 0 || k >= self.n {
            return Err(MatrixError::EmbedDims { k, n: self.n });
        }
        Ok(self.distance_matrix().embed(k))
    }

    /// Embedding stress of `coords` against the matrix's metric.
    pub fn stress(&self, coords: &[Vec<f64>]) -> f64 {
        self.distance_matrix().stress(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_core::data::{LabeledTable, Schema, Value};
    use focus_core::family::DtFamily;
    use focus_core::model::{induce_dt_measures, DtModel};
    use focus_core::region::BoxBuilder;
    use focus_mining::{Apriori, AprioriParams};
    use std::sync::Arc;

    fn collection(
        seeds_skews: &[(u64, f64)],
    ) -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.15)
                .max_len(10)
                .min_count_floor(2),
        );
        let datasets: Vec<TransactionSet> = seeds_skews
            .iter()
            .map(|&(s, k)| random_dataset(s, 300, k))
            .collect();
        let models = datasets.iter().map(|d| miner.mine(d)).collect();
        let names = (0..datasets.len()).map(|i| format!("s{i}")).collect();
        (models, datasets, names)
    }

    #[test]
    fn screening_is_sound_and_complete() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.1), (3, 0.9), (4, 1.0)]);
        let full = deviation_matrix(&models, &datasets, names.clone(), 0.0).unwrap();
        assert_eq!(full.scanned(), 6);
        assert_eq!(full.pruned(), 0);
        assert!(full.has_bounds());

        // Pick a threshold strictly inside the observed bound range so the
        // screen genuinely splits the pairs.
        let mut bs: Vec<f64> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .map(|(i, j)| full.bound(i, j))
            .collect();
        bs.sort_by(f64::total_cmp);
        let threshold = (bs[2] + bs[3]) / 2.0;
        let screened = deviation_matrix(&models, &datasets, names, threshold).unwrap();
        assert!(screened.pruned() > 0 && screened.scanned() > 0);
        for i in 0..4 {
            for j in (i + 1)..4 {
                // Bounds are unaffected by screening.
                assert_eq!(screened.bound(i, j).to_bits(), full.bound(i, j).to_bits());
                match screened.exact(i, j) {
                    // Scanned pairs: identical to the unscreened run, and
                    // dominated by the bound (Theorem 4.2 (1)).
                    Some(e) => {
                        assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                        assert!(e <= screened.bound(i, j) + 1e-12);
                        assert!(screened.bound(i, j) > threshold);
                    }
                    // Pruned pairs: certified below threshold.
                    None => assert!(screened.bound(i, j) <= threshold),
                }
            }
        }
    }

    #[test]
    fn infinite_threshold_prunes_everything() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.5), (3, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        assert_eq!(m.scanned(), 0);
        assert_eq!(m.pruned(), 3);
        // `value` falls back to the bound for pruned pairs.
        assert_eq!(m.value(0, 1).to_bits(), m.bound(0, 1).to_bits());
    }

    #[test]
    fn nan_and_negative_thresholds_are_named_errors() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 1.0)]);
        for bad in [f64::NAN, -1.0, f64::NEG_INFINITY] {
            let err = deviation_matrix(&models, &datasets, names.clone(), bad).unwrap_err();
            // (No `assert_eq!` against the NaN case: the payload would
            // compare NaN ≠ NaN.)
            assert!(
                matches!(err, MatrixError::InvalidThreshold(t) if t.to_bits() == bad.to_bits()),
                "{err:?}"
            );
            assert!(err.to_string().contains("threshold"), "{err}");
        }
    }

    #[test]
    fn top_k_scans_the_k_largest_bounds() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.1), (3, 0.9), (4, 1.0)]);
        let full = deviation_matrix(&models, &datasets, names.clone(), 0.0).unwrap();
        let topped = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                top: Some(2),
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(topped.scanned(), 2);
        assert_eq!(topped.pruned(), 4);
        // The scanned pairs are exactly the two largest bounds, and their
        // exact values match the unscreened run bit-for-bit.
        let full_ref = &full;
        let mut ranked: Vec<(f64, usize, usize)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (full_ref.bound(i, j), i, j)))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (rank, &(_, i, j)) in ranked.iter().enumerate() {
            match topped.exact(i, j) {
                Some(e) => {
                    assert!(rank < 2, "pair ({i},{j}) scanned but not in top 2");
                    assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                }
                None => assert!(rank >= 2, "pair ({i},{j}) in top 2 but pruned"),
            }
        }
    }

    #[test]
    fn top_k_never_prunes_undominated_pairs() {
        // A mixed-minsup pair is not certified by the bound, so even
        // `top = Some(0)` must scan it.
        let datasets = vec![random_dataset(1, 300, 0.0), random_dataset(2, 300, 0.0)];
        let mine = |d: &TransactionSet, ms: f64| {
            Apriori::new(
                AprioriParams::with_minsup(ms)
                    .max_len(10)
                    .min_count_floor(2),
            )
            .mine(d)
        };
        let models = vec![mine(&datasets[0], 0.6), mine(&datasets[1], 0.01)];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            vec!["hi".into(), "lo".into()],
            &MatrixParams {
                top: Some(0),
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.scanned(), 1);
        assert!(m.exact(0, 1).is_some());
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let (models, datasets, names) = collection(&[(1, 0.0), (5, 0.4), (9, 0.8)]);
        let m = deviation_matrix(&models, &datasets, names, 0.0).unwrap();
        for i in 0..3 {
            assert_eq!(m.bound(i, i), 0.0);
            assert_eq!(m.exact(i, i), None);
            for j in 0..3 {
                assert_eq!(m.bound(i, j).to_bits(), m.bound(j, i).to_bits());
                assert_eq!(m.value(i, j).to_bits(), m.value(j, i).to_bits());
            }
        }
    }

    #[test]
    fn embedding_places_similar_snapshots_closer() {
        // Two tight groups; the δ* embedding must separate them.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0), (4, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        let coords = m.embed(2).unwrap();
        let dist = |a: usize, b: usize| {
            coords[a]
                .iter()
                .zip(&coords[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(0, 1) < dist(0, 2), "{} vs {}", dist(0, 1), dist(0, 2));
        assert!(dist(2, 3) < dist(2, 0), "{} vs {}", dist(2, 3), dist(2, 0));
    }

    #[test]
    fn embed_rejects_too_many_dimensions() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.5), (3, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        assert_eq!(
            m.embed(3).unwrap_err(),
            MatrixError::EmbedDims { k: 3, n: 3 }
        );
        assert_eq!(
            m.embed(0).unwrap_err(),
            MatrixError::EmbedDims { k: 0, n: 3 }
        );
        assert_eq!(m.embed(2).unwrap().len(), 3);
    }

    #[test]
    fn empty_and_singleton_collections() {
        let m = deviation_matrix(&[], &[], Vec::new(), 0.0).unwrap();
        assert_eq!(m.n_pairs(), 0);
        assert!(m.is_empty());
        let (models, datasets, names) = collection(&[(1, 0.0)]);
        let m = deviation_matrix(&models, &datasets, names, 0.0).unwrap();
        assert_eq!((m.n_pairs(), m.scanned(), m.pruned()), (0, 0, 0));
        // A single point spans zero dimensions: embedding is an error, not
        // a junk coordinate row.
        assert!(matches!(m.embed(2), Err(MatrixError::EmbedDims { .. })));
    }

    #[test]
    fn screened_members_marks_only_surviving_pairs() {
        let (models, _, _) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let bounds = pair_bounds::<LitsFamily>(&models, AggFn::Sum, Parallelism::Sequential);
        assert!(bounds.is_some());
        let all =
            screened_members::<LitsFamily>(&models, bounds.as_deref(), &MatrixParams::default());
        assert_eq!(all, vec![true, true, true]);
        let none = screened_members::<LitsFamily>(
            &models,
            bounds.as_deref(),
            &MatrixParams {
                threshold: f64::INFINITY,
                ..MatrixParams::default()
            },
        );
        assert_eq!(none, vec![false, false, false]);
    }

    #[test]
    fn screening_disabled_for_mixed_minsups() {
        // Theorem 4.2's domination argument needs a shared minsup: with
        // ms1 = 0.6 vs ms2 = 0.01, an itemset known only in model 2 may
        // have a large (but sub-0.6) support in dataset 1, so the bound's
        // per-itemset contribution understates the truth. Such a pair
        // must never be pruned, whatever the threshold.
        let datasets = vec![random_dataset(1, 300, 0.0), random_dataset(2, 300, 0.0)];
        let mine = |d: &TransactionSet, ms: f64| {
            Apriori::new(
                AprioriParams::with_minsup(ms)
                    .max_len(10)
                    .min_count_floor(2),
            )
            .mine(d)
        };
        let models = vec![mine(&datasets[0], 0.6), mine(&datasets[1], 0.01)];
        let names = vec!["hi-ms".to_string(), "lo-ms".to_string()];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 0, "mixed-minsup pair must not be pruned");
        assert!(m.exact(0, 1).is_some());
        // Same-minsup control: the screen works again.
        let models = vec![mine(&datasets[0], 0.2), mine(&datasets[1], 0.2)];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            vec!["a".to_string(), "b".to_string()],
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 1);
    }

    #[test]
    fn screening_disabled_for_non_absolute_diffs() {
        // δ* bounds only δ(f_a, g) (Theorem 4.2): under f_s the "bound"
        // does not dominate, so even an infinite threshold must not prune
        // — every pair gets its exact scan.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                diff: DiffFn::Scaled,
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 0, "f_s screening would be unsound");
        assert_eq!(m.scanned(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(m.exact(i, j).is_some());
            }
        }
    }

    fn dt_collection() -> (Vec<DtModel>, Vec<LabeledTable>, Vec<String>) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut models = Vec::new();
        let mut datasets = Vec::new();
        let mut names = Vec::new();
        for (i, boundary) in [30.0, 45.0, 70.0].iter().enumerate() {
            let mut d = LabeledTable::new(Arc::clone(&schema), 2);
            for r in 0..120 {
                let x = r as f64;
                d.push_row(&[Value::Num(x)], u32::from(x < *boundary));
            }
            let model = induce_dt_measures(
                vec![
                    BoxBuilder::new(&schema).lt("x", *boundary).build(),
                    BoxBuilder::new(&schema).ge("x", *boundary).build(),
                ],
                &d,
            );
            models.push(model);
            datasets.push(d);
            names.push(format!("t{i}"));
        }
        (models, datasets, names)
    }

    #[test]
    fn dt_family_matrix_is_boundless_and_complete() {
        let (models, datasets, names) = dt_collection();
        // The dt family has no model-only bound, so screening cannot
        // engage: even an infinite threshold scans every pair.
        let m = deviation_matrix_par::<DtFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert!(!m.has_bounds());
        assert!(m.bound(0, 1).is_nan());
        assert_eq!(m.scanned(), 3);
        assert_eq!(m.pruned(), 0);
        // Deviations grow with boundary distance, and the embedding (over
        // the exact values, since there are no bounds) reflects that.
        let near = m.exact(0, 1).unwrap();
        let far = m.exact(0, 2).unwrap();
        assert!(near < far, "{near} vs {far}");
        let coords = m.embed(2).unwrap();
        assert_eq!(coords.len(), 3);
    }
}
