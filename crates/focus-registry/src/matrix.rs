//! The batch pairwise deviation engine with two-phase δ* screening,
//! generic over any [`ModelFamily`].
//!
//! Phase 1 evaluates the family's model-only upper bound
//! ([`ModelFamily::upper_bound`]) for every unordered pair — a pure
//! function of the two *models*, no dataset scans, effectively free (the
//! "Time for δ*" column of Figure 13). Phase 2 runs the exact data-scan
//! deviation ([`focus_core::deviation::deviate_sources_par`], over one
//! shared access handle per snapshot) only for pairs whose
//! bound exceeds the caller's threshold (or, in `--top K` mode, for the K
//! pairs with the largest bounds); by Theorem 4.2 (1) `δ(f_a, g) ≤ δ*`, so
//! a pair whose bound falls below the cut is *certified* uninteresting and
//! the scan is pruned without loss.
//!
//! Screening auto-disables exactly where the bound does not dominate
//! ([`ModelFamily::bound_dominates`]): for the lits family that means any
//! non-`f_a` difference function or a mixed-minsup pair; for dt any
//! non-`f_a` difference or a class-count mismatch; for cluster any
//! non-`f_a` difference. Undominated pairs always get an exact scan.
//!
//! Where the bound is additionally a pseudo-metric
//! ([`ModelFamily::BOUND_IS_METRIC`] — lits and dt, *not* cluster),
//! incremental extension can go one step further: triangle-inequality
//! pruning ([`MatrixParams::triangle`]) decides many of the new pairs from
//! already-stored bounds via `|δ*(i,j) − δ*(j,new)| ≤ δ*(i,new) ≤
//! δ*(i,j) + δ*(j,new)` without evaluating δ* at all.
//!
//! Both phases fan out over [`map_indices`] in pair-index order, so the
//! whole matrix inherits the workspace determinism contract: bit-identical
//! results for any worker-thread count.

use focus_core::data::TransactionSet;
use focus_core::deviation::deviate_sources_par;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::embed::DistanceMatrix;
use focus_core::family::{LitsFamily, ModelFamily};
use focus_core::model::LitsModel;
use focus_exec::{map_indices, Parallelism};

/// A named, recoverable failure of the matrix engine: invalid screening
/// parameters or an impossible embedding request.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// The screening threshold was NaN or negative. A NaN threshold makes
    /// every `bound > threshold` comparison false-ish in surprising ways
    /// and a negative one silently disables pruning — both are almost
    /// certainly caller bugs, so they are rejected by name instead.
    InvalidThreshold(f64),
    /// `embed(k)` was asked for at least as many dimensions as there are
    /// snapshots: classical MDS of `n` points spans at most `n − 1`
    /// dimensions, so the extra coordinates would be meaningless zeros.
    EmbedDims {
        /// Requested dimension count.
        k: usize,
        /// Number of snapshots in the collection.
        n: usize,
    },
    /// Incremental matrix maintenance was asked to use `--top K`
    /// screening: the top-K cut is a *global* ranking over all pairs, so
    /// adding one snapshot can evict previously-scanned pairs and the
    /// result would no longer match a fresh computation. Use a threshold.
    IncrementalNeedsThreshold,
    /// The base matrix handed to incremental maintenance does not match
    /// the registry's current collection or the requested parameters
    /// (wrong names, size, threshold, or difference/aggregate function).
    BaseMismatch(String),
    /// A distance was required for a pair whose cell is unavailable:
    /// embedding needs a value for *every* pair, but this one's exact scan
    /// was pruned (non-metric or boundless matrix) or its δ* bound was
    /// skipped by triangle pruning. Silently substituting NaN would feed
    /// garbage into MDS, so the missing cell is reported by name instead —
    /// recompute at threshold `0.0` (triangle off) to embed.
    MissingCell {
        /// Row of the missing cell.
        i: usize,
        /// Column of the missing cell.
        j: usize,
    },
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::InvalidThreshold(t) => write!(
                f,
                "invalid screening threshold {t}: must be a non-negative number"
            ),
            MatrixError::EmbedDims { k, n } => write!(
                f,
                "cannot embed {n} snapshot(s) in {k} dimensions: k must satisfy 1 <= k < n"
            ),
            MatrixError::IncrementalNeedsThreshold => write!(
                f,
                "incremental matrix maintenance requires threshold screening, not --top"
            ),
            MatrixError::BaseMismatch(msg) => write!(f, "base matrix mismatch: {msg}"),
            MatrixError::MissingCell { i, j } => write!(
                f,
                "no distance available for pair ({i}, {j}): the cell was pruned or \
                 skipped by screening; recompute with threshold 0.0 to embed"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<MatrixError> for std::io::Error {
    fn from(e: MatrixError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
    }
}

/// Parameters for [`deviation_matrix_par`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixParams {
    /// Difference function for the exact scans (the bound, where the
    /// family defines one, is always the `f_a` bound of Definition 4.1).
    pub diff: DiffFn,
    /// Aggregate `g ∈ {sum, max}`, used by both the bound and the scans.
    pub agg: AggFn,
    /// Screening threshold: pairs with `δ* ≤ threshold` skip the exact
    /// scan. `0.0` (the default) scans every pair with a positive bound.
    /// Must be non-negative and not NaN ([`MatrixParams::validate`]).
    ///
    /// Screening only applies to pairs whose bound *dominates* the chosen
    /// deviation ([`ModelFamily::bound_dominates`] — for lits: `f_a` and a
    /// shared minsup); every other pair is scanned regardless, since
    /// pruning there would silently discard pairs the bound does not
    /// certify. Families without a bound scan every pair.
    pub threshold: f64,
    /// `--top K` screening: when `Some(k)`, the `k` screenable pairs with
    /// the *largest* bounds get exact scans (ties broken by pair index)
    /// and the rest are pruned — `threshold` is not consulted for the cut
    /// (it is still validated). Pairs whose bound does not dominate are
    /// scanned as always.
    pub top: Option<usize>,
    /// Triangle-inequality pruning for *incremental extension* (off by
    /// default). Where δ* is a pseudo-metric
    /// ([`ModelFamily::BOUND_IS_METRIC`]), the stored bounds `δ*(i, j)`
    /// and the already-evaluated `δ*(j, new)` sandwich a new pair's bound:
    /// `max_j |δ*(i,j) − δ*(j,new)| ≤ δ*(i,new) ≤ min_j (δ*(i,j) +
    /// δ*(j,new))`. When the upper envelope falls at or below the
    /// threshold the pair is pruned, and when the lower envelope exceeds
    /// it the pair is scanned — either way *without evaluating δ*(i,new)*,
    /// whose grid cell stays NaN. Each decision matches what evaluating
    /// the bound would have decided (the envelopes bracket it), so the
    /// survivor set — and every surviving exact cell, bit-for-bit — is the
    /// same as plain screening, up to floating-point rounding of the
    /// envelope sums for bounds within ~1 ulp of the threshold. Ignored
    /// for full-matrix computation (each bound is evaluated once and used
    /// once there, so skipping cannot win), for non-metric or boundless
    /// families, and in `--top` mode.
    pub triangle: bool,
    /// Worker threads for both fan-out phases.
    pub par: Parallelism,
}

impl Default for MatrixParams {
    fn default() -> Self {
        Self {
            diff: DiffFn::Absolute,
            agg: AggFn::Sum,
            threshold: 0.0,
            top: None,
            triangle: false,
            par: Parallelism::Global,
        }
    }
}

impl MatrixParams {
    /// Rejects screening parameters that would otherwise fail silently: a
    /// NaN or negative threshold no longer *disables* pruning — it is an
    /// error by name.
    pub fn validate(&self) -> Result<(), MatrixError> {
        if self.threshold.is_nan() || self.threshold < 0.0 {
            return Err(MatrixError::InvalidThreshold(self.threshold));
        }
        Ok(())
    }
}

/// The screened pairwise deviation matrix of a snapshot collection.
///
/// (No `PartialEq`: pruned cells are stored as NaN, so derived equality
/// would be reflexively false — compare cells via the accessors instead.)
#[derive(Debug, Clone)]
pub struct DeviationMatrix {
    names: Vec<String>,
    n: usize,
    /// Row-major symmetric δ* bounds (zero diagonal); `None` when the
    /// family defines no model-only bound. NaN marks a cell whose bound
    /// evaluation was skipped by triangle pruning.
    bounds: Option<Vec<f64>>,
    /// Row-major exact deviations; NaN where the scan was pruned (see
    /// [`DeviationMatrix::exact`] for the `Option` view).
    exact: Vec<f64>,
    threshold: f64,
    diff: DiffFn,
    agg: AggFn,
    scanned: usize,
    /// Whether the family's δ* is a pseudo-metric — gates embedding over
    /// the bound grid and triangle pruning.
    metric: bool,
    /// Bound evaluations skipped by triangle pruning across the matrix's
    /// incremental history.
    bound_skips: usize,
}

/// Whether two difference functions are provably the same measure.
/// `Custom` pairs answer `false` even for the same function pointer —
/// pointer identity is not a reliable equality witness, and the only
/// consumer (incremental maintenance) must refuse rather than guess.
pub(crate) fn same_diff(a: DiffFn, b: DiffFn) -> bool {
    match (a, b) {
        (DiffFn::Absolute, DiffFn::Absolute) | (DiffFn::Scaled, DiffFn::Scaled) => true,
        (DiffFn::ChiSquared { c: ca }, DiffFn::ChiSquared { c: cb }) => {
            ca.to_bits() == cb.to_bits()
        }
        _ => false,
    }
}

/// Unordered pairs `(i, j)`, `i < j`, in lexicographic order — the one
/// canonical pair enumeration both phases and all consumers share.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// Phase 1: the δ* bound for every unordered pair, in [`pairs`] order,
/// fanned out over `par`. Model-only — no dataset scans. `None` when the
/// family defines no bound (nothing to screen on).
pub(crate) fn pair_bounds<F: ModelFamily>(
    models: &[F::Model],
    agg: AggFn,
    par: Parallelism,
) -> Option<Vec<f64>> {
    if !F::HAS_BOUND {
        return None;
    }
    let pair_list = pairs(models.len());
    Some(map_indices(par, pair_list.len(), |p| {
        let (i, j) = pair_list[p];
        F::upper_bound(&models[i], &models[j], agg).expect("HAS_BOUND families always bound")
    }))
}

/// The pair indices (into [`pairs`] order) whose exact scan survives
/// screening under `params`. A pair can be pruned only when its bound is
/// certified to dominate ([`ModelFamily::bound_dominates`]); among those,
/// either the threshold cut or the top-K cut applies. With no bounds at
/// all, every pair survives.
fn surviving_pairs<F: ModelFamily>(
    models: &[F::Model],
    bounds: Option<&[f64]>,
    params: &MatrixParams,
) -> Vec<usize> {
    let pair_list = pairs(models.len());
    let Some(bounds) = bounds else {
        return (0..pair_list.len()).collect();
    };
    let dominated: Vec<bool> = pair_list
        .iter()
        .map(|&(i, j)| F::bound_dominates(params.diff, &models[i], &models[j]))
        .collect();
    match params.top {
        None => (0..bounds.len())
            .filter(|&p| !dominated[p] || bounds[p] > params.threshold)
            .collect(),
        Some(k) => {
            // Rank the screenable pairs by bound, largest first; ties break
            // to the lower pair index so the cut is deterministic.
            let mut ranked: Vec<usize> = (0..bounds.len()).filter(|&p| dominated[p]).collect();
            ranked.sort_by(|&a, &b| bounds[b].total_cmp(&bounds[a]).then(a.cmp(&b)));
            ranked.truncate(k);
            let keep: std::collections::HashSet<usize> = ranked.into_iter().collect();
            (0..bounds.len())
                .filter(|&p| !dominated[p] || keep.contains(&p))
                .collect()
        }
    }
}

/// Which collection members participate in at least one pair that
/// survives screening — i.e. whose *datasets* phase 2 will scan. Lets
/// callers that load datasets lazily (the registry) skip the IO for
/// members whose every pair was pruned. `bounds` must come from
/// [`pair_bounds`] over the same collection.
pub(crate) fn screened_members<F: ModelFamily>(
    models: &[F::Model],
    bounds: Option<&[f64]>,
    params: &MatrixParams,
) -> Vec<bool> {
    let pair_list = pairs(models.len());
    let mut needed = vec![false; models.len()];
    for p in surviving_pairs::<F>(models, bounds, params) {
        let (i, j) = pair_list[p];
        needed[i] = true;
        needed[j] = true;
    }
    needed
}

/// [`deviation_matrix_par`] for the lits family at the process-wide
/// default parallelism and default parameters except the given threshold.
pub fn deviation_matrix(
    models: &[LitsModel],
    datasets: &[TransactionSet],
    names: Vec<String>,
    threshold: f64,
) -> Result<DeviationMatrix, MatrixError> {
    deviation_matrix_par::<LitsFamily>(
        models,
        datasets,
        names,
        &MatrixParams {
            threshold,
            ..MatrixParams::default()
        },
    )
}

/// Computes the screened pairwise deviation matrix of a collection of any
/// model family.
///
/// `models[k]` and `datasets[k]` must describe the same snapshot `k`
/// (named `names[k]`). Datasets whose every pair is pruned are never
/// touched — callers may pass empty stand-ins for them (see
/// [`Registry::matrix`](crate::Registry::matrix)).
///
/// Bit-identical for every worker-thread count: pair enumeration, chunk
/// decomposition, and merge order are all pure functions of the input
/// sizes, and the per-pair scans are themselves thread-count-invariant.
pub fn deviation_matrix_par<F: ModelFamily>(
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
) -> Result<DeviationMatrix, MatrixError> {
    params.validate()?;
    // Phase 1: model-only bounds for every pair. One pair is one work
    // item; the bound needs no dataset scan, so this phase is cheap even
    // for large collections.
    let bounds = pair_bounds::<F>(models, params.agg, params.par);
    Ok(deviation_matrix_with_bounds::<F>(
        models, datasets, names, params, bounds,
    ))
}

/// [`deviation_matrix_par`] with the phase-1 bounds already in hand (in
/// [`pairs`] order) — lets the registry reuse the bounds it computed to
/// decide which datasets to load instead of paying the sweep twice.
/// `params` must already be validated.
pub(crate) fn deviation_matrix_with_bounds<F: ModelFamily>(
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
    pair_bounds: Option<Vec<f64>>,
) -> DeviationMatrix {
    let n = models.len();
    assert_eq!(n, datasets.len(), "one dataset per model");
    assert_eq!(n, names.len(), "one name per model");
    let pair_list = pairs(n);
    if let Some(b) = &pair_bounds {
        assert_eq!(pair_list.len(), b.len(), "one bound per pair");
    }

    // Screening: where the bound dominates the chosen deviation
    // (Theorem 4.2 (1) for lits), falling below the cut certifies the
    // pair as uninteresting; everywhere else the certificate is void and
    // the pair survives.
    let survivors = surviving_pairs::<F>(models, pair_bounds.as_deref(), params);

    // Phase 2: exact scans for the surviving pairs only. Each pair is one
    // work item; nested scan parallelism inside a worker runs inline per
    // the focus-exec nesting guard. One access handle per snapshot is
    // shared across every pair that scans it, so per-snapshot structures
    // (the lits vertical index) are built at most once per run instead of
    // once per pair; handles for snapshots whose every pair was pruned
    // stay untouched (construction is free — no scan, no index build).
    let sources: Vec<F::Source<'_>> = datasets.iter().map(|d| F::source(d)).collect();
    let sources = &sources;
    let exact_vals = map_indices(params.par, survivors.len(), |s| {
        let (i, j) = pair_list[survivors[s]];
        deviate_sources_par::<F>(
            &models[i],
            &sources[i],
            &models[j],
            &sources[j],
            params.diff,
            params.agg,
            params.par,
        )
        .value
    });

    let bounds = pair_bounds.map(|pb| {
        let mut bounds = vec![0.0; n * n];
        for (p, &(i, j)) in pair_list.iter().enumerate() {
            bounds[i * n + j] = pb[p];
            bounds[j * n + i] = pb[p];
        }
        bounds
    });
    let mut exact = vec![f64::NAN; n * n];
    for (s, &p) in survivors.iter().enumerate() {
        let (i, j) = pair_list[p];
        exact[i * n + j] = exact_vals[s];
        exact[j * n + i] = exact_vals[s];
    }
    DeviationMatrix {
        names,
        n,
        bounds,
        exact,
        threshold: params.threshold,
        diff: params.diff,
        agg: params.agg,
        scanned: survivors.len(),
        metric: F::HAS_BOUND && F::BOUND_IS_METRIC,
        bound_skips: 0,
    }
}

/// The screening plan for the `N − 1` new pairs `(i, last)` when one
/// member is appended to a collection: which bounds were evaluated (NaN =
/// skipped by triangle pruning), which pairs need exact scans, and how
/// many bound evaluations triangle pruning saved.
pub(crate) struct NewPairPlan {
    /// `δ*(i, last)` per old member, in member order; NaN where triangle
    /// pruning decided the pair without evaluating it. `None` for
    /// boundless families.
    pub bounds: Option<Vec<f64>>,
    /// Old-member indices whose pair with the new member needs an exact
    /// scan.
    pub survivors: Vec<usize>,
    /// Bound evaluations skipped by triangle pruning.
    pub skipped: usize,
}

/// Screens the `N − 1` new pairs of an incremental extension. The single
/// place the incremental survivor predicate lives: both [`extend_matrix`]
/// (which scans the survivors) and the registry's dataset-loading decision
/// consume the plan, so the two can never drift apart.
///
/// With [`MatrixParams::triangle`] set — and a metric bound and a base
/// matrix that carries bounds — the new pairs are decided *sequentially in
/// member order*: every pair whose bound was already evaluated serves as
/// an anchor `j`, and a later pair `(i, last)` is pruned when
/// `min_j (δ*(i,j) + δ*(j,last)) ≤ threshold` or scanned when
/// `max_j |δ*(i,j) − δ*(j,last)| > threshold`, skipping its bound
/// evaluation entirely. Undominated pairs always evaluate their bound
/// (it anchors later decisions) and always scan. The sequential loop is a
/// pure function of the inputs — thread count cannot change the outcome.
pub(crate) fn plan_new_pairs<F: ModelFamily>(
    base: &DeviationMatrix,
    models: &[F::Model],
    params: &MatrixParams,
) -> NewPairPlan {
    let last = models.len() - 1;
    debug_assert_eq!(base.len(), last);
    debug_assert_eq!(params.top, None);
    if !F::HAS_BOUND {
        return NewPairPlan {
            bounds: None,
            survivors: (0..last).collect(),
            skipped: 0,
        };
    }
    let dominated: Vec<bool> = (0..last)
        .map(|i| F::bound_dominates(params.diff, &models[i], &models[last]))
        .collect();
    if params.triangle && F::BOUND_IS_METRIC && base.has_bounds() {
        let mut bounds = vec![f64::NAN; last];
        let mut survivors = Vec::new();
        let mut anchors: Vec<usize> = Vec::new();
        let mut skipped = 0usize;
        for i in 0..last {
            if dominated[i] {
                // Envelope the unseen δ*(i, last) from the anchors.
                let mut upper = f64::INFINITY;
                let mut lower = 0.0f64;
                for &j in &anchors {
                    let base_ij = base.bound(i, j);
                    if base_ij.is_nan() {
                        continue; // triangle hole in the base grid
                    }
                    upper = upper.min(base_ij + bounds[j]);
                    lower = lower.max((base_ij - bounds[j]).abs());
                }
                if upper <= params.threshold {
                    skipped += 1; // certified prunable — no eval, no scan
                    continue;
                }
                if lower > params.threshold {
                    skipped += 1; // certified interesting — scan, no eval
                    survivors.push(i);
                    continue;
                }
            }
            let b = F::upper_bound(&models[i], &models[last], params.agg)
                .expect("HAS_BOUND families always bound");
            bounds[i] = b;
            anchors.push(i);
            if !dominated[i] || b > params.threshold {
                survivors.push(i);
            }
        }
        return NewPairPlan {
            bounds: Some(bounds),
            survivors,
            skipped,
        };
    }
    let bounds = map_indices(params.par, last, |i| {
        F::upper_bound(&models[i], &models[last], params.agg)
            .expect("HAS_BOUND families always bound")
    });
    let survivors = (0..last)
        .filter(|&i| !dominated[i] || bounds[i] > params.threshold)
        .collect();
    NewPairPlan {
        bounds: Some(bounds),
        survivors,
        skipped: 0,
    }
}

/// Extends a base matrix over `models[..n-1]` with one new member — the
/// incremental-maintenance core. Only the `n − 1` new pairs `(i, n−1)` are
/// bounded, screened and (where surviving) scanned, per the `plan` from
/// [`plan_new_pairs`]; every old cell is copied bit-for-bit, so every
/// surviving cell is identical to recomputing the full matrix from
/// scratch. `params` must be validated, threshold-mode only.
pub(crate) fn extend_matrix<F: ModelFamily>(
    base: &DeviationMatrix,
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: Vec<String>,
    params: &MatrixParams,
    plan: NewPairPlan,
) -> DeviationMatrix {
    let n = models.len();
    debug_assert_eq!(base.len() + 1, n);
    debug_assert_eq!(params.top, None);
    let last = n - 1;

    let survivors = &plan.survivors;
    // As in the full computation: one shared handle per snapshot, so the
    // new member's expensive structures are built once across all of its
    // surviving pairs.
    let sources: Vec<F::Source<'_>> = datasets.iter().map(|d| F::source(d)).collect();
    let sources = &sources;
    let exact_vals = map_indices(params.par, survivors.len(), |s| {
        let i = survivors[s];
        deviate_sources_par::<F>(
            &models[i],
            &sources[i],
            &models[last],
            &sources[last],
            params.diff,
            params.agg,
            params.par,
        )
        .value
    });

    // Reassemble: old cells verbatim, new row/column from the fresh pairs.
    let old = base.len();
    let copy_block = |src: &[f64], fill: f64| {
        let mut dst = vec![fill; n * n];
        for i in 0..old {
            for j in 0..old {
                dst[i * n + j] = src[i * old + j];
            }
        }
        dst
    };
    let bounds = match (&base.bounds, &plan.bounds) {
        (Some(ob), Some(nb)) => {
            let mut bounds = copy_block(ob, 0.0);
            for (i, &b) in nb.iter().enumerate() {
                bounds[i * n + last] = b;
                bounds[last * n + i] = b;
            }
            Some(bounds)
        }
        (None, None) => None,
        _ => unreachable!("bound presence is a family constant"),
    };
    let mut exact = copy_block(&base.exact, f64::NAN);
    for (s, &i) in survivors.iter().enumerate() {
        exact[i * n + last] = exact_vals[s];
        exact[last * n + i] = exact_vals[s];
    }
    DeviationMatrix {
        names,
        n,
        bounds,
        exact,
        threshold: params.threshold,
        diff: params.diff,
        agg: params.agg,
        scanned: base.scanned + survivors.len(),
        metric: base.metric,
        bound_skips: base.bound_skips + plan.skipped,
    }
}

impl DeviationMatrix {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Snapshot names, in collection order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The screening threshold the matrix was computed at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The difference function the exact scans used.
    pub fn diff(&self) -> DiffFn {
        self.diff
    }

    /// The aggregate function the bounds and exact scans used.
    pub fn agg(&self) -> AggFn {
        self.agg
    }

    /// Number of unordered pairs, `n·(n−1)/2`.
    pub fn n_pairs(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// Number of pairs whose exact scan ran (bound above the cut).
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Number of pairs whose exact scan was pruned by the δ* screen.
    pub fn pruned(&self) -> usize {
        self.n_pairs() - self.scanned
    }

    /// True when the matrix carries model-only δ* bounds (the family
    /// defines one — every built-in family today). Boundless matrices are
    /// always complete: every pair was scanned.
    pub fn has_bounds(&self) -> bool {
        self.bounds.is_some()
    }

    /// True when the family's δ* is a pseudo-metric (lits, dt): the bound
    /// grid is a valid distance matrix for embedding and incremental
    /// extension may use triangle pruning. False for cluster matrices —
    /// their bound violates `δ*(M, M) = 0` when clusters overlap.
    pub fn metric(&self) -> bool {
        self.metric
    }

    /// Bound evaluations skipped by triangle pruning over the matrix's
    /// incremental history (`0` unless [`MatrixParams::triangle`] extended
    /// it).
    pub fn bound_skips(&self) -> usize {
        self.bound_skips
    }

    /// The δ* upper bound for a pair (`0` on the diagonal); NaN when the
    /// family defines no bound (see [`DeviationMatrix::has_bounds`]) or
    /// when triangle pruning decided the pair without evaluating it.
    pub fn bound(&self, i: usize, j: usize) -> f64 {
        match &self.bounds {
            Some(b) => b[i * self.n + j],
            None => f64::NAN,
        }
    }

    /// The exact deviation for a pair, if its scan survived screening.
    pub fn exact(&self, i: usize, j: usize) -> Option<f64> {
        let v = self.exact[i * self.n + j];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// The best available deviation estimate for a pair: the exact value
    /// where scanned, else the δ* bound (an upper bound on the truth).
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.exact(i, j).unwrap_or_else(|| self.bound(i, j))
    }

    /// The collection as a [`DistanceMatrix`]: the δ* bounds where they
    /// form a metric (Theorem 4.2 (2–3) — lits, dt), else the exact
    /// deviations (cluster's non-metric bound must never feed MDS;
    /// boundless matrices have exact values in full).
    ///
    /// Errors with [`MatrixError::MissingCell`] when a required cell is
    /// unavailable — a triangle-skipped bound on the metric path, or a
    /// pruned exact scan on the exact path — instead of silently feeding
    /// NaN into the embedding.
    pub fn distance_matrix(&self) -> Result<DistanceMatrix, MatrixError> {
        let metric_cell = |i: usize, j: usize| self.bound(i, j);
        let exact_cell = |i: usize, j: usize| {
            if i == j {
                0.0
            } else {
                self.exact[i * self.n + j]
            }
        };
        let cell: &dyn Fn(usize, usize) -> f64 = if self.metric {
            &metric_cell
        } else {
            &exact_cell
        };
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if cell(i, j).is_nan() {
                    return Err(MatrixError::MissingCell { i, j });
                }
            }
        }
        Ok(DistanceMatrix::from_fn(self.n, cell))
    }

    /// Classical MDS coordinates of the collection in `k` dimensions
    /// under the matrix's metric (Section 4.1.1's visual-comparison
    /// embedding). `n` points span at most `n − 1` dimensions, so
    /// `k >= n` (and `k == 0`) are rejected instead of producing junk
    /// zero coordinates; an unavailable cell is
    /// [`MatrixError::MissingCell`], never a NaN coordinate.
    pub fn embed(&self, k: usize) -> Result<Vec<Vec<f64>>, MatrixError> {
        if k == 0 || k >= self.n {
            return Err(MatrixError::EmbedDims { k, n: self.n });
        }
        Ok(self.distance_matrix()?.embed(k))
    }

    /// Embedding stress of `coords` against the matrix's metric. Fails
    /// like [`DeviationMatrix::distance_matrix`] when a cell is missing.
    pub fn stress(&self, coords: &[Vec<f64>]) -> Result<f64, MatrixError> {
        Ok(self.distance_matrix()?.stress(coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_core::data::{LabeledTable, Schema, Table, Value};
    use focus_core::family::{ClusterFamily, DtFamily};
    use focus_core::model::{induce_dt_measures, ClusterModel, DtModel};
    use focus_core::region::BoxBuilder;
    use focus_mining::{Apriori, AprioriParams};
    use std::sync::Arc;

    fn collection(
        seeds_skews: &[(u64, f64)],
    ) -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.15)
                .max_len(10)
                .min_count_floor(2),
        );
        let datasets: Vec<TransactionSet> = seeds_skews
            .iter()
            .map(|&(s, k)| random_dataset(s, 300, k))
            .collect();
        let models = datasets.iter().map(|d| miner.mine(d)).collect();
        let names = (0..datasets.len()).map(|i| format!("s{i}")).collect();
        (models, datasets, names)
    }

    #[test]
    fn screening_is_sound_and_complete() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.1), (3, 0.9), (4, 1.0)]);
        let full = deviation_matrix(&models, &datasets, names.clone(), 0.0).unwrap();
        assert_eq!(full.scanned(), 6);
        assert_eq!(full.pruned(), 0);
        assert!(full.has_bounds());

        // Pick a threshold strictly inside the observed bound range so the
        // screen genuinely splits the pairs.
        let mut bs: Vec<f64> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .map(|(i, j)| full.bound(i, j))
            .collect();
        bs.sort_by(f64::total_cmp);
        let threshold = (bs[2] + bs[3]) / 2.0;
        let screened = deviation_matrix(&models, &datasets, names, threshold).unwrap();
        assert!(screened.pruned() > 0 && screened.scanned() > 0);
        for i in 0..4 {
            for j in (i + 1)..4 {
                // Bounds are unaffected by screening.
                assert_eq!(screened.bound(i, j).to_bits(), full.bound(i, j).to_bits());
                match screened.exact(i, j) {
                    // Scanned pairs: identical to the unscreened run, and
                    // dominated by the bound (Theorem 4.2 (1)).
                    Some(e) => {
                        assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                        assert!(e <= screened.bound(i, j) + 1e-12);
                        assert!(screened.bound(i, j) > threshold);
                    }
                    // Pruned pairs: certified below threshold.
                    None => assert!(screened.bound(i, j) <= threshold),
                }
            }
        }
    }

    #[test]
    fn infinite_threshold_prunes_everything() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.5), (3, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        assert_eq!(m.scanned(), 0);
        assert_eq!(m.pruned(), 3);
        // `value` falls back to the bound for pruned pairs.
        assert_eq!(m.value(0, 1).to_bits(), m.bound(0, 1).to_bits());
    }

    #[test]
    fn nan_and_negative_thresholds_are_named_errors() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 1.0)]);
        for bad in [f64::NAN, -1.0, f64::NEG_INFINITY] {
            let err = deviation_matrix(&models, &datasets, names.clone(), bad).unwrap_err();
            // (No `assert_eq!` against the NaN case: the payload would
            // compare NaN ≠ NaN.)
            assert!(
                matches!(err, MatrixError::InvalidThreshold(t) if t.to_bits() == bad.to_bits()),
                "{err:?}"
            );
            assert!(err.to_string().contains("threshold"), "{err}");
        }
    }

    #[test]
    fn top_k_scans_the_k_largest_bounds() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.1), (3, 0.9), (4, 1.0)]);
        let full = deviation_matrix(&models, &datasets, names.clone(), 0.0).unwrap();
        let topped = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                top: Some(2),
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(topped.scanned(), 2);
        assert_eq!(topped.pruned(), 4);
        // The scanned pairs are exactly the two largest bounds, and their
        // exact values match the unscreened run bit-for-bit.
        let full_ref = &full;
        let mut ranked: Vec<(f64, usize, usize)> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (full_ref.bound(i, j), i, j)))
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (rank, &(_, i, j)) in ranked.iter().enumerate() {
            match topped.exact(i, j) {
                Some(e) => {
                    assert!(rank < 2, "pair ({i},{j}) scanned but not in top 2");
                    assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                }
                None => assert!(rank >= 2, "pair ({i},{j}) in top 2 but pruned"),
            }
        }
    }

    #[test]
    fn top_k_never_prunes_undominated_pairs() {
        // A mixed-minsup pair is not certified by the bound, so even
        // `top = Some(0)` must scan it.
        let datasets = vec![random_dataset(1, 300, 0.0), random_dataset(2, 300, 0.0)];
        let mine = |d: &TransactionSet, ms: f64| {
            Apriori::new(
                AprioriParams::with_minsup(ms)
                    .max_len(10)
                    .min_count_floor(2),
            )
            .mine(d)
        };
        let models = vec![mine(&datasets[0], 0.6), mine(&datasets[1], 0.01)];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            vec!["hi".into(), "lo".into()],
            &MatrixParams {
                top: Some(0),
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.scanned(), 1);
        assert!(m.exact(0, 1).is_some());
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let (models, datasets, names) = collection(&[(1, 0.0), (5, 0.4), (9, 0.8)]);
        let m = deviation_matrix(&models, &datasets, names, 0.0).unwrap();
        for i in 0..3 {
            assert_eq!(m.bound(i, i), 0.0);
            assert_eq!(m.exact(i, i), None);
            for j in 0..3 {
                assert_eq!(m.bound(i, j).to_bits(), m.bound(j, i).to_bits());
                assert_eq!(m.value(i, j).to_bits(), m.value(j, i).to_bits());
            }
        }
    }

    #[test]
    fn embedding_places_similar_snapshots_closer() {
        // Two tight groups; the δ* embedding must separate them.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0), (4, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        let coords = m.embed(2).unwrap();
        let dist = |a: usize, b: usize| {
            coords[a]
                .iter()
                .zip(&coords[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(0, 1) < dist(0, 2), "{} vs {}", dist(0, 1), dist(0, 2));
        assert!(dist(2, 3) < dist(2, 0), "{} vs {}", dist(2, 3), dist(2, 0));
    }

    #[test]
    fn embed_rejects_too_many_dimensions() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.5), (3, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY).unwrap();
        assert_eq!(
            m.embed(3).unwrap_err(),
            MatrixError::EmbedDims { k: 3, n: 3 }
        );
        assert_eq!(
            m.embed(0).unwrap_err(),
            MatrixError::EmbedDims { k: 0, n: 3 }
        );
        assert_eq!(m.embed(2).unwrap().len(), 3);
    }

    #[test]
    fn empty_and_singleton_collections() {
        let m = deviation_matrix(&[], &[], Vec::new(), 0.0).unwrap();
        assert_eq!(m.n_pairs(), 0);
        assert!(m.is_empty());
        let (models, datasets, names) = collection(&[(1, 0.0)]);
        let m = deviation_matrix(&models, &datasets, names, 0.0).unwrap();
        assert_eq!((m.n_pairs(), m.scanned(), m.pruned()), (0, 0, 0));
        // A single point spans zero dimensions: embedding is an error, not
        // a junk coordinate row.
        assert!(matches!(m.embed(2), Err(MatrixError::EmbedDims { .. })));
    }

    #[test]
    fn screened_members_marks_only_surviving_pairs() {
        let (models, _, _) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let bounds = pair_bounds::<LitsFamily>(&models, AggFn::Sum, Parallelism::Sequential);
        assert!(bounds.is_some());
        let all =
            screened_members::<LitsFamily>(&models, bounds.as_deref(), &MatrixParams::default());
        assert_eq!(all, vec![true, true, true]);
        let none = screened_members::<LitsFamily>(
            &models,
            bounds.as_deref(),
            &MatrixParams {
                threshold: f64::INFINITY,
                ..MatrixParams::default()
            },
        );
        assert_eq!(none, vec![false, false, false]);
    }

    #[test]
    fn screening_disabled_for_mixed_minsups() {
        // Theorem 4.2's domination argument needs a shared minsup: with
        // ms1 = 0.6 vs ms2 = 0.01, an itemset known only in model 2 may
        // have a large (but sub-0.6) support in dataset 1, so the bound's
        // per-itemset contribution understates the truth. Such a pair
        // must never be pruned, whatever the threshold.
        let datasets = vec![random_dataset(1, 300, 0.0), random_dataset(2, 300, 0.0)];
        let mine = |d: &TransactionSet, ms: f64| {
            Apriori::new(
                AprioriParams::with_minsup(ms)
                    .max_len(10)
                    .min_count_floor(2),
            )
            .mine(d)
        };
        let models = vec![mine(&datasets[0], 0.6), mine(&datasets[1], 0.01)];
        let names = vec!["hi-ms".to_string(), "lo-ms".to_string()];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 0, "mixed-minsup pair must not be pruned");
        assert!(m.exact(0, 1).is_some());
        // Same-minsup control: the screen works again.
        let models = vec![mine(&datasets[0], 0.2), mine(&datasets[1], 0.2)];
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            vec!["a".to_string(), "b".to_string()],
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 1);
    }

    #[test]
    fn screening_disabled_for_non_absolute_diffs() {
        // δ* bounds only δ(f_a, g) (Theorem 4.2): under f_s the "bound"
        // does not dominate, so even an infinite threshold must not prune
        // — every pair gets its exact scan.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let m = deviation_matrix_par::<LitsFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                diff: DiffFn::Scaled,
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!(m.pruned(), 0, "f_s screening would be unsound");
        assert_eq!(m.scanned(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(m.exact(i, j).is_some());
            }
        }
    }

    /// Three boundary trees: `t0`/`t1` share a leaf partition (split at
    /// 30) but are induced from different row counts, so their bound is a
    /// small measure difference; `t2` splits elsewhere, so no leaf
    /// matches and the bound charges the full mass of both trees.
    fn dt_collection() -> (Vec<DtModel>, Vec<LabeledTable>, Vec<String>) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut models = Vec::new();
        let mut datasets = Vec::new();
        let mut names = Vec::new();
        for (i, (boundary, rows)) in [(30.0, 120), (30.0, 150), (70.0, 120)].iter().enumerate() {
            let mut d = LabeledTable::new(Arc::clone(&schema), 2);
            for r in 0..*rows {
                let x = r as f64;
                d.push_row(&[Value::Num(x)], u32::from(x < *boundary));
            }
            let model = induce_dt_measures(
                vec![
                    BoxBuilder::new(&schema).lt("x", *boundary).build(),
                    BoxBuilder::new(&schema).ge("x", *boundary).build(),
                ],
                &d,
            );
            models.push(model);
            datasets.push(d);
            names.push(format!("t{i}"));
        }
        (models, datasets, names)
    }

    #[test]
    fn dt_family_matrix_screens_on_the_leaf_mass_bound() {
        let (models, datasets, names) = dt_collection();
        let full = deviation_matrix_par::<DtFamily>(
            &models,
            &datasets,
            names.clone(),
            &MatrixParams {
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert!(full.has_bounds());
        assert!(full.metric());
        // Shared-structure pair: small bound. Structurally different
        // pairs: the bound charges both trees' full mass (2.0).
        assert!(full.bound(0, 1) < 1.0, "{}", full.bound(0, 1));
        assert!((full.bound(0, 2) - 2.0).abs() < 1e-12);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(full.exact(i, j).unwrap() <= full.bound(i, j) + 1e-12);
            }
        }
        // A threshold between the two regimes prunes exactly the similar
        // pair; surviving cells are bit-identical to the full scan.
        let screened = deviation_matrix_par::<DtFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: 1.0,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert_eq!((screened.scanned(), screened.pruned()), (2, 1));
        assert_eq!(screened.exact(0, 1), None);
        assert_eq!(
            screened.exact(0, 2).unwrap().to_bits(),
            full.exact(0, 2).unwrap().to_bits()
        );
        // δ* is a metric for dt: the embedding runs off the bound grid
        // even though one exact cell is pruned.
        let coords = screened.embed(2).unwrap();
        assert_eq!(coords.len(), 3);
    }

    /// Cluster collection honouring the dominance contract (measures are
    /// box selectivities): `c0`/`c1` share their (disjoint) boxes with
    /// slightly different masses; `c2` clusters elsewhere.
    fn cluster_collection() -> (Vec<ClusterModel>, Vec<Table>, Vec<String>) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let shared = |s: &Arc<Schema>| {
            vec![
                BoxBuilder::new(s).range("x", 0.0, 30.0).build(),
                BoxBuilder::new(s).range("x", 50.0, 80.0).build(),
            ]
        };
        let far = |s: &Arc<Schema>| {
            vec![
                BoxBuilder::new(s).range("x", 100.0, 130.0).build(),
                BoxBuilder::new(s).range("x", 150.0, 180.0).build(),
            ]
        };
        let mut models = Vec::new();
        let mut datasets = Vec::new();
        let mut names = Vec::new();
        for (i, (boxes, span)) in [
            (shared(&schema), 90.0),
            (shared(&schema), 100.0),
            (far(&schema), 190.0),
        ]
        .into_iter()
        .enumerate()
        {
            let mut t = Table::new(Arc::clone(&schema));
            for r in 0..100 {
                t.push_row(&[Value::Num(r as f64 * span / 100.0)]);
            }
            let n = t.len() as f64;
            let measures = boxes
                .iter()
                .map(|b| t.rows().filter(|row| b.contains(row)).count() as f64 / n)
                .collect();
            models.push(ClusterModel::new(boxes, measures, t.len() as u64));
            datasets.push(t);
            names.push(format!("c{i}"));
        }
        (models, datasets, names)
    }

    #[test]
    fn cluster_family_matrix_screens_but_never_embeds_bounds() {
        let (models, datasets, names) = cluster_collection();
        let full = deviation_matrix_par::<ClusterFamily>(
            &models,
            &datasets,
            names.clone(),
            &MatrixParams {
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert!(full.has_bounds());
        assert!(!full.metric(), "cluster δ* is not a metric");
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(full.exact(i, j).unwrap() <= full.bound(i, j) + 1e-12);
            }
        }
        // The shared-box pair's bound is just the measure differences;
        // a threshold above it prunes that pair and keeps the rest.
        let cut = full.bound(0, 1);
        assert!(cut < full.bound(0, 2), "{cut} vs {}", full.bound(0, 2));
        let screened = deviation_matrix_par::<ClusterFamily>(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: cut,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        )
        .unwrap();
        assert!(screened.pruned() >= 1 && screened.scanned() >= 1);
        for i in 0..3 {
            for j in (i + 1)..3 {
                if let Some(e) = screened.exact(i, j) {
                    assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                }
            }
        }
        // Non-metric: embedding must use exact values, so a pruned cell is
        // a named error — never NaN coordinates.
        let err = screened.embed(2).unwrap_err();
        assert!(matches!(err, MatrixError::MissingCell { .. }), "{err:?}");
        assert!(err.to_string().contains("no distance available"), "{err}");
        // The unscreened matrix has every exact cell and embeds fine.
        assert_eq!(full.embed(2).unwrap().len(), 3);
        assert!(full.stress(&full.embed(2).unwrap()).is_ok());
    }

    #[test]
    fn triangle_extension_matches_plain_screening() {
        // Two tight lits groups; base over the first five snapshots, then
        // append a sixth and plan the new pairs with and without triangle
        // pruning: identical survivors and bounds where evaluated, with a
        // strictly positive number of bound evaluations skipped.
        let (models, datasets, names) = collection(&[
            (1, 0.0),
            (2, 0.05),
            (3, 1.0),
            (4, 0.95),
            (5, 0.0),
            (6, 0.02),
        ]);
        let probe = deviation_matrix(&models, &datasets, names.clone(), f64::INFINITY).unwrap();
        let probe = &probe;
        let mut bs: Vec<f64> = (0..6)
            .flat_map(|i| ((i + 1)..6).map(move |j| probe.bound(i, j)))
            .collect();
        bs.sort_by(f64::total_cmp);
        let params = MatrixParams {
            threshold: (bs[bs.len() / 2 - 1] + bs[bs.len() / 2]) / 2.0,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        };
        let base = deviation_matrix_par::<LitsFamily>(
            &models[..5],
            &datasets[..5],
            names[..5].to_vec(),
            &params,
        )
        .unwrap();

        let plain = plan_new_pairs::<LitsFamily>(&base, &models, &params);
        let tri = plan_new_pairs::<LitsFamily>(
            &base,
            &models,
            &MatrixParams {
                triangle: true,
                ..params
            },
        );
        assert_eq!(plain.survivors, tri.survivors, "survivor sets must agree");
        assert_eq!(plain.skipped, 0);
        assert!(tri.skipped > 0, "triangle pruning must skip some bounds");
        // Where the triangle plan did evaluate, it got the same bound.
        let (pb, tb) = (plain.bounds.unwrap(), tri.bounds.unwrap());
        let mut skipped_seen = 0;
        for i in 0..5 {
            if tb[i].is_nan() {
                skipped_seen += 1;
            } else {
                assert_eq!(pb[i].to_bits(), tb[i].to_bits(), "bound {i}");
            }
        }
        assert_eq!(skipped_seen, tri.skipped);
    }
}
