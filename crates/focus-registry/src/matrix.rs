//! The batch pairwise deviation engine with two-phase δ* screening.
//!
//! Phase 1 evaluates [`lits_upper_bound`] for every unordered pair — a
//! pure function of the two *models*, no dataset scans, effectively free
//! (the "Time for δ*" column of Figure 13). Phase 2 runs the exact
//! [`lits_deviation_par`] scan only for pairs whose bound exceeds the
//! caller's threshold; by Theorem 4.2 (1) `δ(f_a, g) ≤ δ*`, so a pair
//! whose bound is at or below the threshold is *certified* uninteresting
//! and the scan is pruned without loss. The theorem covers only the
//! absolute difference `f_a` between models mined at the *same* minsup:
//! for any other [`DiffFn`], or a pair whose minsups differ, the screen
//! is disabled and the pair is scanned.
//!
//! Both phases fan out over [`map_indices`] in pair-index order, so the
//! whole matrix inherits the workspace determinism contract: bit-identical
//! results for any worker-thread count.

use focus_core::bound::lits_upper_bound;
use focus_core::data::TransactionSet;
use focus_core::deviation::lits_deviation_par;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::embed::DistanceMatrix;
use focus_core::model::LitsModel;
use focus_exec::{map_indices, Parallelism};

/// Parameters for [`deviation_matrix_par`].
#[derive(Debug, Clone, Copy)]
pub struct MatrixParams {
    /// Difference function for the exact scans (the bound is always the
    /// `f_a` bound of Definition 4.1).
    pub diff: DiffFn,
    /// Aggregate `g ∈ {sum, max}`, used by both the bound and the scans.
    pub agg: AggFn,
    /// Screening threshold: pairs with `δ* ≤ threshold` skip the exact
    /// scan. `0.0` (the default) scans every pair with a positive bound;
    /// a negative threshold forces a scan of every pair.
    ///
    /// Screening only applies when `diff` is [`DiffFn::Absolute`] *and*
    /// the pair's models share a minsup: Theorem 4.2 (1) bounds δ(f_a, g)
    /// between same-minsup models and nothing else, so any other pair is
    /// scanned regardless of the threshold (pruning there would silently
    /// discard pairs the bound does not certify).
    pub threshold: f64,
    /// Worker threads for both fan-out phases.
    pub par: Parallelism,
}

impl Default for MatrixParams {
    fn default() -> Self {
        Self {
            diff: DiffFn::Absolute,
            agg: AggFn::Sum,
            threshold: 0.0,
            par: Parallelism::Global,
        }
    }
}

/// The screened pairwise deviation matrix of a snapshot collection.
///
/// (No `PartialEq`: pruned cells are stored as NaN, so derived equality
/// would be reflexively false — compare cells via the accessors instead.)
#[derive(Debug, Clone)]
pub struct DeviationMatrix {
    names: Vec<String>,
    n: usize,
    /// Row-major symmetric δ* bounds; zero diagonal.
    bounds: Vec<f64>,
    /// Row-major exact deviations; NaN where the scan was pruned (see
    /// [`DeviationMatrix::exact`] for the `Option` view).
    exact: Vec<f64>,
    threshold: f64,
    scanned: usize,
}

/// Unordered pairs `(i, j)`, `i < j`, in lexicographic order — the one
/// canonical pair enumeration both phases and all consumers share.
fn pairs(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push((i, j));
        }
    }
    out
}

/// True if δ* dominates `δ(diff, g)` for this pair, i.e. the screen is
/// sound. Two conditions, both from Theorem 4.2 (1):
///
/// * the difference function is the *absolute* `f_a` — a scaled or χ²
///   deviation can exceed the f_a bound arbitrarily (a region with f_a
///   contribution 0.05 contributes 2.0 under f_s);
/// * the two models share a minsup — the domination argument replaces an
///   itemset's unknown support with `0` because "unknown `< ms ≤` known";
///   with minsups 0.6 vs 0.01, an itemset known at 0.05 in one model may
///   have true support 0.55 in the other dataset, so the true difference
///   (0.50) dwarfs the bound's contribution (0.05).
///
/// Pairs failing either condition always get their exact scan.
fn bound_screens(diff: DiffFn, m1: &LitsModel, m2: &LitsModel) -> bool {
    matches!(diff, DiffFn::Absolute) && m1.minsup() == m2.minsup()
}

/// Phase 1: the δ* bound for every unordered pair, in [`pairs`] order,
/// fanned out over `par`. Model-only — no dataset scans.
pub(crate) fn pair_bounds(models: &[LitsModel], agg: AggFn, par: Parallelism) -> Vec<f64> {
    let pair_list = pairs(models.len());
    map_indices(par, pair_list.len(), |p| {
        let (i, j) = pair_list[p];
        lits_upper_bound(&models[i], &models[j], agg)
    })
}

/// The pair indices (into [`pairs`] order) whose exact scan survives
/// screening under `params`: a pair is pruned only when the bound is
/// certified to dominate ([`bound_screens`]) *and* falls at or below the
/// threshold.
fn surviving_pairs(models: &[LitsModel], bounds: &[f64], params: &MatrixParams) -> Vec<usize> {
    let pair_list = pairs(models.len());
    (0..bounds.len())
        .filter(|&p| {
            let (i, j) = pair_list[p];
            !bound_screens(params.diff, &models[i], &models[j]) || bounds[p] > params.threshold
        })
        .collect()
}

/// Which collection members participate in at least one pair that
/// survives screening — i.e. whose *datasets* phase 2 will scan. Lets
/// callers that load datasets lazily (the registry) skip the IO for
/// members whose every pair was pruned. `bounds` must come from
/// [`pair_bounds`] over the same collection.
pub(crate) fn screened_members(
    models: &[LitsModel],
    bounds: &[f64],
    params: &MatrixParams,
) -> Vec<bool> {
    let pair_list = pairs(models.len());
    let mut needed = vec![false; models.len()];
    for p in surviving_pairs(models, bounds, params) {
        let (i, j) = pair_list[p];
        needed[i] = true;
        needed[j] = true;
    }
    needed
}

/// [`deviation_matrix_par`] at the process-wide default parallelism and
/// default parameters except the given threshold.
pub fn deviation_matrix(
    models: &[LitsModel],
    datasets: &[TransactionSet],
    names: Vec<String>,
    threshold: f64,
) -> DeviationMatrix {
    deviation_matrix_par(
        models,
        datasets,
        names,
        &MatrixParams {
            threshold,
            ..MatrixParams::default()
        },
    )
}

/// Computes the δ*-screened pairwise deviation matrix of a collection.
///
/// `models[k]` and `datasets[k]` must describe the same snapshot `k`
/// (named `names[k]`). Datasets whose every pair is pruned are never
/// touched — callers may pass empty stand-ins for them (see
/// [`Registry::matrix`](crate::Registry::matrix)).
///
/// Bit-identical for every worker-thread count: pair enumeration, chunk
/// decomposition, and merge order are all pure functions of the input
/// sizes, and the per-pair scans are themselves thread-count-invariant.
pub fn deviation_matrix_par(
    models: &[LitsModel],
    datasets: &[TransactionSet],
    names: Vec<String>,
    params: &MatrixParams,
) -> DeviationMatrix {
    // Phase 1: model-only bounds for every pair. One pair is one work
    // item; the bound needs no dataset scan, so this phase is cheap even
    // for large collections.
    let bounds = pair_bounds(models, params.agg, params.par);
    deviation_matrix_with_bounds(models, datasets, names, params, bounds)
}

/// [`deviation_matrix_par`] with the phase-1 bounds already in hand (in
/// [`pairs`] order) — lets the registry reuse the bounds it computed to
/// decide which datasets to load instead of paying the sweep twice.
pub(crate) fn deviation_matrix_with_bounds(
    models: &[LitsModel],
    datasets: &[TransactionSet],
    names: Vec<String>,
    params: &MatrixParams,
    pair_bounds: Vec<f64>,
) -> DeviationMatrix {
    let n = models.len();
    assert_eq!(n, datasets.len(), "one dataset per model");
    assert_eq!(n, names.len(), "one name per model");
    let pair_list = pairs(n);
    assert_eq!(pair_list.len(), pair_bounds.len(), "one bound per pair");

    // Screening: for f_a over same-minsup models the exact deviation
    // never exceeds the bound (Theorem 4.2 (1)), so `δ* ≤ threshold`
    // certifies the pair as uninteresting; any other difference function
    // or a minsup mismatch voids the certificate and the pair survives.
    let survivors = surviving_pairs(models, &pair_bounds, params);

    // Phase 2: exact scans for the surviving pairs only. Each pair is one
    // work item; nested scan parallelism inside a worker runs inline per
    // the focus-exec nesting guard.
    let exact_vals = map_indices(params.par, survivors.len(), |s| {
        let (i, j) = pair_list[survivors[s]];
        lits_deviation_par(
            &models[i],
            &datasets[i],
            &models[j],
            &datasets[j],
            params.diff,
            params.agg,
            params.par,
        )
        .value
    });

    let mut bounds = vec![0.0; n * n];
    let mut exact = vec![f64::NAN; n * n];
    for (p, &(i, j)) in pair_list.iter().enumerate() {
        bounds[i * n + j] = pair_bounds[p];
        bounds[j * n + i] = pair_bounds[p];
    }
    for (s, &p) in survivors.iter().enumerate() {
        let (i, j) = pair_list[p];
        exact[i * n + j] = exact_vals[s];
        exact[j * n + i] = exact_vals[s];
    }
    DeviationMatrix {
        names,
        n,
        bounds,
        exact,
        threshold: params.threshold,
        scanned: survivors.len(),
    }
}

impl DeviationMatrix {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Snapshot names, in collection order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The screening threshold the matrix was computed at.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of unordered pairs, `n·(n−1)/2`.
    pub fn n_pairs(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// Number of pairs whose exact scan ran (bound above threshold).
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Number of pairs whose exact scan was pruned by the δ* screen.
    pub fn pruned(&self) -> usize {
        self.n_pairs() - self.scanned
    }

    /// The δ* upper bound for a pair (`0` on the diagonal).
    pub fn bound(&self, i: usize, j: usize) -> f64 {
        self.bounds[i * self.n + j]
    }

    /// The exact deviation for a pair, if its scan survived screening.
    pub fn exact(&self, i: usize, j: usize) -> Option<f64> {
        let v = self.exact[i * self.n + j];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// The best available deviation estimate for a pair: the exact value
    /// where scanned, else the δ* bound (an upper bound on the truth).
    pub fn value(&self, i: usize, j: usize) -> f64 {
        self.exact(i, j).unwrap_or_else(|| self.bound(i, j))
    }

    /// The δ* bounds as a [`DistanceMatrix`] — δ* is a metric (Theorem
    /// 4.2 (2–3)), the exact deviations in general are not, so the
    /// embedding always uses the bounds.
    pub fn distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.n, |i, j| self.bound(i, j))
    }

    /// Classical MDS coordinates of the collection in `k` dimensions
    /// under the δ* metric (Section 4.1.1's visual-comparison embedding).
    pub fn embed(&self, k: usize) -> Vec<Vec<f64>> {
        self.distance_matrix().embed(k)
    }

    /// Embedding stress of `coords` against the δ* metric.
    pub fn stress(&self, coords: &[Vec<f64>]) -> f64 {
        self.distance_matrix().stress(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_mining::{Apriori, AprioriParams};

    fn collection(
        seeds_skews: &[(u64, f64)],
    ) -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
        let miner = Apriori::new(
            AprioriParams::with_minsup(0.15)
                .max_len(10)
                .min_count_floor(2),
        );
        let datasets: Vec<TransactionSet> = seeds_skews
            .iter()
            .map(|&(s, k)| random_dataset(s, 300, k))
            .collect();
        let models = datasets.iter().map(|d| miner.mine(d)).collect();
        let names = (0..datasets.len()).map(|i| format!("s{i}")).collect();
        (models, datasets, names)
    }

    #[test]
    fn screening_is_sound_and_complete() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.1), (3, 0.9), (4, 1.0)]);
        let full = deviation_matrix(&models, &datasets, names.clone(), -1.0);
        assert_eq!(full.scanned(), 6);
        assert_eq!(full.pruned(), 0);

        // Pick a threshold strictly inside the observed bound range so the
        // screen genuinely splits the pairs.
        let mut bs: Vec<f64> = (0..4)
            .flat_map(|i| ((i + 1)..4).map(move |j| (i, j)))
            .map(|(i, j)| full.bound(i, j))
            .collect();
        bs.sort_by(f64::total_cmp);
        let threshold = (bs[2] + bs[3]) / 2.0;
        let screened = deviation_matrix(&models, &datasets, names, threshold);
        assert!(screened.pruned() > 0 && screened.scanned() > 0);
        for i in 0..4 {
            for j in (i + 1)..4 {
                // Bounds are unaffected by screening.
                assert_eq!(screened.bound(i, j).to_bits(), full.bound(i, j).to_bits());
                match screened.exact(i, j) {
                    // Scanned pairs: identical to the unscreened run, and
                    // dominated by the bound (Theorem 4.2 (1)).
                    Some(e) => {
                        assert_eq!(e.to_bits(), full.exact(i, j).unwrap().to_bits());
                        assert!(e <= screened.bound(i, j) + 1e-12);
                        assert!(screened.bound(i, j) > threshold);
                    }
                    // Pruned pairs: certified below threshold.
                    None => assert!(screened.bound(i, j) <= threshold),
                }
            }
        }
    }

    #[test]
    fn infinite_threshold_prunes_everything() {
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.5), (3, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY);
        assert_eq!(m.scanned(), 0);
        assert_eq!(m.pruned(), 3);
        // `value` falls back to the bound for pruned pairs.
        assert_eq!(m.value(0, 1).to_bits(), m.bound(0, 1).to_bits());
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let (models, datasets, names) = collection(&[(1, 0.0), (5, 0.4), (9, 0.8)]);
        let m = deviation_matrix(&models, &datasets, names, -1.0);
        for i in 0..3 {
            assert_eq!(m.bound(i, i), 0.0);
            assert_eq!(m.exact(i, i), None);
            for j in 0..3 {
                assert_eq!(m.bound(i, j).to_bits(), m.bound(j, i).to_bits());
                assert_eq!(m.value(i, j).to_bits(), m.value(j, i).to_bits());
            }
        }
    }

    #[test]
    fn embedding_places_similar_snapshots_closer() {
        // Two tight groups; the δ* embedding must separate them.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0), (4, 1.0)]);
        let m = deviation_matrix(&models, &datasets, names, f64::INFINITY);
        let coords = m.embed(2);
        let dist = |a: usize, b: usize| {
            coords[a]
                .iter()
                .zip(&coords[b])
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(dist(0, 1) < dist(0, 2), "{} vs {}", dist(0, 1), dist(0, 2));
        assert!(dist(2, 3) < dist(2, 0), "{} vs {}", dist(2, 3), dist(2, 0));
    }

    #[test]
    fn empty_and_singleton_collections() {
        let m = deviation_matrix(&[], &[], Vec::new(), 0.0);
        assert_eq!(m.n_pairs(), 0);
        assert!(m.is_empty());
        let (models, datasets, names) = collection(&[(1, 0.0)]);
        let m = deviation_matrix(&models, &datasets, names, 0.0);
        assert_eq!((m.n_pairs(), m.scanned(), m.pruned()), (0, 0, 0));
        assert_eq!(m.embed(2).len(), 1);
    }

    #[test]
    fn screened_members_marks_only_surviving_pairs() {
        let (models, _, _) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let bounds = pair_bounds(&models, AggFn::Sum, Parallelism::Sequential);
        let all = screened_members(&models, &bounds, &MatrixParams::default());
        assert_eq!(all, vec![true, true, true]);
        let none = screened_members(
            &models,
            &bounds,
            &MatrixParams {
                threshold: f64::INFINITY,
                ..MatrixParams::default()
            },
        );
        assert_eq!(none, vec![false, false, false]);
    }

    #[test]
    fn screening_disabled_for_mixed_minsups() {
        // Theorem 4.2's domination argument needs a shared minsup: with
        // ms1 = 0.6 vs ms2 = 0.01, an itemset known only in model 2 may
        // have a large (but sub-0.6) support in dataset 1, so the bound's
        // per-itemset contribution understates the truth. Such a pair
        // must never be pruned, whatever the threshold.
        let datasets = vec![random_dataset(1, 300, 0.0), random_dataset(2, 300, 0.0)];
        let mine = |d: &TransactionSet, ms: f64| {
            Apriori::new(
                AprioriParams::with_minsup(ms)
                    .max_len(10)
                    .min_count_floor(2),
            )
            .mine(d)
        };
        let models = vec![mine(&datasets[0], 0.6), mine(&datasets[1], 0.01)];
        let names = vec!["hi-ms".to_string(), "lo-ms".to_string()];
        let m = deviation_matrix_par(
            &models,
            &datasets,
            names,
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        );
        assert_eq!(m.pruned(), 0, "mixed-minsup pair must not be pruned");
        assert!(m.exact(0, 1).is_some());
        // Same-minsup control: the screen works again.
        let models = vec![mine(&datasets[0], 0.2), mine(&datasets[1], 0.2)];
        let m = deviation_matrix_par(
            &models,
            &datasets,
            vec!["a".to_string(), "b".to_string()],
            &MatrixParams {
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        );
        assert_eq!(m.pruned(), 1);
    }

    #[test]
    fn screening_disabled_for_non_absolute_diffs() {
        // δ* bounds only δ(f_a, g) (Theorem 4.2): under f_s the "bound"
        // does not dominate, so even an infinite threshold must not prune
        // — every pair gets its exact scan.
        let (models, datasets, names) = collection(&[(1, 0.0), (2, 0.0), (3, 1.0)]);
        let m = deviation_matrix_par(
            &models,
            &datasets,
            names,
            &MatrixParams {
                diff: DiffFn::Scaled,
                threshold: f64::INFINITY,
                par: Parallelism::Sequential,
                ..MatrixParams::default()
            },
        );
        assert_eq!(m.pruned(), 0, "f_s screening would be unsound");
        assert_eq!(m.scanned(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(m.exact(i, j).is_some());
            }
        }
    }
}
