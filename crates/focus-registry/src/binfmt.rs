//! The binary columnar snapshot format and its zero-copy reader.
//!
//! The plain-text artifact formats stay the golden/interchange tier —
//! diff-friendly, greppable, stable. This module is the *production*
//! tier underneath them: a versioned binary container that decodes with
//! bulk `memcpy`-style column reads instead of per-token float parsing,
//! so `DeviationMatrix` scans stop paying parse cost on every load.
//!
//! ## Container layout
//!
//! ```text
//! magic "FCSB" | version u16 | payload-kind u16          (8-byte header)
//! section*:  tag [u8;4] | payload-len u64 | payload | checksum u64
//! ```
//!
//! Everything is little-endian. Each payload kind (transactions, tables,
//! the three model kinds) writes a fixed sequence of tagged sections;
//! numeric columns are stored as raw `u64`/`u32`/`f64-bit` words. Every
//! section carries a checksum of its payload (FNV-1a folded over 64-bit
//! words plus the length — [`checksum64`]), so corruption —
//! a flipped bit, a truncated write, a foreign file — always surfaces as
//! a **named [`BinError`]**, never as a silent wrong read. Decoded
//! structures pass through the same validation the text readers perform
//! (ranges, arities, counts), so a checksum-colliding forgery still
//! cannot smuggle out-of-contract data into the engine.
//!
//! ## Reading
//!
//! Decoders take `&[u8]`, so they run identically over an owned buffer
//! and over [`MappedBytes`] — the memory-mapped, zero-copy view used by
//! the registry's load seam when the `mmap` feature (default-on) is
//! active on a 64-bit unix target, with a read-to-`Vec` fallback
//! everywhere else. Either way the decoded structs are owned, so results
//! are bit-identical to text-loaded data by construction of the same
//! in-memory types.

use focus_core::data::{AttrType, LabeledTable, Schema, Table, TransactionSet, Value};
use focus_core::model::{ClusterModel, DtModel, LitsModel};
use focus_core::persist::check_cluster_model_persistable;
use focus_core::region::{AttrConstraint, BoxRegion, CatMask, Itemset};
use focus_core::vertical::VerticalIndex;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// File magic: "FCSB" (FoCuS Binary).
const MAGIC: [u8; 4] = *b"FCSB";
/// Container format version this build writes and reads.
const VERSION: u16 = 1;

/// Payload kind codes (the header's second `u16`).
const KIND_TXNS: u16 = 1;
const KIND_TABLE: u16 = 2;
const KIND_LTBL: u16 = 3;
const KIND_LITS: u16 = 4;
const KIND_DT: u16 = 5;
const KIND_CLUSTER: u16 = 6;

fn kind_name(kind: u16) -> &'static str {
    match kind {
        KIND_TXNS => "transactions",
        KIND_TABLE => "table",
        KIND_LTBL => "labeled-table",
        KIND_LITS => "lits-model",
        KIND_DT => "dt-model",
        KIND_CLUSTER => "cluster-model",
        _ => "unknown",
    }
}

/// Every way a binary snapshot can fail to decode, by name. Converted to
/// `io::ErrorKind::InvalidData` at the registry seam, with this error as
/// the source so the section name survives into the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The file does not start with the `FCSB` magic.
    BadMagic,
    /// The container version is newer than this build understands.
    BadVersion(u16),
    /// The file holds a different payload kind than the caller asked for
    /// (e.g. a table where transactions were expected).
    WrongKind {
        /// The kind code the caller expected.
        expected: u16,
        /// The kind code found in the header.
        found: u16,
    },
    /// The file ends before the named section is complete.
    Truncated(&'static str),
    /// The named section's payload does not match its stored checksum.
    Checksum(&'static str),
    /// A section tag other than the expected one appears where the named
    /// section should be.
    WrongSection {
        /// The section the decoder expected next.
        expected: &'static str,
        /// The four tag bytes actually found.
        found: [u8; 4],
    },
    /// The named section's payload decodes but violates the format's
    /// invariants (bad counts, out-of-range codes, non-CSR offsets, …).
    Malformed {
        /// The section the violation was found in.
        section: &'static str,
        /// What was wrong.
        what: String,
    },
    /// Extra bytes follow the final section.
    TrailingBytes,
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "binary snapshot: bad magic (not an FCSB file)"),
            BinError::BadVersion(v) => {
                write!(
                    f,
                    "binary snapshot: unsupported version {v} (have {VERSION})"
                )
            }
            BinError::WrongKind { expected, found } => write!(
                f,
                "binary snapshot: holds a {} payload, expected {}",
                kind_name(*found),
                kind_name(*expected)
            ),
            BinError::Truncated(section) => {
                write!(f, "binary snapshot: truncated in section {section}")
            }
            BinError::Checksum(section) => {
                write!(f, "binary snapshot: checksum mismatch in section {section}")
            }
            BinError::WrongSection { expected, found } => write!(
                f,
                "binary snapshot: expected section {expected}, found {:?}",
                String::from_utf8_lossy(found)
            ),
            BinError::Malformed { section, what } => {
                write!(f, "binary snapshot: malformed section {section}: {what}")
            }
            BinError::TrailingBytes => {
                write!(f, "binary snapshot: trailing bytes after the final section")
            }
        }
    }
}

impl std::error::Error for BinError {}

impl From<BinError> for io::Error {
    fn from(e: BinError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// FNV-1a 64 over `bytes` — used for shard placement of snapshot names.
/// Not cryptographic; the inputs are short, so the byte-serial chain is
/// irrelevant there.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-section checksum: FNV-1a folded over little-endian 64-bit
/// words (zero-padded tail), with the byte length mixed in last so
/// padding cannot alias. The byte-serial FNV variant's multiply chain
/// is the long pole of large-section decodes; consuming a word per step
/// keeps checksum verification an order of magnitude below the text
/// parsers. Not cryptographic; it guards against torn writes and bit
/// rot, not adversaries.
fn checksum64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8 bytes"));
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(PRIME)
}

// ---------------------------------------------------------------------------
// Encoding

/// Accumulates one container: header, then tagged + checksummed sections.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(kind: u16) -> Enc {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        Enc { buf }
    }

    /// Appends one section; `fill` writes the payload.
    fn section(&mut self, tag: &'static str, fill: impl FnOnce(&mut Payload)) {
        debug_assert_eq!(tag.len(), 4, "section tags are exactly four bytes");
        self.buf.extend_from_slice(tag.as_bytes());
        let len_at = self.buf.len();
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        let start = self.buf.len();
        fill(&mut Payload { buf: &mut self.buf });
        let len = (self.buf.len() - start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
        let sum = checksum64(&self.buf[start..]);
        self.buf.extend_from_slice(&sum.to_le_bytes());
    }

    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive writes into the current section.
struct Payload<'a> {
    buf: &'a mut Vec<u8>,
}

impl Payload<'_> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

// ---------------------------------------------------------------------------
// Decoding

/// Walks a container's sections in their fixed per-kind order.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn open(bytes: &'a [u8], expected_kind: u16) -> Result<Dec<'a>, BinError> {
        if bytes.len() < 8 {
            if bytes.len() < 4 || bytes[..4] != MAGIC {
                return Err(BinError::BadMagic);
            }
            return Err(BinError::Truncated("header"));
        }
        if bytes[..4] != MAGIC {
            return Err(BinError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(BinError::BadVersion(version));
        }
        let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
        if kind != expected_kind {
            return Err(BinError::WrongKind {
                expected: expected_kind,
                found: kind,
            });
        }
        Ok(Dec { buf: bytes, pos: 8 })
    }

    /// Reads the next section, which must carry `tag`; verifies its
    /// checksum and returns a cursor over the payload.
    fn section(&mut self, tag: &'static str) -> Result<Field<'a>, BinError> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 12 {
            return Err(BinError::Truncated(tag));
        }
        if &rest[..4] != tag.as_bytes() {
            return Err(BinError::WrongSection {
                expected: tag,
                found: [rest[0], rest[1], rest[2], rest[3]],
            });
        }
        let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let len: usize = len.try_into().map_err(|_| BinError::Truncated(tag))?;
        let Some(body) = rest.get(12..12 + len) else {
            return Err(BinError::Truncated(tag));
        };
        let Some(sum_bytes) = rest.get(12 + len..12 + len + 8) else {
            return Err(BinError::Truncated(tag));
        };
        let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
        if checksum64(body) != sum {
            return Err(BinError::Checksum(tag));
        }
        self.pos += 12 + len + 8;
        Ok(Field {
            buf: body,
            pos: 0,
            section: tag,
        })
    }

    fn finish(self) -> Result<(), BinError> {
        if self.pos != self.buf.len() {
            return Err(BinError::TrailingBytes);
        }
        Ok(())
    }
}

/// Little-endian primitive reads out of one section's payload.
struct Field<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Field<'a> {
    fn short(&self) -> BinError {
        BinError::Malformed {
            section: self.section,
            what: "payload shorter than its fields".to_string(),
        }
    }

    fn bad(&self, what: impl Into<String>) -> BinError {
        BinError::Malformed {
            section: self.section,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.short())?;
        let out = self.buf.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` that must fit a `usize` count.
    fn count(&mut self) -> Result<usize, BinError> {
        let v = self.u64()?;
        v.try_into()
            .map_err(|_| self.bad(format!("count {v} exceeds the address space")))
    }

    /// Remaining payload must be exactly `n` `u64` words; returns them.
    fn u64_column(&mut self, n: usize) -> Result<Vec<u64>, BinError> {
        let bytes = n
            .checked_mul(8)
            .ok_or_else(|| self.bad("column size overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
            .collect())
    }

    /// Reads `n` `u32` words.
    fn u32_column(&mut self, n: usize) -> Result<Vec<u32>, BinError> {
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| self.bad("column size overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect())
    }

    /// Reads `n` `f64` values (stored as raw bit words, so every float —
    /// ±inf, NaN payloads, signed zero — round-trips bit-exactly).
    fn f64_column(&mut self, n: usize) -> Result<Vec<f64>, BinError> {
        Ok(self
            .u64_column(n)?
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// The payload must be fully consumed.
    fn done(self) -> Result<(), BinError> {
        if self.pos != self.buf.len() {
            return Err(BinError::Malformed {
                section: self.section,
                what: "payload longer than its fields".to_string(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Transactions

/// Encodes a transaction set (sections `HEAD`, `OFFS`, `ITEM`).
pub fn encode_transactions(data: &TransactionSet) -> Vec<u8> {
    let mut enc = Enc::new(KIND_TXNS);
    let n = data.len();
    let total: usize = data.iter().map(<[u32]>::len).sum();
    enc.section("HEAD", |p| {
        p.u32(data.n_items());
        p.u64(n as u64);
        p.u64(total as u64);
    });
    enc.section("OFFS", |p| {
        let mut off = 0u64;
        p.u64(0);
        for txn in data.iter() {
            off += txn.len() as u64;
            p.u64(off);
        }
    });
    enc.section("ITEM", |p| {
        for txn in data.iter() {
            for &it in txn {
                p.u32(it);
            }
        }
    });
    enc.finish()
}

/// Decodes [`encode_transactions`] output, re-validating the CSR
/// invariants (so a checksum-colliding corruption still cannot produce an
/// out-of-contract `TransactionSet`).
pub fn decode_transactions(bytes: &[u8]) -> Result<TransactionSet, BinError> {
    let (n_items, offsets, items) = decode_transactions_parts(bytes)?;
    TransactionSet::from_parts(n_items, offsets, items).map_err(|what| BinError::Malformed {
        section: "ITEM",
        what,
    })
}

/// Decodes a transactions container straight into a [`VerticalIndex`]:
/// the columnar words go bytes → tid bitsets in one pass, with the same
/// section walk, checksum verification and CSR validation as
/// [`decode_transactions`] but no intermediate `TransactionSet`. The
/// resulting index counts bit-identically to
/// `VerticalIndex::build(&decode_transactions(bytes)?)`.
pub fn decode_transactions_to_index(bytes: &[u8]) -> Result<VerticalIndex, BinError> {
    let (n_items, offsets, items) = decode_transactions_parts(bytes)?;
    VerticalIndex::from_csr(n_items, &offsets, &items).map_err(|e| BinError::Malformed {
        section: "ITEM",
        what: e.to_string(),
    })
}

/// The shared section walk behind both transaction decoders: verifies the
/// container framing and returns the raw `(n_items, offsets, items)` CSR
/// columns. CSR *semantic* validation (monotone offsets, in-range sorted
/// items) is left to the caller's constructor, which names violations in
/// the `ITEM` section.
fn decode_transactions_parts(bytes: &[u8]) -> Result<(u32, Vec<usize>, Vec<u32>), BinError> {
    let mut dec = Dec::open(bytes, KIND_TXNS)?;
    let mut head = dec.section("HEAD")?;
    let n_items = head.u32()?;
    let n_txns = head.count()?;
    let total = head.count()?;
    head.done()?;

    let mut offs = dec.section("OFFS")?;
    let n_offsets = n_txns.checked_add(1).ok_or_else(|| BinError::Malformed {
        section: "HEAD",
        what: "transaction count overflows".to_string(),
    })?;
    let raw_offsets = offs.u64_column(n_offsets)?;
    offs.done()?;
    let offsets: Vec<usize> = raw_offsets
        .iter()
        .map(|&o| {
            o.try_into().map_err(|_| BinError::Malformed {
                section: "OFFS",
                what: format!("offset {o} exceeds the address space"),
            })
        })
        .collect::<Result<_, _>>()?;

    let mut item = dec.section("ITEM")?;
    let items = item.u32_column(total)?;
    item.done()?;
    dec.finish()?;

    Ok((n_items, offsets, items))
}

// ---------------------------------------------------------------------------
// Schema + tables

fn put_schema(p: &mut Payload<'_>, schema: &Schema) {
    p.u32(schema.len() as u32);
    for a in schema.attrs() {
        match &a.ty {
            AttrType::Numeric => {
                p.u8(0);
                p.u32(0);
            }
            AttrType::Categorical { cardinality } => {
                p.u8(1);
                p.u32(*cardinality);
            }
        }
        p.u32(a.name.len() as u32);
        p.bytes(a.name.as_bytes());
    }
}

fn get_schema(f: &mut Field<'_>) -> Result<Arc<Schema>, BinError> {
    let n = f.u32()? as usize;
    let mut attrs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let tag = f.u8()?;
        let card = f.u32()?;
        let name_len = f.u32()? as usize;
        let name = std::str::from_utf8(f.take(name_len)?)
            .map_err(|_| f.bad("attribute name is not UTF-8"))?
            .to_string();
        attrs.push(match tag {
            0 => Schema::numeric(&name),
            1 => Schema::categorical(&name, card),
            other => return Err(f.bad(format!("unknown attribute type tag {other}"))),
        });
    }
    Ok(Arc::new(Schema::new(attrs)))
}

/// Writes one table's values column-major: numeric columns as raw `f64`
/// bit words, categorical columns as `u32` codes.
fn put_columns(p: &mut Payload<'_>, data: &Table) {
    let schema = data.schema();
    for (j, a) in schema.attrs().iter().enumerate() {
        match a.ty {
            AttrType::Numeric => {
                for i in 0..data.len() {
                    p.f64(data.row(i)[j].as_num());
                }
            }
            AttrType::Categorical { .. } => {
                for i in 0..data.len() {
                    p.u32(data.row(i)[j].as_cat());
                }
            }
        }
    }
}

fn get_columns(f: &mut Field<'_>, schema: &Arc<Schema>, n_rows: usize) -> Result<Table, BinError> {
    let width = schema.len();
    let total = n_rows
        .checked_mul(width)
        .ok_or_else(|| f.bad("rows × width overflows"))?;
    // Fill row-major storage column by column; Value::Num(0.0) is a
    // placeholder every slot overwrites.
    let mut values = vec![Value::Num(0.0); total];
    for (j, a) in schema.attrs().iter().enumerate() {
        match a.ty {
            AttrType::Numeric => {
                for (i, v) in f.f64_column(n_rows)?.into_iter().enumerate() {
                    values[i * width + j] = Value::Num(v);
                }
            }
            AttrType::Categorical { .. } => {
                for (i, v) in f.u32_column(n_rows)?.into_iter().enumerate() {
                    values[i * width + j] = Value::Cat(v);
                }
            }
        }
    }
    Table::from_values(Arc::clone(schema), values, n_rows).map_err(|what| BinError::Malformed {
        section: "COLS",
        what,
    })
}

/// Encodes a plain table (sections `SCHM`, `HEAD`, `COLS`).
pub fn encode_table(data: &Table) -> Vec<u8> {
    let mut enc = Enc::new(KIND_TABLE);
    enc.section("SCHM", |p| put_schema(p, data.schema()));
    enc.section("HEAD", |p| p.u64(data.len() as u64));
    enc.section("COLS", |p| put_columns(p, data));
    enc.finish()
}

/// Decodes [`encode_table`] output.
pub fn decode_table(bytes: &[u8]) -> Result<Table, BinError> {
    let mut dec = Dec::open(bytes, KIND_TABLE)?;
    let mut schm = dec.section("SCHM")?;
    let schema = get_schema(&mut schm)?;
    schm.done()?;
    let mut head = dec.section("HEAD")?;
    let n_rows = head.count()?;
    head.done()?;
    let mut cols = dec.section("COLS")?;
    let table = get_columns(&mut cols, &schema, n_rows)?;
    cols.done()?;
    dec.finish()?;
    Ok(table)
}

/// Encodes a labelled table (sections `SCHM`, `HEAD`, `COLS`, `LABL`).
pub fn encode_labeled_table(data: &LabeledTable) -> Vec<u8> {
    let mut enc = Enc::new(KIND_LTBL);
    enc.section("SCHM", |p| put_schema(p, data.table.schema()));
    enc.section("HEAD", |p| {
        p.u64(data.len() as u64);
        p.u32(data.n_classes);
    });
    enc.section("COLS", |p| put_columns(p, &data.table));
    enc.section("LABL", |p| {
        for &l in &data.labels {
            p.u32(l);
        }
    });
    enc.finish()
}

/// Decodes [`encode_labeled_table`] output.
pub fn decode_labeled_table(bytes: &[u8]) -> Result<LabeledTable, BinError> {
    let mut dec = Dec::open(bytes, KIND_LTBL)?;
    let mut schm = dec.section("SCHM")?;
    let schema = get_schema(&mut schm)?;
    schm.done()?;
    let mut head = dec.section("HEAD")?;
    let n_rows = head.count()?;
    let n_classes = head.u32()?;
    head.done()?;
    if n_classes == 0 {
        return Err(BinError::Malformed {
            section: "HEAD",
            what: "labelled table needs at least one class".to_string(),
        });
    }
    let mut cols = dec.section("COLS")?;
    let table = get_columns(&mut cols, &schema, n_rows)?;
    cols.done()?;
    let mut labl = dec.section("LABL")?;
    let labels = labl.u32_column(n_rows)?;
    labl.done()?;
    dec.finish()?;
    if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
        return Err(BinError::Malformed {
            section: "LABL",
            what: format!("label {bad} out of range 0..{n_classes}"),
        });
    }
    Ok(LabeledTable {
        table,
        labels,
        n_classes,
    })
}

// ---------------------------------------------------------------------------
// Models

/// Encodes a lits-model (sections `HEAD`, `OFFS`, `ITEM`, `SUPP`).
pub fn encode_lits_model(model: &LitsModel) -> Vec<u8> {
    let mut enc = Enc::new(KIND_LITS);
    let total: usize = model.itemsets().iter().map(Itemset::len).sum();
    enc.section("HEAD", |p| {
        p.f64(model.minsup());
        p.u64(model.n_transactions());
        p.u64(model.len() as u64);
        p.u64(total as u64);
    });
    enc.section("OFFS", |p| {
        let mut off = 0u64;
        p.u64(0);
        for s in model.itemsets() {
            off += s.len() as u64;
            p.u64(off);
        }
    });
    enc.section("ITEM", |p| {
        for s in model.itemsets() {
            for &it in s.items() {
                p.u32(it);
            }
        }
    });
    enc.section("SUPP", |p| {
        for &sup in model.supports() {
            p.f64(sup);
        }
    });
    enc.finish()
}

/// Decodes [`encode_lits_model`] output.
pub fn decode_lits_model(bytes: &[u8]) -> Result<LitsModel, BinError> {
    let mut dec = Dec::open(bytes, KIND_LITS)?;
    let mut head = dec.section("HEAD")?;
    let minsup = head.f64()?;
    let n_txns = head.u64()?;
    let n_sets = head.count()?;
    let total = head.count()?;
    head.done()?;

    let mut offs = dec.section("OFFS")?;
    let n_offsets = n_sets.checked_add(1).ok_or_else(|| BinError::Malformed {
        section: "HEAD",
        what: "itemset count overflows".to_string(),
    })?;
    let offsets = offs.u64_column(n_offsets)?;
    offs.done()?;
    let mut item = dec.section("ITEM")?;
    let items = item.u32_column(total)?;
    item.done()?;
    let mut supp = dec.section("SUPP")?;
    let supports = supp.f64_column(n_sets)?;
    supp.done()?;
    dec.finish()?;

    if offsets.first() != Some(&0) || offsets.last() != Some(&(total as u64)) {
        return Err(BinError::Malformed {
            section: "OFFS",
            what: "offsets do not cover the item column".to_string(),
        });
    }
    let mut itemsets = Vec::with_capacity(n_sets);
    for (k, w) in offsets.windows(2).enumerate() {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        if hi < lo || hi > items.len() {
            return Err(BinError::Malformed {
                section: "OFFS",
                what: format!("itemset {k} has a decreasing or out-of-range offset"),
            });
        }
        let slice = &items[lo..hi];
        if slice.windows(2).any(|p| p[1] <= p[0]) {
            return Err(BinError::Malformed {
                section: "ITEM",
                what: format!("itemset {k} is not strictly increasing"),
            });
        }
        itemsets.push(Itemset::from_slice(slice));
    }
    Ok(LitsModel::new(itemsets, supports, minsup, n_txns))
}

fn put_regions(p: &mut Payload<'_>, regions: &[BoxRegion]) {
    p.u32(regions.len() as u32);
    for r in regions {
        p.u32(r.constraints.len() as u32);
        for c in &r.constraints {
            match c {
                AttrConstraint::Interval { lo, hi } => {
                    p.u8(0);
                    p.f64(*lo);
                    p.f64(*hi);
                }
                AttrConstraint::Cats(m) => {
                    p.u8(1);
                    p.u32(m.cardinality());
                    p.u32(m.count());
                    for code in m.iter() {
                        p.u32(code);
                    }
                }
            }
        }
    }
}

fn get_regions(
    f: &mut Field<'_>,
    schema: &Schema,
    expected: usize,
) -> Result<Vec<BoxRegion>, BinError> {
    let n = f.u32()? as usize;
    if n != expected {
        return Err(f.bad(format!("region count {n} does not match header {expected}")));
    }
    let mut regions = Vec::with_capacity(n);
    for k in 0..n {
        let n_cons = f.u32()? as usize;
        if n_cons != schema.len() {
            return Err(f.bad(format!(
                "region {k}: constraint count {n_cons} does not match schema ({})",
                schema.len()
            )));
        }
        let mut constraints = Vec::with_capacity(n_cons);
        for _ in 0..n_cons {
            match f.u8()? {
                0 => {
                    let lo = f.f64()?;
                    let hi = f.f64()?;
                    constraints.push(AttrConstraint::Interval { lo, hi });
                }
                1 => {
                    let card = f.u32()?;
                    let n_codes = f.u32()? as usize;
                    let codes = f.u32_column(n_codes)?;
                    if let Some(&code) = codes.iter().find(|&&c| c >= card) {
                        return Err(f.bad(format!("category code {code} out of range 0..{card}")));
                    }
                    if codes.windows(2).any(|p| p[1] <= p[0]) {
                        return Err(f.bad("category codes must be strictly increasing"));
                    }
                    constraints.push(AttrConstraint::Cats(CatMask::of(card, &codes)));
                }
                other => return Err(f.bad(format!("unknown constraint tag {other}"))),
            }
        }
        regions.push(BoxRegion {
            constraints,
            class: None,
        });
    }
    Ok(regions)
}

/// Encodes a dt-model with its schema (sections `HEAD`, `SCHM`, `RGNS`,
/// `MEAS`). Like the text format, the region class slot is not recorded
/// (dt leaves are class-free by construction).
pub fn encode_dt_model(model: &DtModel, schema: &Schema) -> Vec<u8> {
    let mut enc = Enc::new(KIND_DT);
    enc.section("HEAD", |p| {
        p.u32(model.n_classes());
        p.u64(model.n_rows());
        p.u64(model.leaves().len() as u64);
    });
    enc.section("SCHM", |p| put_schema(p, schema));
    enc.section("RGNS", |p| put_regions(p, model.leaves()));
    enc.section("MEAS", |p| {
        for &m in model.measures() {
            p.f64(m);
        }
    });
    enc.finish()
}

/// Decodes [`encode_dt_model`] output; returns the model and its schema.
pub fn decode_dt_model(bytes: &[u8]) -> Result<(DtModel, Arc<Schema>), BinError> {
    let mut dec = Dec::open(bytes, KIND_DT)?;
    let mut head = dec.section("HEAD")?;
    let n_classes = head.u32()?;
    let n_rows = head.u64()?;
    let n_leaves = head.count()?;
    head.done()?;
    if n_classes == 0 {
        return Err(BinError::Malformed {
            section: "HEAD",
            what: "dt-model needs at least one class".to_string(),
        });
    }
    let mut schm = dec.section("SCHM")?;
    let schema = get_schema(&mut schm)?;
    schm.done()?;
    let mut rgns = dec.section("RGNS")?;
    let leaves = get_regions(&mut rgns, &schema, n_leaves)?;
    rgns.done()?;
    let n_meas = n_leaves
        .checked_mul(n_classes as usize)
        .ok_or_else(|| BinError::Malformed {
            section: "MEAS",
            what: "leaves × classes overflows".to_string(),
        })?;
    let mut meas = dec.section("MEAS")?;
    let measures = meas.f64_column(n_meas)?;
    meas.done()?;
    dec.finish()?;
    Ok((DtModel::new(leaves, n_classes, measures, n_rows), schema))
}

/// Encodes a cluster-model with its schema (sections `HEAD`, `SCHM`,
/// `RGNS`, `MEAS`). Rejects class-carrying regions with `InvalidInput`,
/// exactly like the text writer.
pub fn encode_cluster_model(model: &ClusterModel, schema: &Schema) -> io::Result<Vec<u8>> {
    check_cluster_model_persistable(model)?;
    let mut enc = Enc::new(KIND_CLUSTER);
    enc.section("HEAD", |p| {
        p.u64(model.n_rows());
        p.u64(model.clusters().len() as u64);
    });
    enc.section("SCHM", |p| put_schema(p, schema));
    enc.section("RGNS", |p| put_regions(p, model.clusters()));
    enc.section("MEAS", |p| {
        for &m in model.measures() {
            p.f64(m);
        }
    });
    Ok(enc.finish())
}

/// Decodes [`encode_cluster_model`] output; returns the model and its
/// schema.
pub fn decode_cluster_model(bytes: &[u8]) -> Result<(ClusterModel, Arc<Schema>), BinError> {
    let mut dec = Dec::open(bytes, KIND_CLUSTER)?;
    let mut head = dec.section("HEAD")?;
    let n_rows = head.u64()?;
    let n_clusters = head.count()?;
    head.done()?;
    let mut schm = dec.section("SCHM")?;
    let schema = get_schema(&mut schm)?;
    schm.done()?;
    let mut rgns = dec.section("RGNS")?;
    let clusters = get_regions(&mut rgns, &schema, n_clusters)?;
    rgns.done()?;
    let mut meas = dec.section("MEAS")?;
    let measures = meas.f64_column(n_clusters)?;
    meas.done()?;
    dec.finish()?;
    Ok((ClusterModel::new(clusters, measures, n_rows), schema))
}

// ---------------------------------------------------------------------------
// Memory-mapped reads

/// True when this build actually memory-maps snapshot files; false when
/// [`MappedBytes::open`] falls back to reading into a `Vec`.
pub fn mmap_active() -> bool {
    cfg!(all(unix, target_pointer_width = "64", feature = "mmap"))
}

/// A read-only byte view of a file: memory-mapped where the platform and
/// the `mmap` feature allow it, an owned buffer otherwise. Decoders only
/// see `&[u8]`, so the two paths are interchangeable — and because the
/// decoded structures are owned either way, results are bit-identical to
/// buffered reads by construction.
pub struct MappedBytes(Repr);

enum Repr {
    Owned(Vec<u8>),
    #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
    Mapped(mmap_impl::Map),
}

impl MappedBytes {
    /// Opens `path` for zero-copy reading, falling back to
    /// [`MappedBytes::read_owned`] when mapping is unavailable (non-unix,
    /// 32-bit, the `mmap` feature off, an empty file, or a map failure).
    pub fn open(path: &Path) -> io::Result<MappedBytes> {
        #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
        {
            if let Some(map) = mmap_impl::Map::open(path)? {
                return Ok(MappedBytes(Repr::Mapped(map)));
            }
        }
        Self::read_owned(path)
    }

    /// Reads `path` fully into an owned buffer (never maps).
    pub fn read_owned(path: &Path) -> io::Result<MappedBytes> {
        Ok(MappedBytes(Repr::Owned(std::fs::read(path)?)))
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            Repr::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
            Repr::Mapped(m) => m.as_slice(),
        }
    }
}

/// The raw `mmap`/`munmap` shim. The workspace forbids new external
/// dependencies, so the two libc symbols are declared directly; the
/// unsafety is confined to this module and the mapping is strictly
/// read-only + private, so no Rust aliasing rule can be violated through
/// it. 64-bit unix only (`off_t` is `i64` there), which the cfg gate
/// guarantees.
#[cfg(all(unix, target_pointer_width = "64", feature = "mmap"))]
#[allow(unsafe_code)]
mod mmap_impl {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::path::Path;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// An owned read-only private mapping, unmapped on drop.
    pub(super) struct Map {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never handed out
    // mutably, so concurrent reads from other threads are safe.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `path` read-only. `Ok(None)` means "use the owned-read
        /// fallback" (empty file, or the kernel refused the map).
        pub(super) fn open(path: &Path) -> io::Result<Option<Map>> {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(None);
            }
            let Ok(len) = usize::try_from(len) else {
                return Ok(None);
            };
            // SAFETY: a fresh anonymous-address read-only private mapping
            // of an open fd; the fd may close after mmap returns (the
            // mapping keeps its own reference).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as isize == -1 {
                return Ok(None);
            }
            Ok(Some(Map { ptr, len }))
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the borrow cannot outlive the unmap in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: exactly the region mmap returned; mapped once,
            // unmapped once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_dataset;
    use focus_core::data::LabeledTable;
    use focus_core::model::induce_dt_measures;
    use focus_core::region::BoxBuilder;

    fn demo_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::categorical("color", 4),
        ]))
    }

    fn demo_labeled() -> LabeledTable {
        let schema = demo_schema();
        let mut d = LabeledTable::new(Arc::clone(&schema), 3);
        for i in 0..50 {
            d.push_row(
                &[Value::Num(i as f64 * 0.5 - 3.0), Value::Cat(i % 4)],
                i % 3,
            );
        }
        d
    }

    fn demo_dt() -> (LabeledTable, DtModel) {
        let d = demo_labeled();
        let schema = Arc::clone(d.table.schema());
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("x", 5.0).build(),
                BoxBuilder::new(&schema).ge("x", 5.0).build(),
            ],
            &d,
        );
        (d, model)
    }

    fn demo_cluster() -> (Table, ClusterModel) {
        let d = demo_labeled().table;
        let schema = Arc::clone(d.schema());
        let clusters = vec![
            BoxBuilder::new(&schema)
                .range("x", f64::NEG_INFINITY, 2.5)
                .cats("color", &[0, 3])
                .build(),
            BoxBuilder::new(&schema)
                .range("x", 2.5, f64::INFINITY)
                .cats("color", &[])
                .build(),
        ];
        let model = ClusterModel::new(clusters, vec![0.625, 0.0], d.len() as u64);
        (d, model)
    }

    #[test]
    fn transactions_round_trip() {
        let ts = random_dataset(7, 400, 0.5);
        let bytes = encode_transactions(&ts);
        assert_eq!(decode_transactions(&bytes).unwrap(), ts);
        // Empty set and empty universe both survive.
        let empty = TransactionSet::new(0);
        assert_eq!(
            decode_transactions(&encode_transactions(&empty)).unwrap(),
            empty
        );
    }

    #[test]
    fn decode_to_index_matches_decode_then_build() {
        // The one-pass bytes → bitsets decoder must produce exactly the
        // index a decode-to-TransactionSet-then-build pipeline would.
        for (seed, n, density) in [(7, 400, 0.5), (13, 64, 0.05), (2, 1, 1.0)] {
            let ts = random_dataset(seed, n, density);
            let bytes = encode_transactions(&ts);
            let direct = decode_transactions_to_index(&bytes).unwrap();
            assert_eq!(direct, VerticalIndex::build(&ts));
        }
        let empty = TransactionSet::new(3);
        let direct = decode_transactions_to_index(&encode_transactions(&empty)).unwrap();
        assert_eq!(direct, VerticalIndex::build(&empty));
    }

    #[test]
    fn decode_to_index_names_corruption_like_the_set_decoder() {
        let bytes = encode_transactions(&random_dataset(3, 100, 0.4));
        for (tag, range) in sections_of(&bytes) {
            if range.is_empty() {
                continue;
            }
            let mid = range.start + range.len() / 2;
            let mut corrupt = bytes.clone();
            corrupt[mid] ^= 0x40;
            let err = decode_transactions_to_index(&corrupt).unwrap_err();
            let BinError::Checksum(section) = err else {
                panic!("section {tag}: want a checksum error, got {err}");
            };
            assert_eq!(section, tag, "checksum error must name the section");
            assert_eq!(
                decode_transactions_to_index(&bytes[..mid]).unwrap_err(),
                decode_transactions(&bytes[..mid]).unwrap_err(),
                "both decoders agree on truncation in {tag}"
            );
        }
    }

    #[test]
    fn tables_round_trip() {
        let d = demo_labeled();
        let bytes = encode_labeled_table(&d);
        assert_eq!(decode_labeled_table(&bytes).unwrap(), d);
        let bytes = encode_table(&d.table);
        assert_eq!(decode_table(&bytes).unwrap(), d.table);
        let empty = Table::new(Arc::new(Schema::new(Vec::new())));
        assert_eq!(decode_table(&encode_table(&empty)).unwrap(), empty);
    }

    #[test]
    fn models_round_trip() {
        let model = LitsModel::new(
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[2, 5]),
                Itemset::from_slice(&[1, 2, 9]),
            ],
            vec![0.5, 1.0 / 3.0, 0.125],
            0.01,
            12_345,
        );
        assert_eq!(
            decode_lits_model(&encode_lits_model(&model)).unwrap(),
            model
        );

        let (d, dt) = demo_dt();
        let bytes = encode_dt_model(&dt, d.table.schema());
        let (back, schema) = decode_dt_model(&bytes).unwrap();
        assert_eq!(back, dt);
        assert_eq!(*schema, **d.table.schema());

        let (t, clu) = demo_cluster();
        let bytes = encode_cluster_model(&clu, t.schema()).unwrap();
        let (back, schema) = decode_cluster_model(&bytes).unwrap();
        assert_eq!(back, clu);
        assert_eq!(*schema, **t.schema());
    }

    #[test]
    fn classful_cluster_regions_are_rejected() {
        let (t, clu) = demo_cluster();
        let schema = Arc::clone(t.schema());
        let classful = ClusterModel::new(
            clu.clusters().iter().map(|c| c.with_class(0)).collect(),
            clu.measures().to_vec(),
            clu.n_rows(),
        );
        let err = encode_cluster_model(&classful, &schema).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn wrong_kind_is_named() {
        let ts = random_dataset(1, 20, 0.0);
        let bytes = encode_transactions(&ts);
        let err = decode_table(&bytes).unwrap_err();
        assert_eq!(
            err,
            BinError::WrongKind {
                expected: KIND_TABLE,
                found: KIND_TXNS
            }
        );
        assert!(err.to_string().contains("transactions"), "{err}");
    }

    #[test]
    fn header_corruption_is_named() {
        let bytes = encode_transactions(&random_dataset(1, 20, 0.0));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_transactions(&bad).unwrap_err(), BinError::BadMagic);
        let mut newer = bytes.clone();
        newer[4] = 99;
        assert_eq!(
            decode_transactions(&newer).unwrap_err(),
            BinError::BadVersion(99)
        );
        assert_eq!(decode_transactions(&[]).unwrap_err(), BinError::BadMagic);
        assert_eq!(
            decode_transactions(&bytes[..6]).unwrap_err(),
            BinError::Truncated("header")
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_transactions(&trailing).unwrap_err(),
            BinError::TrailingBytes
        );
    }

    /// Walks the container framing: returns `(tag, payload_range)` per
    /// section, from the wire bytes alone.
    fn sections_of(bytes: &[u8]) -> Vec<(String, std::ops::Range<usize>)> {
        let mut out = Vec::new();
        let mut pos = 8;
        while pos < bytes.len() {
            let tag = String::from_utf8(bytes[pos..pos + 4].to_vec()).unwrap();
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
            out.push((tag, pos + 12..pos + 12 + len));
            pos += 12 + len + 8;
        }
        out
    }

    /// The corruption sweep of the issue: flip one byte in every
    /// section's payload and assert the *named* checksum error; truncate
    /// inside every section and assert the named truncation error.
    #[test]
    fn corruption_sweep_names_every_section() {
        let (d, dt) = demo_dt();
        let (t, clu) = demo_cluster();
        let lits = LitsModel::new(vec![Itemset::from_slice(&[1, 4])], vec![0.25], 0.1, 1_000);
        let artifacts: Vec<Vec<u8>> = vec![
            encode_transactions(&random_dataset(3, 100, 0.4)),
            encode_table(&t),
            encode_labeled_table(&d),
            encode_lits_model(&lits),
            encode_dt_model(&dt, d.table.schema()),
            encode_cluster_model(&clu, t.schema()).unwrap(),
        ];
        let decode = |bytes: &[u8]| -> Result<(), BinError> {
            // Dispatch on the header kind so one sweep covers all six.
            match u16::from_le_bytes([bytes[6], bytes[7]]) {
                KIND_TXNS => decode_transactions(bytes).map(|_| ()),
                KIND_TABLE => decode_table(bytes).map(|_| ()),
                KIND_LTBL => decode_labeled_table(bytes).map(|_| ()),
                KIND_LITS => decode_lits_model(bytes).map(|_| ()),
                KIND_DT => decode_dt_model(bytes).map(|_| ()),
                KIND_CLUSTER => decode_cluster_model(bytes).map(|_| ()),
                other => panic!("unknown kind {other}"),
            }
        };
        for bytes in &artifacts {
            decode(bytes).unwrap();
            for (tag, range) in sections_of(bytes) {
                if range.is_empty() {
                    continue;
                }
                let mid = range.start + range.len() / 2;
                let mut corrupt = bytes.clone();
                corrupt[mid] ^= 0x40;
                let err = decode(&corrupt).unwrap_err();
                let BinError::Checksum(section) = err else {
                    panic!("section {tag}: want a checksum error, got {err}");
                };
                assert_eq!(section, tag, "checksum error must name the section");
                // Truncating inside the section names it too.
                let err = decode(&bytes[..mid]).unwrap_err();
                assert_eq!(err, BinError::Truncated(section), "truncate in {tag}");
            }
        }
    }

    #[test]
    fn mapped_bytes_match_owned_reads() {
        let dir = std::env::temp_dir().join(format!("focus-binfmt-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txns.bin");
        let ts = random_dataset(11, 300, 0.8);
        std::fs::write(&path, encode_transactions(&ts)).unwrap();
        let mapped = MappedBytes::open(&path).unwrap();
        let owned = MappedBytes::read_owned(&path).unwrap();
        assert_eq!(&*mapped, &*owned, "byte views must agree");
        assert_eq!(decode_transactions(&mapped).unwrap(), ts);
        assert_eq!(decode_transactions(&owned).unwrap(), ts);
        // Empty files take the owned fallback and still behave.
        let empty = dir.join("empty.bin");
        std::fs::write(&empty, b"").unwrap();
        assert!(MappedBytes::open(&empty).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
