//! Shared fixtures for the crate's unit tests.

use focus_core::data::TransactionSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded 8-item dataset; `skew` tilts item probabilities so different
/// skews yield measurably different support profiles (high δ* pairs)
/// while equal skews stay close (low δ* pairs).
pub fn random_dataset(seed: u64, n: usize, skew: f64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = TransactionSet::new(8);
    for _ in 0..n {
        let t: Vec<u32> = (0..8u32)
            .filter(|&i| rng.gen::<f64>() < 0.15 + skew * (i as f64 / 8.0) * 0.4)
            .collect();
        ts.push(t);
    }
    ts
}
