//! Randomized round-trip properties for the binary columnar snapshot
//! format, mirroring the seeded round-trip tests of the text formats
//! (`focus_core::persist`, `focus_data::io`): for every family, many
//! random datasets and models — mixed schemas, empty models, ±infinite
//! interval endpoints — must survive encode → decode bit-for-bit, and
//! every single-byte corruption of an encoded artifact must surface a
//! named [`BinError`], never a silent wrong read.

use focus_core::data::{AttrType, LabeledTable, Schema, Table, TransactionSet, Value};
use focus_core::model::{ClusterModel, DtModel, LitsModel};
use focus_core::region::{AttrConstraint, BoxRegion, CatMask, Itemset};
use focus_registry::binfmt::{
    decode_cluster_model, decode_dt_model, decode_labeled_table, decode_lits_model, decode_table,
    decode_transactions, encode_cluster_model, encode_dt_model, encode_labeled_table,
    encode_lits_model, encode_table, encode_transactions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const SEEDS: u64 = 24;

/// The cardinality of attribute `i`, `None` when numeric.
fn card_of(schema: &Schema, i: usize) -> Option<u32> {
    match schema.attr(i).ty {
        AttrType::Numeric => None,
        AttrType::Categorical { cardinality } => Some(cardinality),
    }
}

fn random_schema(rng: &mut StdRng) -> Arc<Schema> {
    let n_attrs = rng.gen_range(1..6);
    let attrs = (0..n_attrs)
        .map(|i| {
            if rng.gen_bool(0.5) {
                Schema::numeric(&format!("num{i}"))
            } else {
                Schema::categorical(&format!("cat{i}"), rng.gen_range(1..7))
            }
        })
        .collect();
    Arc::new(Schema::new(attrs))
}

fn random_row(rng: &mut StdRng, schema: &Schema) -> Vec<Value> {
    (0..schema.len())
        .map(|i| match card_of(schema, i) {
            None => Value::Num(rng.gen_range(-1e6..1e6)),
            Some(card) => Value::Cat(rng.gen_range(0..card)),
        })
        .collect()
}

fn random_transactions(rng: &mut StdRng) -> TransactionSet {
    let n_items = rng.gen_range(1..33u32);
    let mut ts = TransactionSet::new(n_items);
    for _ in 0..rng.gen_range(0..200) {
        let len = rng.gen_range(0..n_items.min(6) + 1);
        let items = (0..len).map(|_| rng.gen_range(0..n_items)).collect();
        ts.push(items);
    }
    ts
}

/// A random box over `schema`: numeric attributes get an interval whose
/// endpoints are sometimes ±∞, categorical ones a random (possibly empty
/// or full) code mask.
fn random_region(rng: &mut StdRng, schema: &Schema) -> BoxRegion {
    let constraints = (0..schema.len())
        .map(|i| match card_of(schema, i) {
            None => {
                let lo = if rng.gen_bool(0.25) {
                    f64::NEG_INFINITY
                } else {
                    rng.gen_range(-100.0..100.0)
                };
                let hi = if rng.gen_bool(0.25) {
                    f64::INFINITY
                } else {
                    lo.max(rng.gen_range(-100.0..100.0))
                };
                AttrConstraint::Interval { lo, hi }
            }
            Some(card) => {
                let codes: Vec<u32> = (0..card).filter(|_| rng.gen_bool(0.4)).collect();
                AttrConstraint::Cats(CatMask::of(card, &codes))
            }
        })
        .collect();
    BoxRegion {
        constraints,
        class: None,
    }
}

#[test]
fn transactions_survive_binary_round_trip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = random_transactions(&mut rng);
        let back = decode_transactions(&encode_transactions(&ts)).unwrap();
        assert_eq!(back, ts, "seed {seed}");
    }
}

#[test]
fn tables_survive_binary_round_trip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng);
        let mut t = Table::new(Arc::clone(&schema));
        for _ in 0..rng.gen_range(0..120) {
            t.push_row(&random_row(&mut rng, &schema));
        }
        assert_eq!(decode_table(&encode_table(&t)).unwrap(), t, "seed {seed}");

        let n_classes = rng.gen_range(1..5);
        let mut lt = LabeledTable::new(Arc::clone(&schema), n_classes);
        for _ in 0..rng.gen_range(0..120) {
            let row = random_row(&mut rng, &schema);
            lt.push_row(&row, rng.gen_range(0..n_classes));
        }
        assert_eq!(
            decode_labeled_table(&encode_labeled_table(&lt)).unwrap(),
            lt,
            "seed {seed}"
        );
    }
}

#[test]
fn lits_models_survive_binary_round_trip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_sets = rng.gen_range(0..40);
        let mut itemsets = Vec::new();
        let mut supports = Vec::new();
        for _ in 0..n_sets {
            let len = rng.gen_range(1..6u32);
            // Strictly increasing items, as the miner produces.
            let mut items: Vec<u32> = (0..len).map(|k| k * 7 + rng.gen_range(0..7u32)).collect();
            items.dedup();
            itemsets.push(Itemset::from_slice(&items));
            supports.push(rng.gen::<f64>());
        }
        let model = LitsModel::new(itemsets, supports, rng.gen_range(0.0..0.5), 10_000);
        let back = decode_lits_model(&encode_lits_model(&model)).unwrap();
        assert_eq!(back, model, "seed {seed}");
    }
}

#[test]
fn dt_and_cluster_models_survive_binary_round_trip() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = random_schema(&mut rng);
        let n_leaves = rng.gen_range(0..12);
        let n_classes = rng.gen_range(1..5);
        let leaves: Vec<BoxRegion> = (0..n_leaves)
            .map(|_| random_region(&mut rng, &schema))
            .collect();
        let measures = (0..n_leaves * n_classes as usize)
            .map(|_| rng.gen::<f64>())
            .collect();
        let dt = DtModel::new(leaves.clone(), n_classes, measures, 5000);
        let (back, back_schema) = decode_dt_model(&encode_dt_model(&dt, &schema)).unwrap();
        assert_eq!(back, dt, "seed {seed}");
        assert_eq!(*back_schema, *schema, "seed {seed}");

        let cluster_measures = (0..n_leaves).map(|_| rng.gen::<f64>()).collect();
        let clu = ClusterModel::new(leaves, cluster_measures, 5000);
        let bytes = encode_cluster_model(&clu, &schema).unwrap();
        let (back, back_schema) = decode_cluster_model(&bytes).unwrap();
        assert_eq!(back, clu, "seed {seed}");
        assert_eq!(*back_schema, *schema, "seed {seed}");
    }
}

/// Flipping *any* single byte of an encoded artifact must make decoding
/// fail — the per-section checksums leave no blind spots where corruption
/// could pass as valid data.
#[test]
fn every_single_byte_flip_is_detected() {
    let mut rng = StdRng::seed_from_u64(42);
    let ts = random_transactions(&mut rng);
    let schema = random_schema(&mut rng);
    let mut lt = LabeledTable::new(Arc::clone(&schema), 3);
    for _ in 0..40 {
        let row = random_row(&mut rng, &schema);
        lt.push_row(&row, rng.gen_range(0..3));
    }
    let leaves: Vec<BoxRegion> = (0..4).map(|_| random_region(&mut rng, &schema)).collect();
    let dt = DtModel::new(
        leaves.clone(),
        3,
        (0..12).map(|_| rng.gen::<f64>()).collect(),
        40,
    );
    let clu = ClusterModel::new(leaves, (0..4).map(|_| rng.gen::<f64>()).collect(), 40);
    let lits = LitsModel::new(
        vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[1, 3])],
        vec![0.5, 0.25],
        0.1,
        200,
    );

    type Sweep = (&'static str, Vec<u8>, Box<dyn Fn(&[u8]) -> bool>);
    let sweeps: Vec<Sweep> = vec![
        (
            "txns",
            encode_transactions(&ts),
            Box::new(|b| decode_transactions(b).is_err()),
        ),
        (
            "ltbl",
            encode_labeled_table(&lt),
            Box::new(|b| decode_labeled_table(b).is_err()),
        ),
        (
            "lits",
            encode_lits_model(&lits),
            Box::new(|b| decode_lits_model(b).is_err()),
        ),
        (
            "dt",
            encode_dt_model(&dt, &schema),
            Box::new(|b| decode_dt_model(b).is_err()),
        ),
        (
            "cluster",
            encode_cluster_model(&clu, &schema).unwrap(),
            Box::new(|b| decode_cluster_model(b).is_err()),
        ),
    ];
    for (tag, bytes, fails) in &sweeps {
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x2a;
            assert!(fails(&corrupt), "{tag}: flip at byte {pos} went undetected");
        }
        // Truncation at any length must fail too.
        for cut in 0..bytes.len() {
            assert!(fails(&bytes[..cut]), "{tag}: truncation to {cut} bytes");
        }
    }
}
