//! Storage-tier equivalence: the same snapshot collection persisted as
//! classic flat/text, flat/binary, and sharded/binary registries must
//! load bit-identical datasets and models, and must produce bit-identical
//! screened deviation matrices — for all three model families. The binary
//! registries read through the mmap path where the platform provides it
//! (and the owned-read fallback elsewhere), so this also pins the
//! zero-copy loads to the text baseline.

use focus_core::data::{LabeledTable, Schema, Table, TransactionSet, Value};
use focus_core::family::{ClusterFamily, DtFamily, LitsFamily};
use focus_core::model::{induce_dt_measures, ClusterModel};
use focus_core::region::BoxBuilder;
use focus_registry::{DeviationMatrix, MatrixParams, Registry, RegistryLayout, StorageFormat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus-storage-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn transactions(seed: u64, skew: f64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = TransactionSet::new(8);
    for _ in 0..250 {
        let t: Vec<u32> = (0..8u32)
            .filter(|&i| rng.gen::<f64>() < 0.15 + skew * (i as f64 / 8.0) * 0.4)
            .collect();
        ts.push(t);
    }
    ts
}

fn dt_snapshot(boundary: f64, rows: usize) -> (LabeledTable, focus_core::model::DtModel) {
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let mut d = LabeledTable::new(Arc::clone(&schema), 2);
    for r in 0..rows {
        let x = r as f64;
        d.push_row(&[Value::Num(x)], u32::from(x < boundary));
    }
    let model = induce_dt_measures(
        vec![
            BoxBuilder::new(&schema).lt("x", boundary).build(),
            BoxBuilder::new(&schema).ge("x", boundary).build(),
        ],
        &d,
    );
    (d, model)
}

fn cluster_snapshot(split: f64, rows: usize) -> (Table, ClusterModel) {
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let mut t = Table::new(Arc::clone(&schema));
    for r in 0..rows {
        t.push_row(&[Value::Num(r as f64)]);
    }
    let below = (0..rows).filter(|&r| (r as f64) < split).count() as f64 / rows as f64;
    let clusters = vec![
        BoxBuilder::new(&schema).lt("x", split).build(),
        BoxBuilder::new(&schema).ge("x", split).build(),
    ];
    (
        t,
        ClusterModel::new(clusters, vec![below, 1.0 - below], rows as u64),
    )
}

/// Fills a registry with the same three snapshots of every family.
fn populate(reg: &mut Registry) {
    for (name, seed, skew) in [("t-a", 1, 0.0), ("t-b", 2, 0.4), ("t-c", 3, 1.0)] {
        reg.add(name, &transactions(seed, skew), 0.15).unwrap();
    }
    for (name, boundary, rows) in [("d-a", 30.0, 120), ("d-b", 45.0, 150), ("d-c", 90.0, 150)] {
        let (d, m) = dt_snapshot(boundary, rows);
        reg.add_snapshot::<DtFamily>(name, &d, &m).unwrap();
    }
    for (name, split, rows) in [("c-a", 20.0, 100), ("c-b", 50.0, 100), ("c-c", 75.0, 120)] {
        let (d, m) = cluster_snapshot(split, rows);
        reg.add_snapshot::<ClusterFamily>(name, &d, &m).unwrap();
    }
}

fn assert_matrices_identical(label: &str, a: &DeviationMatrix, b: &DeviationMatrix) {
    assert_eq!(a.names(), b.names(), "{label}: names");
    assert_eq!(a.scanned(), b.scanned(), "{label}: scanned");
    assert_eq!(a.pruned(), b.pruned(), "{label}: pruned");
    for i in 0..a.len() {
        for j in 0..a.len() {
            assert_eq!(
                a.bound(i, j).to_bits(),
                b.bound(i, j).to_bits(),
                "{label}: bound({i},{j})"
            );
            assert_eq!(
                a.exact(i, j).map(f64::to_bits),
                b.exact(i, j).map(f64::to_bits),
                "{label}: exact({i},{j})"
            );
        }
    }
}

#[test]
fn binary_and_sharded_registries_match_text_bit_for_bit() {
    let layouts = [
        ("text", RegistryLayout::flat_text()),
        (
            "bin",
            RegistryLayout {
                shards: 0,
                format: StorageFormat::Binary,
            },
        ),
        (
            "bin-sharded",
            RegistryLayout {
                shards: 3,
                format: StorageFormat::Binary,
            },
        ),
    ];
    let mut regs = Vec::new();
    for (tag, layout) in layouts {
        let dir = scratch(tag);
        let mut reg = Registry::open_or_create_with(&dir, layout).unwrap();
        populate(&mut reg);
        // Reopen through the public entry point so the on-disk state —
        // not the in-memory handle — is what's compared.
        regs.push((tag, dir, Registry::open(scratch_path(tag)).unwrap()));
    }
    let (_, _, text) = &regs[0];

    // Loaded artifacts are bit-identical to the text baseline.
    for (tag, _, reg) in &regs[1..] {
        assert_eq!(reg.entries(), text.entries(), "{tag}: entries");
        for e in text.entries() {
            match e.kind {
                focus_registry::SnapshotKind::Lits => {
                    assert_eq!(
                        reg.load_snapshot_dataset::<LitsFamily>(&e.name).unwrap(),
                        text.load_snapshot_dataset::<LitsFamily>(&e.name).unwrap(),
                        "{tag}: {} dataset",
                        e.name
                    );
                    assert_eq!(
                        reg.load_snapshot_model::<LitsFamily>(&e.name).unwrap(),
                        text.load_snapshot_model::<LitsFamily>(&e.name).unwrap(),
                        "{tag}: {} model",
                        e.name
                    );
                }
                focus_registry::SnapshotKind::Dt => {
                    assert_eq!(
                        reg.load_snapshot_dataset::<DtFamily>(&e.name).unwrap(),
                        text.load_snapshot_dataset::<DtFamily>(&e.name).unwrap(),
                        "{tag}: {} dataset",
                        e.name
                    );
                    assert_eq!(
                        reg.load_snapshot_model::<DtFamily>(&e.name).unwrap(),
                        text.load_snapshot_model::<DtFamily>(&e.name).unwrap(),
                        "{tag}: {} model",
                        e.name
                    );
                }
                focus_registry::SnapshotKind::Cluster => {
                    assert_eq!(
                        reg.load_snapshot_dataset::<ClusterFamily>(&e.name).unwrap(),
                        text.load_snapshot_dataset::<ClusterFamily>(&e.name)
                            .unwrap(),
                        "{tag}: {} dataset",
                        e.name
                    );
                    assert_eq!(
                        reg.load_snapshot_model::<ClusterFamily>(&e.name).unwrap(),
                        text.load_snapshot_model::<ClusterFamily>(&e.name).unwrap(),
                        "{tag}: {} model",
                        e.name
                    );
                }
            }
        }
    }

    // Deviation matrices — unscreened and screened — are bit-identical
    // over every storage tier, for all three families.
    for params in [
        MatrixParams::default(),
        MatrixParams {
            threshold: 0.3,
            ..MatrixParams::default()
        },
    ] {
        let label = format!("threshold {}", params.threshold);
        let lits = text.matrix_of::<LitsFamily>(&params).unwrap();
        let dt = text.matrix_of::<DtFamily>(&params).unwrap();
        let clu = text.matrix_of::<ClusterFamily>(&params).unwrap();
        for (tag, _, reg) in &regs[1..] {
            assert_matrices_identical(
                &format!("{tag} lits {label}"),
                &reg.matrix_of::<LitsFamily>(&params).unwrap(),
                &lits,
            );
            assert_matrices_identical(
                &format!("{tag} dt {label}"),
                &reg.matrix_of::<DtFamily>(&params).unwrap(),
                &dt,
            );
            assert_matrices_identical(
                &format!("{tag} cluster {label}"),
                &reg.matrix_of::<ClusterFamily>(&params).unwrap(),
                &clu,
            );
        }
    }

    for (_, dir, _) in regs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// `scratch` without the delete-if-exists step, for reopening.
fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("focus-storage-{tag}-{}", std::process::id()))
}
