//! # focus-mining — Apriori frequent-itemset mining
//!
//! The lits-model substrate for FOCUS: a from-scratch implementation of the
//! Apriori algorithm (Agrawal & Srikant, VLDB 1994), which the paper uses to
//! compute the set of frequent itemsets from a transaction dataset.
//!
//! The miner produces a [`focus_core::model::LitsModel`] — the 2-component
//! model (itemsets + supports) that plugs directly into the FOCUS deviation
//! machinery.
//!
//! ```
//! use focus_core::data::TransactionSet;
//! use focus_mining::{Apriori, AprioriParams};
//!
//! let mut data = TransactionSet::new(3);
//! for _ in 0..8 { data.push(vec![0, 1]); }
//! data.push(vec![0, 2]);
//! data.push(vec![2]);
//!
//! let model = Apriori::new(AprioriParams::with_minsup(0.5)).mine(&data);
//! // {0}, {1}, {0,1} are frequent at 50%; {2} (20%) is not.
//! assert_eq!(model.len(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apriori;
pub mod condense;
pub mod hashtree;
pub mod rules;

pub use apriori::{Apriori, AprioriParams, CountBackend};
pub use condense::{closed_itemsets, maximal_itemsets};
pub use hashtree::HashTree;
pub use rules::{generate_rules, rule_set_deviation, Rule};
