//! The hash-tree candidate store of the original Apriori paper (Agrawal &
//! Srikant, VLDB 1994, Section 2.1.2) — an alternative support-counting
//! backend to the prefix-guided DFS in [`crate::apriori`].
//!
//! Interior nodes hash the next item of the probe; leaves hold candidate
//! itemsets and overflow into interior nodes once they exceed a capacity.
//! Counting a transaction walks the tree with the classical recursion:
//! at depth `d`, every remaining item is hashed and the walk continues, so
//! each candidate contained in the transaction is reached exactly once.
//!
//! Both backends are exposed so they can be parity-tested and benchmarked
//! against each other; the miner's public API uses the DFS backend, which
//! profiles faster on the paper's workloads, but the hash tree wins when
//! candidates are dense over few items.

use std::collections::HashMap;

/// A hash tree over fixed-length candidate itemsets.
#[derive(Debug, Clone)]
pub struct HashTree {
    root: HtNode,
    k: usize,
    n_candidates: usize,
}

#[derive(Debug, Clone)]
enum HtNode {
    Interior(HashMap<u32, HtNode>),
    /// Leaf: candidate itemsets with their indices into the count vector.
    Leaf(Vec<(Vec<u32>, usize)>),
}

/// Leaf capacity before conversion into an interior node.
const LEAF_CAP: usize = 8;

impl HashTree {
    /// Builds a hash tree over `candidates`, all of the same length `k`.
    /// Candidate order defines the index used in [`HashTree::count`].
    pub fn build(candidates: &[Vec<u32>], k: usize) -> Self {
        assert!(k >= 1);
        let mut root = HtNode::Leaf(Vec::new());
        for (i, c) in candidates.iter().enumerate() {
            assert_eq!(c.len(), k, "all candidates must have length k");
            insert(&mut root, c.clone(), i, 0, k);
        }
        Self {
            root,
            k,
            n_candidates: candidates.len(),
        }
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// True if no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Counts, over all transactions, how many contain each candidate.
    /// Returns counts indexed by the build-time candidate order.
    pub fn count<'a, I>(&self, transactions: I) -> Vec<u64>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut counts = vec![0u64; self.n_candidates];
        for txn in transactions {
            if txn.len() >= self.k {
                walk(&self.root, txn, 0, self.k, &mut counts);
            }
        }
        counts
    }
}

fn insert(node: &mut HtNode, cand: Vec<u32>, index: usize, depth: usize, k: usize) {
    match node {
        HtNode::Interior(map) => {
            let key = cand[depth];
            let child = map.entry(key).or_insert_with(|| HtNode::Leaf(Vec::new()));
            insert(child, cand, index, depth + 1, k);
        }
        HtNode::Leaf(items) => {
            items.push((cand, index));
            // Overflow: convert to interior, redistributing by the item at
            // this depth — unless we are at the maximum depth already.
            if items.len() > LEAF_CAP && depth < k {
                let drained = std::mem::take(items);
                let mut map: HashMap<u32, HtNode> = HashMap::new();
                for (c, i) in drained {
                    let key = c[depth];
                    let child = map.entry(key).or_insert_with(|| HtNode::Leaf(Vec::new()));
                    insert(child, c, i, depth + 1, k);
                }
                *node = HtNode::Interior(map);
            }
        }
    }
}

/// The classical counting walk: at an interior node, hash each remaining
/// item (leaving enough items to complete a k-itemset) and recurse; at a
/// leaf, subset-test every stored candidate.
fn walk(node: &HtNode, remaining: &[u32], matched: usize, k: usize, counts: &mut [u64]) {
    match node {
        HtNode::Leaf(items) => {
            for (cand, idx) in items {
                if is_suffix_subset(&cand[matched..], remaining) {
                    counts[*idx] += 1;
                }
            }
        }
        HtNode::Interior(map) => {
            let need = k - matched;
            for (pos, &item) in remaining.iter().enumerate() {
                if remaining.len() - pos < need {
                    break;
                }
                if let Some(child) = map.get(&item) {
                    walk(child, &remaining[pos + 1..], matched + 1, k, counts);
                }
            }
        }
    }
}

/// True if every item of the sorted `suffix` occurs in the sorted `items`.
fn is_suffix_subset(suffix: &[u32], items: &[u32]) -> bool {
    let mut j = 0;
    'outer: for &x in suffix {
        while j < items.len() {
            match items[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_small_example() {
        let candidates = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        let tree = HashTree::build(&candidates, 2);
        let txns: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        let counts = tree.count(txns.iter().map(|t| t.as_slice()));
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn empty_candidates() {
        let tree = HashTree::build(&[], 2);
        assert!(tree.is_empty());
        let txns: Vec<Vec<u32>> = vec![vec![0, 1]];
        assert!(tree.count(txns.iter().map(|t| t.as_slice())).is_empty());
    }

    #[test]
    fn short_transactions_are_skipped() {
        let tree = HashTree::build(&[vec![0, 1, 2]], 3);
        let txns: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1, 2]];
        let counts = tree.count(txns.iter().map(|t| t.as_slice()));
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn leaf_overflow_preserves_counts() {
        // More candidates than LEAF_CAP with a shared first item forces
        // interior conversion at depth 1.
        let candidates: Vec<Vec<u32>> = (1..=20u32).map(|b| vec![0, b]).collect();
        let tree = HashTree::build(&candidates, 2);
        let txn: Vec<u32> = (0..=20).collect();
        let counts = tree.count(std::iter::once(txn.as_slice()));
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn parity_with_dfs_backend_on_random_data() {
        // The hash tree and the miner's DFS counting must agree exactly.
        let mut rng = StdRng::seed_from_u64(99);
        let mut data = focus_core::data::TransactionSet::new(15);
        for _ in 0..300 {
            let t: Vec<u32> = (0..15).filter(|_| rng.gen::<f64>() < 0.35).collect();
            data.push(t);
        }
        let model = crate::Apriori::new(crate::AprioriParams::with_minsup(0.05)).mine(&data);
        // Re-count every frequent k-itemset level through the hash tree.
        let max_k = model.itemsets().iter().map(|s| s.len()).max().unwrap_or(0);
        for k in 1..=max_k {
            let level: Vec<Vec<u32>> = model
                .itemsets()
                .iter()
                .filter(|s| s.len() == k)
                .map(|s| s.items().to_vec())
                .collect();
            if level.is_empty() {
                continue;
            }
            let tree = HashTree::build(&level, k);
            let counts = tree.count(data.iter());
            for (cand, count) in level.iter().zip(counts) {
                let sup = count as f64 / data.len() as f64;
                let expected = model
                    .support_of(&focus_core::region::Itemset::from_slice(cand))
                    .unwrap();
                assert!(
                    (sup - expected).abs() < 1e-12,
                    "{cand:?}: hash-tree {sup} vs miner {expected}"
                );
            }
        }
    }

    #[test]
    fn each_candidate_counted_once_per_transaction() {
        // A transaction containing a candidate multiple "ways" (duplicates
        // are impossible in sorted sets, but the walk could over-count via
        // different hash paths) must count exactly once.
        let candidates = vec![vec![1, 2, 3]];
        let tree = HashTree::build(&candidates, 3);
        let txn = vec![0, 1, 2, 3, 4, 5];
        let counts = tree.count(std::iter::once(txn.as_slice()));
        assert_eq!(counts, vec![1]);
    }
}
