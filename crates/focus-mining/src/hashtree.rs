//! The hash-tree candidate store of the original Apriori paper (Agrawal &
//! Srikant, VLDB 1994, Section 2.1.2) — an alternative support-counting
//! backend to the prefix-guided DFS in [`crate::apriori`].
//!
//! Interior nodes hash the next item of the probe; leaves hold candidate
//! itemsets and overflow into interior nodes once they exceed a capacity.
//! Counting a transaction walks the tree with the classical recursion:
//! at depth `d`, every remaining item is hashed and the walk continues, so
//! each candidate contained in the transaction is reached exactly once.
//!
//! Both backends are exposed so they can be parity-tested and benchmarked
//! against each other; the miner's public API uses the DFS backend, which
//! profiles faster on the paper's workloads, but the hash tree wins when
//! candidates are dense over few items.

use focus_core::data::TransactionSet;
use focus_exec::{map_chunks, merge_counts, Parallelism};
use std::collections::HashMap;

/// A hash tree over fixed-length candidate itemsets.
#[derive(Debug, Clone)]
pub struct HashTree {
    root: HtNode,
    k: usize,
    n_candidates: usize,
}

#[derive(Debug, Clone)]
enum HtNode {
    Interior(HashMap<u32, HtNode>),
    /// Leaf: candidate itemsets with their indices into the count vector.
    Leaf(Vec<(Vec<u32>, usize)>),
}

/// Leaf capacity before conversion into an interior node.
const LEAF_CAP: usize = 8;

impl HashTree {
    /// Builds a hash tree over `candidates`, all of the same length `k`.
    /// Candidate order defines the index used in [`HashTree::count`].
    pub fn build(candidates: &[Vec<u32>], k: usize) -> Self {
        // An empty candidate level (Apriori can hit a dry level) builds a
        // trivial tree whose counts are the empty vector for any `k`,
        // including 0; only non-empty levels need a real length.
        assert!(
            k >= 1 || candidates.is_empty(),
            "non-empty candidate levels need k >= 1"
        );
        let mut root = HtNode::Leaf(Vec::new());
        for (i, c) in candidates.iter().enumerate() {
            assert_eq!(c.len(), k, "all candidates must have length k");
            insert(&mut root, c.clone(), i, 0, k);
        }
        Self {
            root,
            k,
            n_candidates: candidates.len(),
        }
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.n_candidates
    }

    /// True if no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.n_candidates == 0
    }

    /// Counts, over all transactions, how many contain each candidate.
    /// Returns counts indexed by the build-time candidate order.
    pub fn count<'a, I>(&self, transactions: I) -> Vec<u64>
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        let mut counts = vec![0u64; self.n_candidates];
        for txn in transactions {
            if txn.len() >= self.k {
                walk(&self.root, txn, 0, self.k, &mut counts);
            }
        }
        counts
    }

    /// [`HashTree::count`] over a [`TransactionSet`], with the transaction
    /// range fanned out over `par` worker threads. The tree is probed
    /// read-only; per-chunk counters merge by `u64` addition, so the counts
    /// are bit-identical to the sequential walk for every thread count.
    pub fn count_set(&self, data: &TransactionSet, par: Parallelism) -> Vec<u64> {
        let parts = map_chunks(par, data.len(), focus_exec::DEFAULT_GRAIN, |range| {
            let mut counts = vec![0u64; self.n_candidates];
            for t in range {
                let txn = data.get(t);
                if txn.len() >= self.k {
                    walk(&self.root, txn, 0, self.k, &mut counts);
                }
            }
            counts
        });
        if parts.is_empty() {
            return vec![0u64; self.n_candidates];
        }
        merge_counts(parts)
    }
}

fn insert(node: &mut HtNode, cand: Vec<u32>, index: usize, depth: usize, k: usize) {
    match node {
        HtNode::Interior(map) => {
            let key = cand[depth];
            let child = map.entry(key).or_insert_with(|| HtNode::Leaf(Vec::new()));
            insert(child, cand, index, depth + 1, k);
        }
        HtNode::Leaf(items) => {
            items.push((cand, index));
            // Overflow: convert to interior, redistributing by the item at
            // this depth — unless we are at the maximum depth already.
            if items.len() > LEAF_CAP && depth < k {
                let drained = std::mem::take(items);
                let mut map: HashMap<u32, HtNode> = HashMap::new();
                for (c, i) in drained {
                    let key = c[depth];
                    let child = map.entry(key).or_insert_with(|| HtNode::Leaf(Vec::new()));
                    insert(child, c, i, depth + 1, k);
                }
                *node = HtNode::Interior(map);
            }
        }
    }
}

/// The classical counting walk: at an interior node, hash each remaining
/// item (leaving enough items to complete a k-itemset) and recurse; at a
/// leaf, subset-test every stored candidate.
fn walk(node: &HtNode, remaining: &[u32], matched: usize, k: usize, counts: &mut [u64]) {
    match node {
        HtNode::Leaf(items) => {
            for (cand, idx) in items {
                if is_suffix_subset(&cand[matched..], remaining) {
                    counts[*idx] += 1;
                }
            }
        }
        HtNode::Interior(map) => {
            let need = k - matched;
            for (pos, &item) in remaining.iter().enumerate() {
                if remaining.len() - pos < need {
                    break;
                }
                if let Some(child) = map.get(&item) {
                    walk(child, &remaining[pos + 1..], matched + 1, k, counts);
                }
            }
        }
    }
}

/// True if every item of the sorted `suffix` occurs in the sorted `items`.
fn is_suffix_subset(suffix: &[u32], items: &[u32]) -> bool {
    let mut j = 0;
    'outer: for &x in suffix {
        while j < items.len() {
            match items[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counts_small_example() {
        let candidates = vec![vec![0, 1], vec![0, 2], vec![1, 2]];
        let tree = HashTree::build(&candidates, 2);
        let txns: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![0, 1], vec![2]];
        let counts = tree.count(txns.iter().map(|t| t.as_slice()));
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn empty_candidates() {
        let tree = HashTree::build(&[], 2);
        assert!(tree.is_empty());
        let txns: Vec<Vec<u32>> = vec![vec![0, 1]];
        assert!(tree.count(txns.iter().map(|t| t.as_slice())).is_empty());
    }

    #[test]
    fn dry_level_builds_trivial_tree_even_at_k_zero() {
        // A dry Apriori level may ask for k = 0 with no candidates; that
        // must build a trivial tree, not assert.
        let tree = HashTree::build(&[], 0);
        assert!(tree.is_empty());
        let txns: Vec<Vec<u32>> = vec![vec![0, 1], vec![]];
        assert!(tree.count(txns.iter().map(|t| t.as_slice())).is_empty());
        let mut data = focus_core::data::TransactionSet::new(3);
        data.push(vec![0, 1]);
        assert!(tree.count_set(&data, Parallelism::Sequential).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty candidate levels need k >= 1")]
    fn non_empty_level_still_requires_positive_k() {
        HashTree::build(&[vec![]], 0);
    }

    #[test]
    fn short_transactions_are_skipped() {
        let tree = HashTree::build(&[vec![0, 1, 2]], 3);
        let txns: Vec<Vec<u32>> = vec![vec![0, 1], vec![0, 1, 2]];
        let counts = tree.count(txns.iter().map(|t| t.as_slice()));
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn leaf_overflow_preserves_counts() {
        // More candidates than LEAF_CAP with a shared first item forces
        // interior conversion at depth 1.
        let candidates: Vec<Vec<u32>> = (1..=20u32).map(|b| vec![0, b]).collect();
        let tree = HashTree::build(&candidates, 2);
        let txn: Vec<u32> = (0..=20).collect();
        let counts = tree.count(std::iter::once(txn.as_slice()));
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn parity_with_dfs_backend_on_random_data() {
        // The hash tree and the miner's DFS counting must agree exactly.
        let mut rng = StdRng::seed_from_u64(99);
        let mut data = focus_core::data::TransactionSet::new(15);
        for _ in 0..300 {
            let t: Vec<u32> = (0..15).filter(|_| rng.gen::<f64>() < 0.35).collect();
            data.push(t);
        }
        let model = crate::Apriori::new(crate::AprioriParams::with_minsup(0.05)).mine(&data);
        // Re-count every frequent k-itemset level through the hash tree.
        let max_k = model.itemsets().iter().map(|s| s.len()).max().unwrap_or(0);
        for k in 1..=max_k {
            let level: Vec<Vec<u32>> = model
                .itemsets()
                .iter()
                .filter(|s| s.len() == k)
                .map(|s| s.items().to_vec())
                .collect();
            if level.is_empty() {
                continue;
            }
            let tree = HashTree::build(&level, k);
            let counts = tree.count(data.iter());
            for (cand, count) in level.iter().zip(counts) {
                let sup = count as f64 / data.len() as f64;
                let expected = model
                    .support_of(&focus_core::region::Itemset::from_slice(cand))
                    .unwrap();
                assert!(
                    (sup - expected).abs() < 1e-12,
                    "{cand:?}: hash-tree {sup} vs miner {expected}"
                );
            }
        }
    }

    /// Counts how many interior nodes the tree contains (0 ⇒ the root is
    /// still a single leaf).
    fn interior_nodes(node: &HtNode) -> usize {
        match node {
            HtNode::Leaf(_) => 0,
            HtNode::Interior(map) => 1 + map.values().map(interior_nodes).sum::<usize>(),
        }
    }

    /// Collects every stored `(candidate, index)` pair, depth-first.
    fn stored(node: &HtNode, out: &mut Vec<(Vec<u32>, usize)>) {
        match node {
            HtNode::Leaf(items) => out.extend(items.iter().cloned()),
            HtNode::Interior(map) => {
                for child in map.values() {
                    stored(child, out);
                }
            }
        }
    }

    #[test]
    fn insert_keeps_root_leaf_until_capacity() {
        // ≤ LEAF_CAP candidates: no splitting, everything in the root leaf.
        let candidates: Vec<Vec<u32>> = (0..LEAF_CAP as u32).map(|b| vec![b, b + 100]).collect();
        let tree = HashTree::build(&candidates, 2);
        assert_eq!(interior_nodes(&tree.root), 0);
        assert_eq!(tree.len(), LEAF_CAP);
        // One more insert forces the split.
        let candidates: Vec<Vec<u32>> = (0..=LEAF_CAP as u32).map(|b| vec![b, b + 100]).collect();
        let tree = HashTree::build(&candidates, 2);
        assert!(interior_nodes(&tree.root) >= 1);
    }

    #[test]
    fn bucket_split_preserves_every_candidate_and_index() {
        // Shared first item pushes the overflow one level down; shared first
        // two items push it down again — a chain of interior conversions.
        let mut candidates: Vec<Vec<u32>> = (0..12u32).map(|b| vec![0, 1, b + 2]).collect();
        candidates.extend((0..12u32).map(|b| vec![5, b + 6, b + 20]));
        let tree = HashTree::build(&candidates, 3);
        assert!(interior_nodes(&tree.root) >= 2, "nested splits expected");
        let mut kept = Vec::new();
        stored(&tree.root, &mut kept);
        kept.sort();
        let mut expected: Vec<(Vec<u32>, usize)> = candidates
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        expected.sort();
        assert_eq!(kept, expected, "splitting must not lose or re-index");
    }

    #[test]
    fn max_depth_leaf_absorbs_overflow_without_splitting() {
        // A leaf at depth k cannot split (there is no item left to hash
        // on). Only duplicate candidates can crowd such a leaf past
        // LEAF_CAP; the `depth < k` guard must leave it as a fat leaf
        // instead of recursing forever, and every copy still counts.
        let candidates: Vec<Vec<u32>> = vec![vec![3]; LEAF_CAP + 4];
        let tree = HashTree::build(&candidates, 1);
        let txn: Vec<u32> = vec![1, 3, 5];
        let counts = tree.count(std::iter::once(txn.as_slice()));
        assert_eq!(counts, vec![1; LEAF_CAP + 4]);
        // A transaction without the item matches no copy.
        let counts = tree.count(std::iter::once([1u32, 5].as_slice()));
        assert_eq!(counts, vec![0; LEAF_CAP + 4]);
    }

    /// Naive reference: for each candidate, test subset containment against
    /// every transaction directly.
    fn naive_counts(candidates: &[Vec<u32>], data: &focus_core::data::TransactionSet) -> Vec<u64> {
        candidates
            .iter()
            .map(|cand| {
                data.iter()
                    .filter(|txn| cand.iter().all(|it| txn.binary_search(it).is_ok()))
                    .count() as u64
            })
            .collect()
    }

    #[test]
    fn agrees_with_naive_subset_counting() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = focus_core::data::TransactionSet::new(20);
        for _ in 0..200 {
            let t: Vec<u32> = (0..20).filter(|_| rng.gen::<f64>() < 0.3).collect();
            data.push(t);
        }
        for k in 1..=3usize {
            // Random sorted candidates of length k (deduplicated).
            let mut candidates: Vec<Vec<u32>> = (0..40)
                .map(|_| {
                    let mut c: Vec<u32> = Vec::new();
                    while c.len() < k {
                        let item = rng.gen_range(0..20u32);
                        if !c.contains(&item) {
                            c.push(item);
                        }
                    }
                    c.sort_unstable();
                    c
                })
                .collect();
            candidates.sort();
            candidates.dedup();
            let tree = HashTree::build(&candidates, k);
            let got = tree.count(data.iter());
            assert_eq!(got, naive_counts(&candidates, &data), "k = {k}");
        }
    }

    #[test]
    fn count_set_matches_iterator_count_for_any_thread_count() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut data = focus_core::data::TransactionSet::new(12);
        for _ in 0..500 {
            let t: Vec<u32> = (0..12).filter(|_| rng.gen::<f64>() < 0.4).collect();
            data.push(t);
        }
        let candidates: Vec<Vec<u32>> = (0..11u32).map(|b| vec![b, b + 1]).collect();
        let tree = HashTree::build(&candidates, 2);
        let seq = tree.count(data.iter());
        for t in [1usize, 2, 4, 7] {
            let par = tree.count_set(&data, Parallelism::Threads(t));
            assert_eq!(par, seq, "threads = {t}");
        }
    }

    #[test]
    fn each_candidate_counted_once_per_transaction() {
        // A transaction containing a candidate multiple "ways" (duplicates
        // are impossible in sorted sets, but the walk could over-count via
        // different hash paths) must count exactly once.
        let candidates = vec![vec![1, 2, 3]];
        let tree = HashTree::build(&candidates, 3);
        let txn = vec![0, 1, 2, 3, 4, 5];
        let counts = tree.count(std::iter::once(txn.as_slice()));
        assert_eq!(counts, vec![1]);
    }
}
