//! The Apriori algorithm: level-wise frequent-itemset mining.
//!
//! Level `k` proceeds in three steps:
//! 1. **candidate generation** — join pairs of frequent `(k−1)`-itemsets
//!    sharing a `(k−2)`-prefix;
//! 2. **candidate pruning** — drop candidates with an infrequent
//!    `(k−1)`-subset (downward closure);
//! 3. **support counting** — one dataset scan; per transaction, enumerate
//!    exactly the candidate itemsets it contains by a depth-first walk that
//!    only extends prefixes of surviving candidates.
//!
//! The prefix-guided walk keeps counting polynomial in the number of
//! candidates rather than in `C(|t|, k)` — the practical trick that replaces
//! the original paper's hash tree.
//!
//! Step 3 is pluggable ([`CountBackend`]): the default prefix-guided DFS,
//! the classical hash tree of [`crate::hashtree`], Eclat-style vertical
//! tid-bitset intersection ([`focus_core::vertical`]) — one cached
//! `(k−1)`-prefix bitset per candidate run, one masked popcount per
//! extension — or [`CountBackend::Auto`], which consults the cost model of
//! [`focus_core::source`] once per level and switches to the vertical index
//! the first level the projected scan cost favours it (the index then
//! serves every later level). All backends produce identical `u64` counts,
//! hence identical mined models.

use crate::hashtree::HashTree;
use focus_core::data::TransactionSet;
use focus_core::model::LitsModel;
use focus_core::region::Itemset;
use focus_core::source::{choose_backend, global_index_budget, BackendChoice};
use focus_core::vertical::VerticalIndex;
use focus_exec::{map_chunks, map_indices, merge_counts, Parallelism};
use std::collections::{HashMap, HashSet};

/// Minimum transactions per worker chunk for the counting scans.
const SCAN_GRAIN: usize = focus_exec::DEFAULT_GRAIN;

/// Which support-counting backend the miner uses for candidate levels.
///
/// All backends count the same thing and are parity-tested to agree
/// exactly, so the mined model is backend-independent; they differ only in
/// cost shape. See the README's "counting backends" section for guidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CountBackend {
    /// Prefix-guided depth-first subset enumeration per transaction (the
    /// default; fastest on the paper's sparse market-basket workloads).
    #[default]
    Dfs,
    /// The hash tree of Agrawal & Srikant '94: wins when candidates are
    /// dense over few distinct items.
    HashTree,
    /// Eclat-style vertical tid-bitset intersection: wins when many
    /// candidates are counted over many transactions.
    Vertical,
    /// The vertical index with dEclat diffset rows for dense items
    /// ([`VerticalIndex::build_adaptive`]): same word fold, complement
    /// rows AND-NOT into it. Counts are identical to `Vertical`; the
    /// layout pays off on dense datasets.
    Diffset,
    /// Cost-model dispatch: each level asks
    /// [`focus_core::source::choose_backend`] whether the projected
    /// candidate workload amortises building the vertical index (within the
    /// process-wide index budget) — and, if so, whether the data is dense
    /// enough for the diffset-adaptive layout; until a build wins, levels
    /// count with the DFS. The decision depends only on data shape and
    /// workload — never thread count or timing — so the chosen backend
    /// sequence, and hence the mined model, is identical on every run.
    Auto,
}

impl CountBackend {
    /// The valid spellings, for CLI/diagnostic messages.
    pub const VALID_VALUES: &'static str = "dfs, hashtree, vertical, diffset or auto";

    /// Parses a user-facing backend name (`dfs`, `hashtree`/`hash-tree`,
    /// `vertical`, `diffset`, `auto`), case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "dfs" => Some(Self::Dfs),
            "hashtree" | "hash-tree" | "hash_tree" => Some(Self::HashTree),
            "vertical" => Some(Self::Vertical),
            "diffset" => Some(Self::Diffset),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// The canonical name [`Self::parse`] accepts.
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Dfs => "dfs",
            Self::HashTree => "hashtree",
            Self::Vertical => "vertical",
            Self::Diffset => "diffset",
            Self::Auto => "auto",
        }
    }
}

/// Tuning parameters for the miner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AprioriParams {
    /// Minimum support as a fraction of the number of transactions
    /// (the paper's `ms`, e.g. `0.01` for 1%).
    pub minsup: f64,
    /// Optional cap on itemset length (`None` = unbounded, the classical
    /// algorithm). Useful to bound exploratory runs.
    pub max_len: Option<usize>,
    /// Absolute floor on the supporting-transaction count (default 1, the
    /// classical semantics). On very small datasets a fractional threshold
    /// can collapse to "1 transaction suffices", at which point *every*
    /// subset of every transaction is frequent and the lattice explodes
    /// combinatorially; setting the floor to 2+ keeps tiny-sample runs
    /// (e.g. a 1% sample of an already-scaled-down dataset) well-posed.
    pub min_count_floor: u64,
    /// Worker threads for the support-counting scans (default
    /// [`Parallelism::Global`]). Mined models are bit-identical for every
    /// setting: per-chunk transaction counts merge by `u64` addition.
    pub parallelism: Parallelism,
    /// Support-counting backend for candidate levels (default
    /// [`CountBackend::Dfs`]). Mined models are backend-independent.
    pub backend: CountBackend,
}

impl AprioriParams {
    /// Parameters with the given minimum support and no length cap.
    pub fn with_minsup(minsup: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&minsup) && minsup > 0.0,
            "minsup must be in (0, 1], got {minsup}"
        );
        Self {
            minsup,
            max_len: None,
            min_count_floor: 1,
            parallelism: Parallelism::Global,
            backend: CountBackend::Dfs,
        }
    }

    /// Caps the maximum itemset length.
    pub fn max_len(mut self, len: usize) -> Self {
        assert!(len >= 1);
        self.max_len = Some(len);
        self
    }

    /// Sets the absolute supporting-count floor (see
    /// [`AprioriParams::min_count_floor`]).
    pub fn min_count_floor(mut self, floor: u64) -> Self {
        assert!(floor >= 1);
        self.min_count_floor = floor;
        self
    }

    /// Sets the worker-thread policy for the support-counting scans.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Sets the support-counting backend for candidate levels.
    pub fn backend(mut self, backend: CountBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// The Apriori miner.
#[derive(Debug, Clone)]
pub struct Apriori {
    params: AprioriParams,
}

impl Apriori {
    /// Creates a miner with the given parameters.
    pub fn new(params: AprioriParams) -> Self {
        Self { params }
    }

    /// Mines the frequent itemsets of `data` and returns them as a
    /// [`LitsModel`] (itemsets + supports + the mining threshold).
    pub fn mine(&self, data: &TransactionSet) -> LitsModel {
        let n = data.len();
        if n == 0 {
            return LitsModel::new(Vec::new(), Vec::new(), self.params.minsup, 0);
        }
        // ceil(minsup · n) supporting transactions required.
        let min_count = ((self.params.minsup * n as f64).ceil().max(1.0) as u64)
            .max(self.params.min_count_floor);

        let mut all_frequent: Vec<(Itemset, u64)> = Vec::new();

        // The vertical backends build their tid-bitset index once, up
        // front — all-tidset for `Vertical`, diffset-adaptive for
        // `Diffset` — and every level then counts by word-level
        // AND/ANDNOT + popcount against it. Auto defers the build (and
        // the layout choice) to the cost model inside the level loop.
        // The index budget is snapshotted once so a concurrent
        // `set_global_index_budget` cannot split one run's decisions.
        let budget = global_index_budget();
        let mut vindex = match self.params.backend {
            CountBackend::Vertical => Some(VerticalIndex::build(data)),
            CountBackend::Diffset => Some(VerticalIndex::build_adaptive(data)),
            _ => None,
        };

        // Level 1: per-item counts. Horizontal backends use a plain array
        // count over transaction chunks merged by addition; the vertical
        // backend popcounts each item's row. Both are exact `u64` tallies
        // of the same memberships, so the counts are identical.
        let item_counts = match &vindex {
            Some(idx) => map_indices(self.params.parallelism, data.n_items() as usize, |i| {
                idx.item_support(i as u32)
            }),
            None => merge_counts(map_chunks(
                self.params.parallelism,
                data.len(),
                SCAN_GRAIN,
                |range| {
                    let mut counts = vec![0u64; data.n_items() as usize];
                    for t in range {
                        for &it in data.get(t) {
                            counts[it as usize] += 1;
                        }
                    }
                    counts
                },
            )),
        };
        let mut frontier: Vec<Vec<u32>> = Vec::new();
        for (it, &c) in item_counts.iter().enumerate() {
            if c >= min_count {
                frontier.push(vec![it as u32]);
                all_frequent.push((Itemset::new(vec![it as u32]), c));
            }
        }

        let mut k = 2usize;
        while !frontier.is_empty() {
            if let Some(cap) = self.params.max_len {
                if k > cap {
                    break;
                }
            }
            let candidates = generate_candidates(&frontier);
            if candidates.is_empty() {
                break;
            }
            // Auto: build the index the first level whose candidate
            // workload amortises it; once built it serves every later
            // level (this loop is strictly sequential, so consulting the
            // already-built state stays deterministic).
            if self.params.backend == CountBackend::Auto && vindex.is_none() {
                match choose_backend(
                    candidates.len(),
                    candidates.len() * k,
                    n,
                    data.n_items(),
                    data.total_items(),
                    false,
                    budget,
                ) {
                    BackendChoice::Horizontal => {}
                    BackendChoice::Tidset => vindex = Some(VerticalIndex::build(data)),
                    BackendChoice::Diffset => vindex = Some(VerticalIndex::build_adaptive(data)),
                }
            }
            let counts = match &vindex {
                Some(idx) => {
                    count_candidates_vertical(idx, &candidates, k, self.params.parallelism)
                }
                None => match self.params.backend {
                    CountBackend::HashTree => {
                        HashTree::build(&candidates, k).count_set(data, self.params.parallelism)
                    }
                    _ => count_candidates(data, &candidates, k, self.params.parallelism),
                },
            };
            let mut next: Vec<Vec<u32>> = Vec::new();
            for (cand, count) in candidates.into_iter().zip(counts) {
                if count >= min_count {
                    all_frequent.push((Itemset::new(cand.clone()), count));
                    next.push(cand);
                }
            }
            frontier = next;
            k += 1;
        }

        let (itemsets, counts): (Vec<Itemset>, Vec<u64>) = all_frequent.into_iter().unzip();
        let supports = counts.iter().map(|&c| c as f64 / n as f64).collect();
        LitsModel::new(itemsets, supports, self.params.minsup, n as u64)
    }
}

/// Join + prune: candidates of size `k` from frequent itemsets of size
/// `k − 1` (all sorted item vectors).
fn generate_candidates(frequent: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let freq_set: HashSet<&[u32]> = frequent.iter().map(|v| v.as_slice()).collect();
    // Frequent itemsets are sorted lexicographically so prefix-sharing pairs
    // are adjacent runs.
    let mut sorted: Vec<&Vec<u32>> = frequent.iter().collect();
    sorted.sort();
    let mut out = Vec::new();
    let k1 = match sorted.first() {
        Some(v) => v.len(),
        None => return out,
    };
    let mut start = 0;
    while start < sorted.len() {
        // Run of itemsets sharing the first k1−1 items.
        let prefix = &sorted[start][..k1 - 1];
        let mut end = start + 1;
        while end < sorted.len() && &sorted[end][..k1 - 1] == prefix {
            end += 1;
        }
        for i in start..end {
            for j in (i + 1)..end {
                let mut cand = sorted[i].clone();
                cand.push(*sorted[j].last().expect("non-empty itemset"));
                // Downward-closure prune: every (k−1)-subset frequent.
                if all_subsets_frequent(&cand, &freq_set) {
                    out.push(cand);
                }
            }
        }
        start = end;
    }
    out.sort();
    out
}

/// True if every subset of `cand` missing one element is in `freq_set`.
fn all_subsets_frequent(cand: &[u32], freq_set: &HashSet<&[u32]>) -> bool {
    let mut sub: Vec<u32> = Vec::with_capacity(cand.len() - 1);
    for skip in 0..cand.len() {
        sub.clear();
        sub.extend(
            cand.iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x),
        );
        if !freq_set.contains(sub.as_slice()) {
            return false;
        }
    }
    true
}

/// One scan of the data, counting every candidate of size `k`, with the
/// transaction range fanned out over `par` worker threads.
///
/// For each transaction a DFS enumerates its subsets of size `k`, extending
/// a partial itemset only while it remains a prefix of some candidate. The
/// candidate index and prefix set are built once and shared read-only; each
/// chunk tallies into its own counter vector, merged by `u64` addition, so
/// the counts are bit-identical to a sequential scan.
fn count_candidates(
    data: &TransactionSet,
    candidates: &[Vec<u32>],
    k: usize,
    par: Parallelism,
) -> Vec<u64> {
    // Index of each full candidate, plus the set of all proper prefixes.
    let mut index: HashMap<&[u32], usize> = HashMap::with_capacity(candidates.len());
    let mut prefixes: HashSet<&[u32]> = HashSet::new();
    for (i, c) in candidates.iter().enumerate() {
        index.insert(c.as_slice(), i);
        for plen in 1..k {
            prefixes.insert(&c[..plen]);
        }
    }
    // Items that appear in at least one candidate: transactions are filtered
    // to these before enumeration.
    let active: HashSet<u32> = candidates.iter().flatten().copied().collect();

    let (index, prefixes, active) = (&index, &prefixes, &active);
    let parts = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        let mut counts = vec![0u64; candidates.len()];
        let mut filtered: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::with_capacity(k);
        for t in range {
            filtered.clear();
            filtered.extend(data.get(t).iter().copied().filter(|it| active.contains(it)));
            if filtered.len() < k {
                continue;
            }
            dfs_count(&filtered, k, &mut stack, index, prefixes, &mut counts);
        }
        counts
    });
    if parts.is_empty() {
        return vec![0u64; candidates.len()];
    }
    merge_counts(parts)
}

/// Vertical (Eclat-style) candidate counting against a prebuilt
/// [`VerticalIndex`]: candidates arrive sorted from the join, so runs
/// sharing a `(k−1)`-prefix are adjacent. Each run intersects its prefix
/// rows into a cached bitset once, then counts every extension with a
/// single masked popcount — `O(words)` per candidate instead of a
/// transaction walk.
///
/// Runs fan out over `par` worker threads in run order; every count is an
/// exact `u64` popcount, so the result is bit-identical to the sequential
/// fold (and to the other backends) for any thread count.
fn count_candidates_vertical(
    index: &VerticalIndex,
    candidates: &[Vec<u32>],
    k: usize,
    par: Parallelism,
) -> Vec<u64> {
    debug_assert!(k >= 2, "level-1 counts come from the item rows directly");
    let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    while start < candidates.len() {
        let prefix = &candidates[start][..k - 1];
        let mut end = start + 1;
        while end < candidates.len() && candidates[end][..k - 1] == *prefix {
            end += 1;
        }
        runs.push(start..end);
        start = end;
    }
    let per_run = map_indices(par, runs.len(), |r| {
        let run = runs[r].clone();
        let mut mask = Vec::new();
        // Prefix items are frequent items of the dataset, so they are
        // always inside the universe; a false here still counts 0 safely.
        let in_range = index.intersect_into(&candidates[run.start][..k - 1], &mut mask);
        run.map(|c| {
            let &last = candidates[c].last().expect("candidates have length k >= 2");
            if in_range {
                index.count_with_mask(&mask, last)
            } else {
                0
            }
        })
        .collect::<Vec<u64>>()
    });
    per_run.into_iter().flatten().collect()
}

fn dfs_count(
    items: &[u32],
    k: usize,
    stack: &mut Vec<u32>,
    index: &HashMap<&[u32], usize>,
    prefixes: &HashSet<&[u32]>,
    counts: &mut [u64],
) {
    let need = k - stack.len();
    if items.len() < need {
        return;
    }
    for (pos, &it) in items.iter().enumerate() {
        if items.len() - pos < need {
            break;
        }
        stack.push(it);
        if stack.len() == k {
            if let Some(&i) = index.get(stack.as_slice()) {
                counts[i] += 1;
            }
        } else if prefixes.contains(stack.as_slice()) {
            dfs_count(&items[pos + 1..], k, stack, index, prefixes, counts);
        }
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_core::model::count_itemsets;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn dataset(rows: &[&[u32]], n_items: u32) -> TransactionSet {
        let mut ts = TransactionSet::new(n_items);
        for r in rows {
            ts.push(r.to_vec());
        }
        ts
    }

    #[test]
    fn textbook_example() {
        // The classic Agrawal–Srikant toy dataset.
        let data = dataset(&[&[0, 2, 3], &[1, 2, 4], &[0, 1, 2, 4], &[1, 4]], 5);
        // minsup 50% → min_count 2.
        let m = Apriori::new(AprioriParams::with_minsup(0.5)).mine(&data);
        let expect = |items: &[u32], sup: f64| {
            let got = m
                .support_of(&Itemset::from_slice(items))
                .unwrap_or_else(|| panic!("{items:?} should be frequent"));
            assert!((got - sup).abs() < 1e-12, "{items:?}: {got} vs {sup}");
        };
        expect(&[0], 0.5);
        expect(&[1], 0.75);
        expect(&[2], 0.75);
        expect(&[4], 0.75);
        expect(&[0, 2], 0.5);
        expect(&[1, 2], 0.5);
        expect(&[1, 4], 0.75);
        expect(&[2, 4], 0.5);
        expect(&[1, 2, 4], 0.5);
        // {3} has support 0.25 — infrequent.
        assert!(m.support_of(&Itemset::from_slice(&[3])).is_none());
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn empty_dataset() {
        let data = TransactionSet::new(4);
        let m = Apriori::new(AprioriParams::with_minsup(0.1)).mine(&data);
        assert!(m.is_empty());
        assert_eq!(m.n_transactions(), 0);
    }

    #[test]
    fn minsup_one_keeps_only_universal_items() {
        let data = dataset(&[&[0, 1], &[0, 2], &[0]], 3);
        let m = Apriori::new(AprioriParams::with_minsup(1.0)).mine(&data);
        assert_eq!(m.len(), 1);
        assert_eq!(m.support_of(&Itemset::from_slice(&[0])), Some(1.0));
    }

    #[test]
    fn max_len_caps_levels() {
        let rows: Vec<&[u32]> = vec![&[0, 1, 2]; 10];
        let data = dataset(&rows, 3);
        let m = Apriori::new(AprioriParams::with_minsup(0.5).max_len(2)).mine(&data);
        // 3 singletons + 3 pairs, no triple.
        assert_eq!(m.len(), 6);
        assert!(m.support_of(&Itemset::from_slice(&[0, 1, 2])).is_none());
    }

    /// Exhaustive reference miner for small universes.
    fn brute_force(data: &TransactionSet, minsup: f64) -> Vec<(Itemset, f64)> {
        let n_items = data.n_items();
        assert!(n_items <= 16);
        let all: Vec<Itemset> = (1u32..(1 << n_items))
            .map(|mask| Itemset::new((0..n_items).filter(|i| mask & (1 << i) != 0).collect()))
            .collect();
        let counts = count_itemsets(data, &all);
        let n = data.len() as f64;
        let min_count = (minsup * n).ceil().max(1.0) as u64;
        let mut out: Vec<(Itemset, f64)> = all
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c >= min_count)
            .map(|(s, c)| (s, c as f64 / n))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn agrees_with_brute_force_on_random_data() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..10 {
            let mut data = TransactionSet::new(8);
            let n = 60 + trial * 10;
            for _ in 0..n {
                let mut t = Vec::new();
                for item in 0..8u32 {
                    // Skewed inclusion probabilities create multi-level
                    // frequent itemsets.
                    if rng.gen::<f64>() < 0.55 - item as f64 * 0.06 {
                        t.push(item);
                    }
                }
                data.push(t);
            }
            for minsup in [0.1, 0.25, 0.4] {
                let mined = Apriori::new(AprioriParams::with_minsup(minsup)).mine(&data);
                let reference = brute_force(&data, minsup);
                assert_eq!(
                    mined.len(),
                    reference.len(),
                    "trial {trial} minsup {minsup}: {} vs {}",
                    mined.len(),
                    reference.len()
                );
                for (s, sup) in &reference {
                    let got = mined.support_of(s).expect("missing frequent itemset");
                    assert!((got - sup).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn candidate_generation_joins_and_prunes() {
        // Frequent pairs: {0,1}, {0,2}, {1,2}, {1,3}.
        // Join on shared prefix: {0,1}+{0,2}→{0,1,2}; {1,2}+{1,3}→{1,2,3}.
        // {0,1,2} survives the prune ({0,1},{0,2},{1,2} all frequent);
        // {1,2,3} is pruned because {2,3} is not frequent.
        let frequent = vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![1, 3]];
        let cands = generate_candidates(&frequent);
        assert_eq!(cands, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn support_counts_match_core_counter() {
        // The DFS counter and focus-core's bitmap counter must agree.
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = TransactionSet::new(12);
        for _ in 0..200 {
            let t: Vec<u32> = (0..12).filter(|_| rng.gen::<f64>() < 0.3).collect();
            data.push(t);
        }
        let m = Apriori::new(AprioriParams::with_minsup(0.05)).mine(&data);
        let counts = count_itemsets(&data, m.itemsets());
        for (i, &c) in counts.iter().enumerate() {
            let sup = c as f64 / data.len() as f64;
            assert!(
                (sup - m.supports()[i]).abs() < 1e-12,
                "{}: {} vs {}",
                m.itemsets()[i],
                sup,
                m.supports()[i]
            );
        }
    }

    #[test]
    fn backends_mine_identical_models() {
        let mut rng = StdRng::seed_from_u64(314);
        for trial in 0..5 {
            let mut data = TransactionSet::new(14);
            for _ in 0..(150 + trial * 40) {
                let t: Vec<u32> = (0..14).filter(|_| rng.gen::<f64>() < 0.35).collect();
                data.push(t);
            }
            for minsup in [0.05, 0.2] {
                let base = AprioriParams::with_minsup(minsup).max_len(6);
                let reference = Apriori::new(base).mine(&data);
                for backend in [
                    CountBackend::HashTree,
                    CountBackend::Vertical,
                    CountBackend::Diffset,
                    CountBackend::Auto,
                ] {
                    let m = Apriori::new(base.backend(backend)).mine(&data);
                    assert_eq!(
                        m,
                        reference,
                        "trial {trial} minsup {minsup} backend {}",
                        backend.as_str()
                    );
                }
            }
        }
    }

    #[test]
    fn vertical_backend_on_empty_and_tiny_data() {
        let empty = TransactionSet::new(4);
        let params = AprioriParams::with_minsup(0.1).backend(CountBackend::Vertical);
        assert!(Apriori::new(params).mine(&empty).is_empty());

        let data = dataset(&[&[0, 2, 3], &[1, 2, 4], &[0, 1, 2, 4], &[1, 4]], 5);
        let vertical =
            Apriori::new(AprioriParams::with_minsup(0.5).backend(CountBackend::Vertical))
                .mine(&data);
        let dfs = Apriori::new(AprioriParams::with_minsup(0.5)).mine(&data);
        assert_eq!(vertical, dfs);
    }

    #[test]
    fn diffset_backend_matches_dfs_on_dense_data() {
        // Dense rows (≈ 3/4 fill) make most items cross the per-row 1/2
        // density threshold, so the adaptive index really holds diffset
        // rows — and the mined model must not move.
        let mut rng = StdRng::seed_from_u64(99);
        let mut data = TransactionSet::new(10);
        for _ in 0..300 {
            let t: Vec<u32> = (0..10).filter(|_| rng.gen::<f64>() < 0.75).collect();
            data.push(t);
        }
        let base = AprioriParams::with_minsup(0.3).max_len(6);
        let dfs = Apriori::new(base).mine(&data);
        let diffset = Apriori::new(base.backend(CountBackend::Diffset)).mine(&data);
        assert_eq!(diffset, dfs);
        assert!(!diffset.is_empty(), "dense data should mine itemsets");
    }

    #[test]
    fn count_backend_parsing() {
        assert_eq!(CountBackend::parse("dfs"), Some(CountBackend::Dfs));
        assert_eq!(CountBackend::parse("DFS"), Some(CountBackend::Dfs));
        assert_eq!(
            CountBackend::parse("hashtree"),
            Some(CountBackend::HashTree)
        );
        assert_eq!(
            CountBackend::parse("hash-tree"),
            Some(CountBackend::HashTree)
        );
        assert_eq!(
            CountBackend::parse("vertical"),
            Some(CountBackend::Vertical)
        );
        assert_eq!(CountBackend::parse("diffset"), Some(CountBackend::Diffset));
        assert_eq!(CountBackend::parse("auto"), Some(CountBackend::Auto));
        assert_eq!(CountBackend::parse("eclat?"), None);
        for b in [
            CountBackend::Dfs,
            CountBackend::HashTree,
            CountBackend::Vertical,
            CountBackend::Diffset,
            CountBackend::Auto,
        ] {
            assert_eq!(CountBackend::parse(b.as_str()), Some(b), "round-trip");
            assert!(
                CountBackend::VALID_VALUES.contains(b.as_str()),
                "{} missing from VALID_VALUES",
                b.as_str()
            );
        }
        assert_eq!(CountBackend::default(), CountBackend::Dfs);
    }

    #[test]
    fn auto_backend_on_empty_and_tiny_data() {
        let params = AprioriParams::with_minsup(0.1).backend(CountBackend::Auto);
        assert!(Apriori::new(params)
            .mine(&TransactionSet::new(4))
            .is_empty());

        let data = dataset(&[&[0, 2, 3], &[1, 2, 4], &[0, 1, 2, 4], &[1, 4]], 5);
        let auto =
            Apriori::new(AprioriParams::with_minsup(0.5).backend(CountBackend::Auto)).mine(&data);
        let dfs = Apriori::new(AprioriParams::with_minsup(0.5)).mine(&data);
        assert_eq!(auto, dfs);
    }

    #[test]
    #[should_panic(expected = "minsup must be in")]
    fn rejects_zero_minsup() {
        AprioriParams::with_minsup(0.0);
    }

    #[test]
    fn min_count_floor_prevents_tiny_sample_explosion() {
        // 20 transactions, minsup 1% → fractional threshold is below one
        // transaction. Without a floor every subset of every transaction is
        // frequent; with floor 3, only genuinely repeated itemsets survive.
        let mut data = TransactionSet::new(50);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let t: Vec<u32> = (0..50).filter(|_| rng.gen::<f64>() < 0.2).collect();
            data.push(t);
        }
        let floored = Apriori::new(
            AprioriParams::with_minsup(0.01)
                .max_len(10)
                .min_count_floor(3),
        )
        .mine(&data);
        // Everything kept is supported by at least 3 of 20 transactions.
        for &s in floored.supports() {
            assert!(s >= 3.0 / 20.0 - 1e-12);
        }
        // And the model stays small rather than exponential.
        assert!(floored.len() < 1000, "model size {}", floored.len());
    }
}
