//! Association-rule generation from a mined lits-model — the classical
//! second phase of Agrawal & Srikant's algorithm (VLDB 1994, Section 3).
//!
//! A rule `X ⇒ Y` (with `X ∩ Y = ∅`) holds with
//! *confidence* `support(X ∪ Y) / support(X)` and *support*
//! `support(X ∪ Y)`. Rules are generated from each frequent itemset by
//! moving subsets to the consequent, using the standard anti-monotonicity
//! of confidence in the consequent to prune.
//!
//! Rule sets are themselves 2-component models (structure = the rules,
//! measure = confidence), so they slot into FOCUS-style comparisons; see
//! [`rule_set_deviation`].

use focus_core::model::LitsModel;
use focus_core::region::Itemset;
use std::collections::HashMap;

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The antecedent `X`.
    pub antecedent: Itemset,
    /// The consequent `Y` (disjoint from `X`).
    pub consequent: Itemset,
    /// `support(X ∪ Y)`.
    pub support: f64,
    /// `support(X ∪ Y) / support(X)`.
    pub confidence: f64,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ⇒ {} (sup {:.3}, conf {:.3})",
            self.antecedent, self.consequent, self.support, self.confidence
        )
    }
}

/// Generates all rules with confidence at least `min_confidence` from the
/// frequent itemsets of `model`.
///
/// For each frequent itemset `Z` with `|Z| ≥ 2`, consequents grow from
/// single items; a consequent that fails the confidence bar prunes all of
/// its supersets (confidence is anti-monotone in the consequent because
/// `support(antecedent)` grows as the antecedent shrinks... precisely:
/// moving more items to the consequent can only lower confidence).
pub fn generate_rules(model: &LitsModel, min_confidence: f64) -> Vec<Rule> {
    assert!((0.0..=1.0).contains(&min_confidence));
    let mut out = Vec::new();
    for (z, &sup_z) in model.itemsets().iter().zip(model.supports()) {
        if z.len() < 2 {
            continue;
        }
        // Start from 1-item consequents.
        let mut consequents: Vec<Itemset> =
            z.items().iter().map(|&i| Itemset::new(vec![i])).collect();
        while !consequents.is_empty() {
            let mut kept: Vec<Itemset> = Vec::new();
            for y in &consequents {
                if y.len() >= z.len() {
                    continue;
                }
                let x: Itemset = z
                    .items()
                    .iter()
                    .copied()
                    .filter(|i| !y.contains(*i))
                    .collect();
                let Some(sup_x) = model.support_of(&x) else {
                    // The antecedent must be frequent (it is a subset of a
                    // frequent itemset), but a length-capped mine may have
                    // dropped it; skip conservatively.
                    continue;
                };
                let confidence = if sup_x > 0.0 { sup_z / sup_x } else { 0.0 };
                if confidence >= min_confidence {
                    out.push(Rule {
                        antecedent: x,
                        consequent: y.clone(),
                        support: sup_z,
                        confidence,
                    });
                    kept.push(y.clone());
                }
            }
            // Grow consequents by the Apriori join over the survivors.
            consequents = join_level(&kept, z);
        }
    }
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap()
            .then_with(|| b.support.partial_cmp(&a.support).unwrap())
    });
    out
}

/// Joins same-length consequents sharing all but their last item, keeping
/// only candidates inside `z`.
fn join_level(level: &[Itemset], z: &Itemset) -> Vec<Itemset> {
    let mut next = Vec::new();
    for (i, a) in level.iter().enumerate() {
        for b in level.iter().skip(i + 1) {
            let u = a.union(b);
            if u.len() == a.len() + 1 && u.is_subset_of_sorted(z.items()) {
                next.push(u);
            }
        }
    }
    next.sort();
    next.dedup();
    next
}

/// Deviation between two rule sets as a FOCUS-style 2-component comparison:
/// structure = the union of the rules (as (antecedent, consequent) pairs),
/// measure = confidence (0 where a rule's antecedent/union is not known to
/// the model), aggregated with a sum of absolute differences.
///
/// This extends the paper's framework to rule models — the structural
/// component refines exactly as lits-models do (union).
pub fn rule_set_deviation(a: &[Rule], b: &[Rule]) -> f64 {
    let key = |r: &Rule| (r.antecedent.clone(), r.consequent.clone());
    let map_a: HashMap<_, f64> = a.iter().map(|r| (key(r), r.confidence)).collect();
    let map_b: HashMap<_, f64> = b.iter().map(|r| (key(r), r.confidence)).collect();
    let mut keys: Vec<_> = map_a.keys().chain(map_b.keys()).cloned().collect();
    keys.sort();
    keys.dedup();
    keys.iter()
        .map(|k| {
            let ca = map_a.get(k).copied().unwrap_or(0.0);
            let cb = map_b.get(k).copied().unwrap_or(0.0);
            (ca - cb).abs()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriParams};
    use focus_core::data::TransactionSet;

    fn toy_model() -> LitsModel {
        // 10 transactions: {0,1} ×8, {0} ×1, {1,2} ×1.
        let mut data = TransactionSet::new(3);
        for _ in 0..8 {
            data.push(vec![0, 1]);
        }
        data.push(vec![0]);
        data.push(vec![1, 2]);
        Apriori::new(AprioriParams::with_minsup(0.1)).mine(&data)
    }

    #[test]
    fn confidences_are_exact() {
        let model = toy_model();
        let rules = generate_rules(&model, 0.0);
        let find = |x: &[u32], y: &[u32]| {
            rules
                .iter()
                .find(|r| {
                    r.antecedent == Itemset::from_slice(x) && r.consequent == Itemset::from_slice(y)
                })
                .unwrap_or_else(|| panic!("missing rule {x:?} => {y:?}"))
        };
        // support({0,1}) = 0.8; support({0}) = 0.9; support({1}) = 0.9.
        let r01 = find(&[0], &[1]);
        assert!((r01.confidence - 0.8 / 0.9).abs() < 1e-12);
        let r10 = find(&[1], &[0]);
        assert!((r10.confidence - 0.8 / 0.9).abs() < 1e-12);
        // support({1,2}) = 0.1: rule 2 ⇒ 1 has confidence 1.0.
        let r21 = find(&[2], &[1]);
        assert!((r21.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let model = toy_model();
        let all = generate_rules(&model, 0.0);
        let strict = generate_rules(&model, 0.95);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.95));
        // 2 ⇒ 1 (confidence 1.0) survives.
        assert!(strict
            .iter()
            .any(|r| r.antecedent == Itemset::from_slice(&[2])));
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let model = toy_model();
        let rules = generate_rules(&model, 0.0);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn antecedent_and_consequent_are_disjoint_and_cover() {
        let model = toy_model();
        for r in generate_rules(&model, 0.0) {
            assert!(r.antecedent.intersection(&r.consequent).is_empty());
            let u = r.antecedent.union(&r.consequent);
            assert!(model.support_of(&u).is_some(), "union must be frequent");
        }
    }

    #[test]
    fn multi_item_consequents_from_triples() {
        // All transactions identical {0,1,2}: every rule has confidence 1,
        // including 0 ⇒ {1,2}.
        let mut data = TransactionSet::new(3);
        for _ in 0..10 {
            data.push(vec![0, 1, 2]);
        }
        let model = Apriori::new(AprioriParams::with_minsup(0.5)).mine(&data);
        let rules = generate_rules(&model, 0.9);
        assert!(rules.iter().any(|r| r.consequent.len() == 2));
        assert!(rules.iter().all(|r| (r.confidence - 1.0).abs() < 1e-12));
    }

    #[test]
    fn rule_set_deviation_basics() {
        let model = toy_model();
        let rules = generate_rules(&model, 0.0);
        assert_eq!(rule_set_deviation(&rules, &rules), 0.0);
        // Removing one rule shifts the deviation by its confidence.
        let fewer = &rules[1..];
        let dev = rule_set_deviation(&rules, fewer);
        assert!((dev - rules[0].confidence).abs() < 1e-12);
    }
}
