//! Condensed representations: closed and maximal frequent itemsets.
//!
//! A frequent itemset is **closed** when no proper superset has the same
//! support, and **maximal** when no proper superset is frequent at all.
//! Both are standard lossless/lossy condensations of a lits-model's
//! structural component. In FOCUS terms they trade structure for speed:
//! a deviation computed over the closed sets needs fewer GCR regions (the
//! non-closed itemsets' measures are implied), while the maximal sets give
//! the coarsest structure that still witnesses every frequent region.

use focus_core::model::LitsModel;
use focus_core::region::Itemset;

/// Extracts the **closed** frequent itemsets of a model: itemsets with no
/// frequent proper superset of equal support. Returns a new model over the
/// condensed structure (same minsup and dataset size).
pub fn closed_itemsets(model: &LitsModel) -> LitsModel {
    let keep = filter_model(model, |s, sup, model| {
        !has_superset_with(model, s, |other_sup| (other_sup - sup).abs() < 1e-12)
    });
    rebuild(model, keep)
}

/// Extracts the **maximal** frequent itemsets: itemsets with no frequent
/// proper superset at all.
pub fn maximal_itemsets(model: &LitsModel) -> LitsModel {
    let keep = filter_model(model, |s, _sup, model| {
        !has_superset_with(model, s, |_| true)
    });
    rebuild(model, keep)
}

fn filter_model(
    model: &LitsModel,
    mut predicate: impl FnMut(&Itemset, f64, &LitsModel) -> bool,
) -> Vec<usize> {
    model
        .itemsets()
        .iter()
        .zip(model.supports())
        .enumerate()
        .filter(|(_, (s, &sup))| predicate(s, sup, model))
        .map(|(i, _)| i)
        .collect()
}

/// True if the model contains a *proper* superset of `s` whose support
/// satisfies `cond`.
fn has_superset_with(model: &LitsModel, s: &Itemset, mut cond: impl FnMut(f64) -> bool) -> bool {
    model
        .itemsets()
        .iter()
        .zip(model.supports())
        .any(|(other, &sup)| {
            other.len() > s.len() && s.is_subset_of_sorted(other.items()) && cond(sup)
        })
}

fn rebuild(model: &LitsModel, keep: Vec<usize>) -> LitsModel {
    let itemsets = keep.iter().map(|&i| model.itemsets()[i].clone()).collect();
    let supports = keep.iter().map(|&i| model.supports()[i]).collect();
    LitsModel::new(itemsets, supports, model.minsup(), model.n_transactions())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Apriori, AprioriParams};
    use focus_core::data::TransactionSet;

    /// 10 transactions: {0,1,2} ×6, {0,1} ×2, {0} ×2.
    /// Supports: {0}=1.0, {1}=.8, {2}=.6, {0,1}=.8, {0,2}=.6, {1,2}=.6,
    /// {0,1,2}=.6.
    fn model() -> LitsModel {
        let mut d = TransactionSet::new(3);
        for _ in 0..6 {
            d.push(vec![0, 1, 2]);
        }
        for _ in 0..2 {
            d.push(vec![0, 1]);
        }
        for _ in 0..2 {
            d.push(vec![0]);
        }
        Apriori::new(AprioriParams::with_minsup(0.5)).mine(&d)
    }

    #[test]
    fn closed_sets_of_the_textbook_example() {
        let m = model();
        assert_eq!(m.len(), 7);
        let closed = closed_itemsets(&m);
        // {1} (=.8) is absorbed by {0,1} (=.8); {2},{0,2},{1,2} (=.6) are
        // absorbed by {0,1,2} (=.6). Closed: {0}, {0,1}, {0,1,2}.
        let names: Vec<String> = closed.itemsets().iter().map(|s| s.to_string()).collect();
        assert_eq!(names, vec!["{0}", "{0,1}", "{0,1,2}"]);
    }

    #[test]
    fn maximal_sets_are_the_top_of_the_lattice() {
        let m = model();
        let maximal = maximal_itemsets(&m);
        assert_eq!(maximal.len(), 1);
        assert_eq!(maximal.itemsets()[0].to_string(), "{0,1,2}");
    }

    #[test]
    fn maximal_subset_of_closed_subset_of_all() {
        let m = model();
        let closed = closed_itemsets(&m);
        let maximal = maximal_itemsets(&m);
        assert!(maximal.len() <= closed.len());
        assert!(closed.len() <= m.len());
        for s in maximal.itemsets() {
            assert!(closed.support_of(s).is_some(), "maximal ⊆ closed");
        }
        for s in closed.itemsets() {
            assert_eq!(m.support_of(s), closed.support_of(s), "supports preserved");
        }
    }

    #[test]
    fn closure_is_lossless_for_support_queries() {
        // Every frequent itemset's support equals the minimum support of
        // its closed supersets — the classical recovery rule.
        let m = model();
        let closed = closed_itemsets(&m);
        for (s, &sup) in m.itemsets().iter().zip(m.supports()) {
            let recovered = closed
                .itemsets()
                .iter()
                .zip(closed.supports())
                .filter(|(c, _)| s.is_subset_of_sorted(c.items()))
                .map(|(_, &cs)| cs)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((recovered - sup).abs() < 1e-12, "{s}: {recovered} vs {sup}");
        }
    }

    #[test]
    fn empty_model_passes_through() {
        let empty = LitsModel::new(Vec::new(), Vec::new(), 0.1, 0);
        assert!(closed_itemsets(&empty).is_empty());
        assert!(maximal_itemsets(&empty).is_empty());
    }
}
