//! End-to-end smoke test: drives the `focus-cli` binary through the full
//! lits pipeline (generate → mine → deviate → bound → qualify) and the dt
//! pipeline (generate → deviate-dt) on tiny datasets, asserting each step
//! exits 0 and emits a well-formed report.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_focus-cli")
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("failed to spawn focus-cli");
    assert!(
        out.status.success(),
        "focus-cli {:?} failed with {}\nstdout: {}\nstderr: {}",
        args,
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is not UTF-8")
}

/// Fresh scratch directory under the target-provided temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus-cli-smoke-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(p: &Path) -> &str {
    p.to_str().expect("non-UTF-8 temp path")
}

#[test]
fn lits_pipeline_end_to_end() {
    let dir = scratch("lits");
    let d1 = dir.join("d1.txt");
    let d2 = dir.join("d2.txt");
    let m1 = dir.join("m1.model");
    let m2 = dir.join("m2.model");

    // Two small datasets from the same generating process, different seeds.
    run(&[
        "gen-assoc",
        "--out",
        path_str(&d1),
        "--n",
        "400",
        "--pats",
        "50",
        "--patlen",
        "3",
        "--pattern-seed",
        "1",
        "--seed",
        "2",
    ]);
    run(&[
        "gen-assoc",
        "--out",
        path_str(&d2),
        "--n",
        "400",
        "--pats",
        "50",
        "--patlen",
        "3",
        "--pattern-seed",
        "1",
        "--seed",
        "3",
    ]);
    assert!(d1.exists() && d2.exists(), "generated datasets must exist");

    // Mine both into model files.
    run(&[
        "mine",
        "--data",
        path_str(&d1),
        "--minsup",
        "0.05",
        "--out",
        path_str(&m1),
    ]);
    run(&[
        "mine",
        "--data",
        path_str(&d2),
        "--minsup",
        "0.05",
        "--out",
        path_str(&m2),
    ]);

    // Exact deviation: stdout is a single non-negative finite number.
    let dev_out = run(&[
        "deviate",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--minsup",
        "0.05",
    ]);
    let dev: f64 = stdout(&dev_out)
        .trim()
        .parse()
        .expect("deviate must print a number");
    assert!(dev.is_finite() && dev >= 0.0, "deviation {dev}");

    // Upper bound from the persisted models dominates the exact deviation.
    let bound_out = run(&["bound", "--m1", path_str(&m1), "--m2", path_str(&m2)]);
    let bound: f64 = stdout(&bound_out)
        .trim()
        .parse()
        .expect("bound must print a number");
    assert!(bound >= dev - 1e-9, "δ* = {bound} must dominate δ = {dev}");

    // Qualify: a well-formed deviation report with a significance percentage.
    let qual_out = run(&[
        "qualify",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--minsup",
        "0.05",
        "--reps",
        "19",
        "--seed",
        "7",
    ]);
    let report = stdout(&qual_out);
    assert!(
        report.contains("deviation") && report.contains("significance"),
        "malformed report: {report:?}"
    );
    let sig: f64 = report
        .split_whitespace()
        .last()
        .unwrap()
        .trim_end_matches('%')
        .parse()
        .expect("significance must be a percentage");
    assert!((0.0..=100.0).contains(&sig), "significance {sig}");

    // Deterministic: the same invocation prints the same deviation.
    let dev_out2 = run(&[
        "deviate",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--minsup",
        "0.05",
    ]);
    assert_eq!(stdout(&dev_out), stdout(&dev_out2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dt_pipeline_end_to_end() {
    let dir = scratch("dt");
    let d1 = dir.join("d1.tbl");
    let d2 = dir.join("d2.tbl");

    // Same Agrawal function, different seeds — a small honest drift test.
    run(&[
        "gen-class",
        "--out",
        path_str(&d1),
        "--n",
        "500",
        "--function",
        "F2",
        "--seed",
        "1",
    ]);
    run(&[
        "gen-class",
        "--out",
        path_str(&d2),
        "--n",
        "500",
        "--function",
        "F2",
        "--seed",
        "2",
    ]);

    // Fit a tree on one dataset; just a structural sanity check.
    run(&[
        "tree",
        "--data",
        path_str(&d1),
        "--max-depth",
        "4",
        "--min-leaf",
        "20",
    ]);

    let out = run(&[
        "deviate-dt",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--max-depth",
        "4",
        "--min-leaf",
        "20",
    ]);
    let dev: f64 = stdout(&out)
        .trim()
        .parse()
        .expect("deviate-dt must print a number");
    assert!(dev.is_finite() && dev >= 0.0, "dt deviation {dev}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_sharded_registry_matrix_matches_text() {
    let dir = scratch("registry-bin");
    let d1 = dir.join("d1.txt");
    let d2 = dir.join("d2.txt");
    for (out, seed) in [(&d1, "2"), (&d2, "9")] {
        run(&[
            "gen-assoc",
            "--out",
            path_str(out),
            "--n",
            "300",
            "--pats",
            "40",
            "--patlen",
            "3",
            "--pattern-seed",
            "1",
            "--seed",
            seed,
        ]);
    }

    // The same snapshots into a classic text registry and a sharded
    // binary one.
    let reg_text = dir.join("reg-text");
    let reg_bin = dir.join("reg-bin");
    for (reg, extra) in [
        (&reg_text, &[][..]),
        (&reg_bin, &["--format", "bin", "--shards", "2"][..]),
    ] {
        for (data, name) in [(&d1, "day-01"), (&d2, "day-02")] {
            let mut args = vec![
                "registry-add",
                "--dir",
                path_str(reg),
                "--data",
                path_str(data),
                "--name",
                name,
                "--minsup",
                "0.05",
            ];
            args.extend_from_slice(extra);
            run(&args);
        }
    }
    // The binary registry's artifacts live in shard directories as .bin
    // files; nothing readable as text sits in the root.
    assert!(reg_bin.join("registry.layout").exists());
    assert!(reg_bin.join("shard-000").is_dir() && reg_bin.join("shard-001").is_dir());

    // The matrix over both registries is byte-identical on stdout.
    let matrix_args = |reg: &Path| {
        let r = path_str(reg).to_string();
        ["matrix", "--dir"]
            .into_iter()
            .map(String::from)
            .chain([r])
            .collect::<Vec<_>>()
    };
    let text_out = run(&matrix_args(&reg_text)
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>());
    let bin_out = run(&matrix_args(&reg_bin)
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>());
    assert_eq!(stdout(&text_out), stdout(&bin_out));
    assert!(stdout(&text_out).contains("pairs 1"));

    // Asking an existing registry for a different layout is refused.
    let clash = Command::new(bin())
        .args([
            "registry-add",
            "--dir",
            path_str(&reg_bin),
            "--data",
            path_str(&d1),
            "--name",
            "day-03",
            "--format",
            "text",
        ])
        .output()
        .expect("failed to spawn focus-cli");
    assert!(!clash.status.success(), "layout mismatch must fail");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_lists_all_commands() {
    let out = run(&["help"]);
    let text = stdout(&out);
    for cmd in [
        "gen-assoc",
        "gen-class",
        "mine",
        "deviate",
        "bound",
        "qualify",
        "tree",
        "deviate-dt",
    ] {
        assert!(text.contains(cmd), "usage must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_nonzero() {
    let out = Command::new(bin())
        .arg("no-such-command")
        .output()
        .expect("failed to spawn focus-cli");
    assert!(!out.status.success());
}
