//! Golden-output snapshot tests for the focus-cli subcommands.
//!
//! The smoke suite checks that the pipelines *run*; this suite pins down
//! exactly **what they report**. Every deviation, bound, significance
//! percentage, mined support and rendered tree is compared verbatim
//! against a checked-in snapshot, so a refactor that silently changes a
//! reported number — a reordered float fold, a perturbed RNG stream, an
//! off-by-one in a scan — fails here even if every structural invariant
//! still holds.
//!
//! The snapshots also double as an end-to-end witness of the determinism
//! contract: CI runs this suite under `FOCUS_THREADS ∈ {1, 4}`, and the
//! same bytes must come out either way.
//!
//! To regenerate after an *intentional* output change:
//! `UPDATE_GOLDEN=1 cargo test -p focus-cli --test golden`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_focus-cli")
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("failed to spawn focus-cli");
    assert!(
        out.status.success(),
        "focus-cli {:?} failed with {}\nstdout: {}\nstderr: {}",
        args,
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is not UTF-8")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus-cli-golden-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(p: &Path) -> &str {
    p.to_str().expect("non-UTF-8 temp path")
}

/// Compares `got` against the snapshot at `tests/golden/<name>.txt`,
/// or rewrites the snapshot when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        got, want,
        "snapshot {name} diverged; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// The full lits pipeline — gen → mine → deviate → bound → qualify — with
/// every reported number snapshotted.
#[test]
fn lits_pipeline_golden() {
    let dir = scratch("lits");
    let d1 = dir.join("d1.txt");
    let d2 = dir.join("d2.txt");
    let m1 = dir.join("m1.model");
    let m2 = dir.join("m2.model");

    for (out, seed) in [(&d1, "2"), (&d2, "3")] {
        run(&[
            "gen-assoc",
            "--out",
            path_str(out),
            "--n",
            "400",
            "--pats",
            "50",
            "--patlen",
            "3",
            "--pattern-seed",
            "1",
            "--seed",
            seed,
        ]);
    }

    // `mine` without --out prints the top itemsets with their supports.
    let mined = run(&["mine", "--data", path_str(&d1), "--minsup", "0.05"]);
    assert_golden("mine_top_itemsets", &stdout(&mined));

    // Persist both models for `bound`.
    for (d, m) in [(&d1, &m1), (&d2, &m2)] {
        run(&[
            "mine",
            "--data",
            path_str(d),
            "--minsup",
            "0.05",
            "--out",
            path_str(m),
        ]);
    }

    for (name, f, g) in [
        ("deviate_fa_sum", "fa", "sum"),
        ("deviate_fa_max", "fa", "max"),
        ("deviate_fs_sum", "fs", "sum"),
    ] {
        let dev = run(&[
            "deviate",
            "--d1",
            path_str(&d1),
            "--d2",
            path_str(&d2),
            "--minsup",
            "0.05",
            "--f",
            f,
            "--g",
            g,
        ]);
        assert_golden(name, &stdout(&dev));
    }

    let bound = run(&["bound", "--m1", path_str(&m1), "--m2", path_str(&m2)]);
    assert_golden("bound_fa_sum", &stdout(&bound));

    let qual = run(&[
        "qualify",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--minsup",
        "0.05",
        "--reps",
        "19",
        "--seed",
        "7",
    ]);
    assert_golden("qualify", &stdout(&qual));

    std::fs::remove_dir_all(&dir).ok();
}

/// The dt pipeline — gen-class → tree → deviate-dt — with the rendered
/// tree and the reported deviation snapshotted.
#[test]
fn dt_pipeline_golden() {
    let dir = scratch("dt");
    let d1 = dir.join("d1.tbl");
    let d2 = dir.join("d2.tbl");

    for (out, seed) in [(&d1, "1"), (&d2, "2")] {
        run(&[
            "gen-class",
            "--out",
            path_str(out),
            "--n",
            "500",
            "--function",
            "F2",
            "--seed",
            seed,
        ]);
    }

    // `tree --render` prints the fitted tree structure to stdout: exact
    // split attributes and thresholds, leaf counts and predictions.
    let tree = run(&[
        "tree",
        "--data",
        path_str(&d1),
        "--max-depth",
        "4",
        "--min-leaf",
        "20",
        "--render",
    ]);
    assert_golden("tree_render", &stdout(&tree));

    let dev = run(&[
        "deviate-dt",
        "--d1",
        path_str(&d1),
        "--d2",
        path_str(&d2),
        "--max-depth",
        "4",
        "--min-leaf",
        "20",
    ]);
    assert_golden("deviate_dt", &stdout(&dev));

    std::fs::remove_dir_all(&dir).ok();
}

/// The registry workflow — registry-add × 4 → matrix (δ*-screened) →
/// embed — with the full matrix report and the MDS coordinates
/// snapshotted, and the matrix output swept across thread counts.
///
/// The four snapshots form two families (pattern seeds 1 and 9): the two
/// intra-family pairs have δ* bounds far below the inter-family pairs, so
/// `--threshold 500` must prune exactly those two exact scans.
#[test]
fn registry_pipeline_golden() {
    let dir = scratch("registry");
    let reg = dir.join("reg");

    for (name, pattern_seed, seed) in [
        ("snap-a", "1", "2"),
        ("snap-b", "1", "3"),
        ("snap-c", "9", "4"),
        ("snap-d", "9", "5"),
    ] {
        let data = dir.join(format!("{name}.txt"));
        run(&[
            "gen-assoc",
            "--out",
            path_str(&data),
            "--n",
            "400",
            "--pats",
            "50",
            "--patlen",
            "3",
            "--pattern-seed",
            pattern_seed,
            "--seed",
            seed,
        ]);
        run(&[
            "registry-add",
            "--dir",
            path_str(&reg),
            "--data",
            path_str(&data),
            "--name",
            name,
            "--minsup",
            "0.05",
        ]);
    }

    // δ*-screened matrix: the two intra-family pairs are pruned, the four
    // inter-family pairs get exact scans — and the report must come out
    // bit-identical for every thread count.
    let mut outputs = Vec::new();
    for threads in ["1", "2", "4", "7"] {
        let m = run(&[
            "matrix",
            "--dir",
            path_str(&reg),
            "--threshold",
            "500",
            "--threads",
            threads,
        ]);
        outputs.push(stdout(&m));
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0], "matrix output must be thread-invariant");
    }
    assert_golden("registry_matrix", &outputs[0]);
    assert!(
        outputs[0].starts_with("pairs 6 scanned 4 pruned 2 "),
        "screening must prune the two intra-family pairs: {}",
        outputs[0]
    );

    // Unscreened control: threshold 0 scans every pair.
    let full = run(&["matrix", "--dir", path_str(&reg)]);
    assert_golden("registry_matrix_full", &stdout(&full));

    let emb = run(&["embed", "--dir", path_str(&reg), "--k", "2"]);
    assert_golden("registry_embed", &stdout(&emb));

    std::fs::remove_dir_all(&dir).ok();
}

/// The dt-family registry workflow — gen-class → registry-add --kind dt
/// × 4 → matrix → embed — with the full matrix report and the MDS
/// coordinates snapshotted, and the matrix output swept across thread
/// counts.
///
/// Decision-tree snapshots carry the leaf-mass δ* bound, so the matrix
/// reports `bound … exact …` per pair; at the default threshold 0 every
/// pair still gets an exact scan (`pruned 0`), and the embedding — the
/// dt bound is a pseudo-metric — runs straight off the δ* grid.
#[test]
fn registry_dt_pipeline_golden() {
    let dir = scratch("registry-dt");
    let reg = dir.join("reg");

    // Two snapshots per Agrawal function: F2-generated days cluster
    // together, F5-generated days sit far away.
    for (name, function, seed) in [
        ("day-a", "F2", "2"),
        ("day-b", "F2", "3"),
        ("day-c", "F5", "4"),
        ("day-d", "F5", "5"),
    ] {
        let data = dir.join(format!("{name}.tbl"));
        run(&[
            "gen-class",
            "--out",
            path_str(&data),
            "--n",
            "400",
            "--function",
            function,
            "--seed",
            seed,
        ]);
        run(&[
            "registry-add",
            "--dir",
            path_str(&reg),
            "--data",
            path_str(&data),
            "--name",
            name,
            "--kind",
            "dt",
            "--max-depth",
            "4",
            "--min-leaf",
            "20",
        ]);
    }

    let mut outputs = Vec::new();
    for threads in ["1", "2", "4", "7"] {
        let m = run(&["matrix", "--dir", path_str(&reg), "--threads", threads]);
        outputs.push(stdout(&m));
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0], "dt matrix output must be thread-invariant");
    }
    assert_golden("registry_matrix_dt", &outputs[0]);
    assert!(
        outputs[0].starts_with("pairs 6 scanned 6 pruned 0 "),
        "at threshold 0 every dt pair must be scanned exactly: {}",
        outputs[0]
    );
    assert!(
        outputs[0].contains(" bound "),
        "dt pairs must report the leaf-mass bound: {}",
        outputs[0]
    );

    let mut embeds = Vec::new();
    for threads in ["1", "4"] {
        let e = run(&[
            "embed",
            "--dir",
            path_str(&reg),
            "--k",
            "2",
            "--threads",
            threads,
        ]);
        embeds.push(stdout(&e));
    }
    assert_eq!(embeds[0], embeds[1], "dt embed must be thread-invariant");
    // Independently fitted trees share no leaf boxes, so every pairwise
    // leaf-mass bound saturates at the total mass (2.0) and the scan-free
    // δ* embedding is near-degenerate — the honest model-only picture.
    // Shared-structure snapshots (retrained trees with a common split
    // skeleton) embed exactly, since matched leaves make the bound tight.
    assert_golden("registry_embed_dt", &embeds[0]);

    std::fs::remove_dir_all(&dir).ok();
}

/// The snapshots must be invariant under the thread count — the CLI-level
/// expression of the bit-identical contract. (CI additionally runs the
/// whole suite under FOCUS_THREADS ∈ {1, 4}.)
#[test]
fn golden_outputs_thread_invariant() {
    let dir = scratch("threads");
    let d1 = dir.join("d1.txt");
    let d2 = dir.join("d2.txt");
    for (out, seed) in [(&d1, "2"), (&d2, "3")] {
        run(&[
            "gen-assoc",
            "--out",
            path_str(out),
            "--n",
            "400",
            "--pats",
            "50",
            "--patlen",
            "3",
            "--pattern-seed",
            "1",
            "--seed",
            seed,
        ]);
    }
    let mut outputs = Vec::new();
    for threads in ["1", "2", "4", "7"] {
        let dev = run(&[
            "deviate",
            "--d1",
            path_str(&d1),
            "--d2",
            path_str(&d2),
            "--minsup",
            "0.05",
            "--threads",
            threads,
        ]);
        outputs.push(stdout(&dev));
    }
    // All four runs print identical bytes — and they match the snapshot
    // recorded by the main pipeline test.
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
    assert_golden("deviate_fa_sum", &outputs[0]);

    std::fs::remove_dir_all(&dir).ok();
}
