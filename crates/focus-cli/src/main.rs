//! `focus` — command-line interface to the FOCUS change-detection
//! framework.
//!
//! ```text
//! focus-cli gen-assoc  --out D1.txt --n 10000 [--pats 4000 --patlen 4 --pattern-seed 1 --seed 2]
//! focus-cli gen-class  --out D1.tbl --n 10000 --function F2 [--seed 1 --noise 0.05]
//! focus-cli mine       --data D1.txt --minsup 0.01 --out M1.model
//! focus-cli deviate    --d1 D1.txt --d2 D2.txt --minsup 0.01 [--f fa|fs] [--g sum|max]
//! focus-cli bound      --m1 M1.model --m2 M2.model
//! focus-cli qualify    --d1 D1.txt --d2 D2.txt --minsup 0.01 [--reps 99 --seed 7]
//! focus-cli tree       --data D1.tbl [--max-depth 10 --min-leaf 50] [--render]
//! focus-cli deviate-dt --d1 D1.tbl --d2 D2.tbl
//! focus-cli registry-add --dir REG --data D1.txt --name day-01 [--kind lits|dt|cluster] [--minsup 0.01] [--format text|bin --shards N]
//! focus-cli matrix     --dir REG [--kind k] [--threshold t | --top K] [--f fa|fs] [--g sum|max]
//! focus-cli embed      --dir REG [--kind k] [--k 2]
//! ```
//!
//! The last three drive the Section 4.1.1 exploratory loop: a *registry*
//! directory accumulates named snapshots (dataset + induced model) of any
//! model family — `--kind lits` mines frequent itemsets from transaction
//! data, `--kind dt` fits a decision tree to a labelled table, `--kind
//! cluster` runs k-means over a plain table. `matrix` computes every
//! pairwise deviation of one family's snapshots with δ*-screening (exact
//! scans only where the model-only bound exceeds `--threshold`, or, with
//! `--top K`, for the K largest bounds; the rest are pruned), and `embed`
//! places the collection in a k-dimensional space. All three families carry
//! a model-only bound, but screening is sound only under the default `--f
//! fa` (Theorem 4.2 and its leaf-mass / centroid-mass analogues bound the
//! absolute difference alone) — with `--f fs` every pair is scanned
//! regardless of the threshold. The lits and dt bounds are pseudo-metrics,
//! so their embeddings run straight off the δ* grid; the cluster bound is
//! not, so cluster embeddings use the exact deviations.
//!
//! Every command additionally accepts `--threads N` (0 = one worker per
//! core): dataset scans, model induction (decision-tree fitting included),
//! and the bootstrap fan-out run on that many threads with bit-identical
//! results. `FOCUS_THREADS` is the env-var equivalent. `--index-budget B`
//! caps the bytes the counting cost model may spend on vertical tid-bitset
//! indexes (`FOCUS_INDEX_BUDGET` is the env-var equivalent; `0` forces the
//! horizontal scan). Counts are bit-identical for every budget.
//!
//! Standalone datasets and models use the plain-text formats of
//! `focus_data::io` / `focus_core::persist`. Registries default to the
//! same text artifacts, but `registry-add --format bin [--shards N]`
//! creates one in the binary columnar format (per-section checksums,
//! zero-copy mmap loads) and/or a hash-sharded directory layout; `matrix`
//! and `embed` detect the layout automatically from `registry.layout`.

use focus_cluster::{KMeans, KMeansParams};
use focus_core::bound::lits_upper_bound;
use focus_core::deviation::{dt_deviation, lits_deviation};
use focus_core::diff::{AggFn, DiffFn};
use focus_core::family::{ClusterFamily, DtFamily, LitsFamily};
use focus_core::persist::{read_lits_model, write_lits_model};
use focus_core::qualify::qualify_transactions;
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_data::io::{
    read_labeled_table, read_transactions, write_labeled_table, write_transactions,
};
use focus_mining::{Apriori, AprioriParams, CountBackend};
use focus_registry::{
    DeviationMatrix, MatrixParams, Registry, RegistryLayout, SnapshotFamily, SnapshotKind,
    StorageFormat,
};
use focus_tree::{DecisionTree, TreeParams};
use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Global flag, honoured by every command: worker threads for dataset
    // scans, model induction, and bootstrap fan-out (0 = one per core).
    // Results are bit-identical for any setting; without the flag the
    // FOCUS_THREADS environment variable (or the core count) decides.
    match opt::<usize>(&flags, "threads", 0) {
        Ok(n) => {
            if flags.contains_key("threads") {
                focus_exec::set_global_threads(n);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    // Global flag: byte budget for vertical tid-bitset indexes, consulted
    // by the counting cost model (0 = never build one). Overrides the
    // FOCUS_INDEX_BUDGET environment variable for this invocation.
    match index_budget(&flags) {
        Ok(Some(bytes)) => focus_core::source::set_global_index_budget(bytes),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    let result = match command.as_str() {
        "gen-assoc" => gen_assoc(&flags),
        "gen-class" => gen_class(&flags),
        "mine" => mine(&flags),
        "deviate" => deviate(&flags),
        "bound" => bound(&flags),
        "qualify" => qualify(&flags),
        "tree" => tree(&flags),
        "deviate-dt" => deviate_dt(&flags),
        "registry-add" => registry_add(&flags),
        "matrix" => matrix(&flags),
        "embed" => embed(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
focus-cli — measure changes in data characteristics (FOCUS, PODS 1999)

commands:
  gen-assoc  --out <file> --n <rows> [--pats N --patlen L --pattern-seed S --seed S]
  gen-class  --out <file> --n <rows> --function F1..F10 [--seed S --noise P]
  mine       --data <txns> --minsup <f> [--out <model>]
  deviate    --d1 <txns> --d2 <txns> --minsup <f> [--f fa|fs] [--g sum|max]
  bound      --m1 <model> --m2 <model>
  qualify    --d1 <txns> --d2 <txns> --minsup <f> [--reps N --seed S]
  tree       --data <table> [--max-depth D --min-leaf N] [--render]
  deviate-dt --d1 <table> --d2 <table> [--max-depth D --min-leaf N]
  registry-add --dir <registry> --data <file> --name <name>
             [--kind lits|dt|cluster]  (default lits)
             [--minsup <f>]                      lits: mining threshold
             [--max-depth D --min-leaf N]        dt: tree induction
             [--clusters K --seed S]             cluster: k-means
             [--format text|bin] [--shards N]    layout of a *new* registry
                                                 (an existing one keeps its
                                                 own; bin = checksummed
                                                 columnar artifacts, mmap
                                                 reads; N hash shards)
  matrix     --dir <registry> [--kind k] [--threshold <t> | --top <K>]
             [--f fa|fs] [--g sum|max]
  embed      --dir <registry> [--kind k] [--k <dims>]

global flags:
  --threads N   worker threads for scans, model induction, and bootstrap
                fan-out (0 = one per core; default: FOCUS_THREADS env var,
                else core count). Results are bit-identical for every
                thread count.
  --count-backend dfs|hashtree|vertical|diffset|auto
                Apriori support-counting backend for mine/deviate/qualify
                (default dfs; diffset = vertical with dEclat complement
                rows for dense items; auto = cost-model dispatch). Mined
                models are backend-independent.
  --index-budget B
                byte cap on vertical tid-bitset indexes, consulted by the
                counting cost model; accepts k/M/G suffixes (e.g. 512M),
                0 disables index builds (default: FOCUS_INDEX_BUDGET env
                var, else 128M). Counts are budget-independent.";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, found {a:?}"));
        };
        // Boolean flags.
        if name == "render" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn req<'a>(flags: &'a Flags, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn opt<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
    }
}

fn io_err(e: std::io::Error) -> String {
    e.to_string()
}

fn gen_assoc(flags: &Flags) -> Result<(), String> {
    let out = req(flags, "out")?;
    let n: usize = opt(flags, "n", 10_000)?;
    let pats: usize = opt(flags, "pats", 4000)?;
    let patlen: f64 = opt(flags, "patlen", 4.0)?;
    let pattern_seed: u64 = opt(flags, "pattern-seed", 1)?;
    let seed: u64 = opt(flags, "seed", 2)?;
    let params = AssocGenParams::paper(pats, patlen);
    let gen = AssocGen::new(params, pattern_seed);
    let data = gen.generate(n, seed);
    write_transactions(&data, File::create(out).map_err(io_err)?).map_err(io_err)?;
    eprintln!("wrote {} ({} transactions)", out, data.len());
    Ok(())
}

fn gen_class(flags: &Flags) -> Result<(), String> {
    let out = req(flags, "out")?;
    let n: usize = opt(flags, "n", 10_000)?;
    let fname = req(flags, "function")?;
    let function = ClassifyFn::ALL
        .into_iter()
        .find(|f| f.name().eq_ignore_ascii_case(fname))
        .ok_or_else(|| format!("unknown function {fname:?} (use F1..F10)"))?;
    let seed: u64 = opt(flags, "seed", 1)?;
    let noise: f64 = opt(flags, "noise", 0.0)?;
    let data = ClassifyGen::new(function).noise(noise).generate(n, seed);
    write_labeled_table(&data, File::create(out).map_err(io_err)?).map_err(io_err)?;
    eprintln!(
        "wrote {} ({} rows, function {})",
        out,
        data.len(),
        function.name()
    );
    Ok(())
}

fn count_backend(flags: &Flags) -> Result<CountBackend, String> {
    match flags.get("count-backend") {
        None => Ok(CountBackend::default()),
        Some(s) => CountBackend::parse(s).ok_or_else(|| {
            format!(
                "--count-backend must be {}, got {s:?}",
                CountBackend::VALID_VALUES
            )
        }),
    }
}

fn index_budget(flags: &Flags) -> Result<Option<usize>, String> {
    match flags.get("index-budget") {
        None => Ok(None),
        Some(s) => focus_core::source::parse_index_budget(s)
            .map(Some)
            .ok_or_else(|| {
                format!(
                    "--index-budget must be a byte count with an optional k, M or G suffix \
                 (e.g. 512M), or 0 to disable index builds, got {s:?}"
                )
            }),
    }
}

fn miner(flags: &Flags, minsup: f64) -> Result<Apriori, String> {
    Ok(Apriori::new(
        AprioriParams::with_minsup(minsup)
            .max_len(10)
            .min_count_floor(2)
            .backend(count_backend(flags)?),
    ))
}

fn mine(flags: &Flags) -> Result<(), String> {
    let path = req(flags, "data")?;
    let minsup: f64 = opt(flags, "minsup", 0.01)?;
    let data = read_transactions(File::open(path).map_err(io_err)?).map_err(io_err)?;
    let model = miner(flags, minsup)?.mine(&data);
    eprintln!(
        "{}: {} frequent itemsets at minsup {}",
        path,
        model.len(),
        minsup
    );
    if let Some(out) = flags.get("out") {
        write_lits_model(&model, File::create(out).map_err(io_err)?).map_err(io_err)?;
        eprintln!("model written to {out}");
    } else {
        for (s, sup) in model.itemsets().iter().zip(model.supports()).take(20) {
            println!("{s}\t{sup:.4}");
        }
        if model.len() > 20 {
            println!("… ({} more)", model.len() - 20);
        }
    }
    Ok(())
}

fn diff_fn(flags: &Flags) -> Result<DiffFn, String> {
    match flags.get("f").map(|s| s.as_str()).unwrap_or("fa") {
        "fa" => Ok(DiffFn::Absolute),
        "fs" => Ok(DiffFn::Scaled),
        other => Err(format!("--f must be fa or fs, got {other:?}")),
    }
}

fn agg_fn(flags: &Flags) -> Result<AggFn, String> {
    match flags.get("g").map(|s| s.as_str()).unwrap_or("sum") {
        "sum" => Ok(AggFn::Sum),
        "max" => Ok(AggFn::Max),
        other => Err(format!("--g must be sum or max, got {other:?}")),
    }
}

fn deviate(flags: &Flags) -> Result<(), String> {
    let minsup: f64 = opt(flags, "minsup", 0.01)?;
    let d1 = read_transactions(File::open(req(flags, "d1")?).map_err(io_err)?).map_err(io_err)?;
    let d2 = read_transactions(File::open(req(flags, "d2")?).map_err(io_err)?).map_err(io_err)?;
    let m = miner(flags, minsup)?;
    let m1 = m.mine(&d1);
    let m2 = m.mine(&d2);
    let dev = lits_deviation(&m1, &d1, &m2, &d2, diff_fn(flags)?, agg_fn(flags)?);
    println!("{:.6}", dev.value);
    eprintln!(
        "GCR: {} regions; models: {} and {} itemsets",
        dev.gcr.len(),
        m1.len(),
        m2.len()
    );
    Ok(())
}

fn bound(flags: &Flags) -> Result<(), String> {
    let m1 = read_lits_model(File::open(req(flags, "m1")?).map_err(io_err)?).map_err(io_err)?;
    let m2 = read_lits_model(File::open(req(flags, "m2")?).map_err(io_err)?).map_err(io_err)?;
    println!("{:.6}", lits_upper_bound(&m1, &m2, agg_fn(flags)?));
    Ok(())
}

fn qualify(flags: &Flags) -> Result<(), String> {
    let minsup: f64 = opt(flags, "minsup", 0.01)?;
    let reps: usize = opt(flags, "reps", 99)?;
    let seed: u64 = opt(flags, "seed", 7)?;
    let d1 = read_transactions(File::open(req(flags, "d1")?).map_err(io_err)?).map_err(io_err)?;
    let d2 = read_transactions(File::open(req(flags, "d2")?).map_err(io_err)?).map_err(io_err)?;
    let m = miner(flags, minsup)?;
    let pipeline = |a: &focus_core::data::TransactionSet, b: &focus_core::data::TransactionSet| {
        let ma = m.mine(a);
        let mb = m.mine(b);
        lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
    };
    let observed = pipeline(&d1, &d2);
    let q = qualify_transactions(&d1, &d2, observed, reps, seed, pipeline);
    println!(
        "deviation {:.6}  significance {:.2}%",
        observed, q.significance_percent
    );
    Ok(())
}

fn tree_params(flags: &Flags, n: usize) -> Result<TreeParams, String> {
    Ok(TreeParams::default()
        .max_depth(opt(flags, "max-depth", 10)?)
        .min_leaf(opt(flags, "min-leaf", (n / 200).max(5))?))
}

fn tree(flags: &Flags) -> Result<(), String> {
    let data =
        read_labeled_table(File::open(req(flags, "data")?).map_err(io_err)?).map_err(io_err)?;
    let t = DecisionTree::fit(&data, tree_params(flags, data.len())?);
    eprintln!(
        "tree: {} leaves, depth {}, training error {:.4}",
        t.n_leaves(),
        t.depth(),
        t.misclassification_rate(&data)
    );
    if flags.contains_key("render") {
        print!("{}", t.render());
    }
    Ok(())
}

fn deviate_dt(flags: &Flags) -> Result<(), String> {
    let d1 = read_labeled_table(File::open(req(flags, "d1")?).map_err(io_err)?).map_err(io_err)?;
    let d2 = read_labeled_table(File::open(req(flags, "d2")?).map_err(io_err)?).map_err(io_err)?;
    let m1 = DecisionTree::fit(&d1, tree_params(flags, d1.len())?).to_model();
    let m2 = DecisionTree::fit(&d2, tree_params(flags, d2.len())?).to_model();
    let dev = dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum);
    println!("{:.6}", dev.value);
    eprintln!(
        "GCR: {} cells from {} × {} leaves",
        dev.cells.len(),
        m1.leaves().len(),
        m2.leaves().len()
    );
    Ok(())
}

fn parse_kind(
    flags: &Flags,
    default: Option<SnapshotKind>,
) -> Result<Option<SnapshotKind>, String> {
    match flags.get("kind") {
        None => Ok(default),
        Some(s) => SnapshotKind::parse(s)
            .map(Some)
            .ok_or_else(|| format!("--kind must be lits, dt or cluster, got {s:?}")),
    }
}

/// The snapshot family a `matrix`/`embed` run operates on: the `--kind`
/// flag if given, else the registry's single kind — a mixed registry
/// without `--kind` is ambiguous and errors.
fn registry_kind(reg: &Registry, flags: &Flags) -> Result<SnapshotKind, String> {
    if let Some(kind) = parse_kind(flags, None)? {
        return Ok(kind);
    }
    let kinds = reg.kinds();
    match kinds.as_slice() {
        [] => Err("registry holds no snapshots".to_string()),
        [one] => Ok(*one),
        many => Err(format!(
            "registry holds multiple snapshot kinds ({}); pick one with --kind",
            many.iter()
                .map(|k| k.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// A crashed append can leave one unterminated manifest line; the registry
/// ignores it on open, but the operator should hear about it.
fn warn_torn(reg: &Registry) {
    let torn = reg.torn_lines();
    if torn > 0 {
        eprintln!(
            "warning: ignored {torn} torn trailing manifest line(s) (crashed append); \
             the affected snapshot can be re-added"
        );
    }
}

fn registry_add(flags: &Flags) -> Result<(), String> {
    let dir = req(flags, "dir")?;
    let name = req(flags, "name")?;
    let data_path = req(flags, "data")?;
    let kind = parse_kind(flags, Some(SnapshotKind::Lits))?.expect("defaulted");
    // --format/--shards pick the layout of a *new* registry; an existing
    // one keeps the layout it was created with (a mismatch errors).
    let mut reg = if flags.contains_key("format") || flags.contains_key("shards") {
        let format = match flags.get("format") {
            None => StorageFormat::Text,
            Some(s) => StorageFormat::parse(s)
                .ok_or_else(|| format!("--format must be text or bin, got {s:?}"))?,
        };
        let layout = RegistryLayout {
            shards: opt(flags, "shards", 0)?,
            format,
        };
        Registry::open_or_create_with(dir, layout)
    } else {
        Registry::open_or_create(dir)
    }
    .map_err(io_err)?;
    warn_torn(&reg);
    let entry = match kind {
        SnapshotKind::Lits => {
            let minsup: f64 = opt(flags, "minsup", 0.01)?;
            let data = read_transactions(File::open(data_path).map_err(io_err)?).map_err(io_err)?;
            reg.add(name, &data, minsup).map_err(io_err)?
        }
        SnapshotKind::Dt => {
            let data =
                read_labeled_table(File::open(data_path).map_err(io_err)?).map_err(io_err)?;
            let model = DecisionTree::fit(&data, tree_params(flags, data.len())?).to_model();
            reg.add_snapshot::<DtFamily>(name, &data, &model)
                .map_err(io_err)?
        }
        SnapshotKind::Cluster => {
            let data = focus_data::io::read_table(File::open(data_path).map_err(io_err)?)
                .map_err(io_err)?;
            let k: usize = opt(flags, "clusters", 3)?;
            if k == 0 {
                return Err("--clusters must be at least 1".to_string());
            }
            let seed: u64 = opt(flags, "seed", 0)?;
            let model = KMeans::new(KMeansParams::new(k).seed(seed))
                .fit(&data)
                .to_model(&data);
            reg.add_snapshot::<ClusterFamily>(name, &data, &model)
                .map_err(io_err)?
        }
    };
    let minsup_note = match entry.minsup {
        Some(ms) => format!(" at minsup {ms}"),
        None => String::new(),
    };
    eprintln!(
        "registered {:?} in {} (kind {}, {} rows, {} regions{})",
        entry.name, dir, entry.kind, entry.n_rows, entry.n_regions, minsup_note
    );
    Ok(())
}

fn matrix(flags: &Flags) -> Result<(), String> {
    let dir = req(flags, "dir")?;
    let threshold: f64 = opt(flags, "threshold", 0.0)?;
    let top: Option<usize> = match flags.get("top") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("--top: {e}"))?),
    };
    if top.is_some() && flags.contains_key("threshold") {
        return Err("--top replaces --threshold; pass only one".to_string());
    }
    let reg = Registry::open(dir).map_err(io_err)?;
    warn_torn(&reg);
    let kind = registry_kind(&reg, flags)?;
    let params = MatrixParams {
        diff: diff_fn(flags)?,
        agg: agg_fn(flags)?,
        threshold,
        top,
        ..MatrixParams::default()
    };
    let m = match kind {
        SnapshotKind::Lits => reg.matrix_of::<LitsFamily>(&params),
        SnapshotKind::Dt => reg.matrix_of::<DtFamily>(&params),
        SnapshotKind::Cluster => reg.matrix_of::<ClusterFamily>(&params),
    }
    .map_err(io_err)?;
    match top {
        Some(k) => println!(
            "pairs {} scanned {} pruned {} top {}",
            m.n_pairs(),
            m.scanned(),
            m.pruned(),
            k
        ),
        None => println!(
            "pairs {} scanned {} pruned {} threshold {:.6}",
            m.n_pairs(),
            m.scanned(),
            m.pruned(),
            m.threshold()
        ),
    }
    let names = m.names();
    for i in 0..m.len() {
        for j in (i + 1)..m.len() {
            match (m.has_bounds(), m.exact(i, j)) {
                (true, Some(e)) => println!(
                    "{} {} bound {:.6} exact {:.6}",
                    names[i],
                    names[j],
                    m.bound(i, j),
                    e
                ),
                (true, None) => println!(
                    "{} {} bound {:.6} pruned",
                    names[i],
                    names[j],
                    m.bound(i, j)
                ),
                // Non-dominated screening (e.g. --f fs) scans every pair.
                (false, Some(e)) => println!("{} {} exact {:.6}", names[i], names[j], e),
                (false, None) => unreachable!("unscreened matrices are complete"),
            }
        }
    }
    Ok(())
}

fn embed(flags: &Flags) -> Result<(), String> {
    let dir = req(flags, "dir")?;
    let k: usize = opt(flags, "k", 2)?;
    let reg = Registry::open(dir).map_err(io_err)?;
    warn_torn(&reg);
    // Metric families (lits, dt) embed straight off the δ* bound grid, so
    // every exact scan can be pruned by screening at +∞. Cluster bounds are
    // not a metric — the embedding needs the exact deviations, so scan all
    // pairs with threshold 0.
    fn matrix_for_embed<F: SnapshotFamily>(reg: &Registry) -> std::io::Result<DeviationMatrix> {
        let params = MatrixParams {
            threshold: if F::HAS_BOUND && F::BOUND_IS_METRIC {
                f64::INFINITY
            } else {
                0.0
            },
            ..MatrixParams::default()
        };
        reg.matrix_of::<F>(&params)
    }
    let m = match registry_kind(&reg, flags)? {
        SnapshotKind::Lits => matrix_for_embed::<LitsFamily>(&reg),
        SnapshotKind::Dt => matrix_for_embed::<DtFamily>(&reg),
        SnapshotKind::Cluster => matrix_for_embed::<ClusterFamily>(&reg),
    }
    .map_err(io_err)?;
    let coords = m.embed(k).map_err(|e| e.to_string())?;
    for (name, c) in m.names().iter().zip(&coords) {
        let cs: Vec<String> = c.iter().map(|x| format!("{x:.6}")).collect();
        println!("{} {}", name, cs.join(" "));
    }
    let stress = m.stress(&coords).map_err(|e| e.to_string())?;
    println!("stress {stress:.6}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(args: &[&str]) -> Flags {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_flags_pairs_and_booleans() {
        let f = flags_of(&["--d1", "a.txt", "--render", "--minsup", "0.05"]);
        assert_eq!(f.get("d1").map(|s| s.as_str()), Some("a.txt"));
        assert_eq!(f.get("render").map(|s| s.as_str()), Some("true"));
        assert_eq!(f.get("minsup").map(|s| s.as_str()), Some("0.05"));
    }

    #[test]
    fn parse_flags_rejects_positional() {
        let args = vec!["oops".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_dangling_flag() {
        let args = vec!["--out".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn required_and_optional_lookup() {
        let f = flags_of(&["--n", "500"]);
        assert_eq!(req(&f, "n").unwrap(), "500");
        assert!(req(&f, "out").is_err());
        assert_eq!(opt::<usize>(&f, "n", 10).unwrap(), 500);
        assert_eq!(opt::<usize>(&f, "missing", 10).unwrap(), 10);
        assert!(opt::<usize>(&flags_of(&["--n", "abc"]), "n", 1).is_err());
    }

    #[test]
    fn diff_and_agg_parsing() {
        assert!(matches!(diff_fn(&flags_of(&[])).unwrap(), DiffFn::Absolute));
        assert!(matches!(
            diff_fn(&flags_of(&["--f", "fs"])).unwrap(),
            DiffFn::Scaled
        ));
        assert!(diff_fn(&flags_of(&["--f", "zzz"])).is_err());
        assert_eq!(agg_fn(&flags_of(&["--g", "max"])).unwrap(), AggFn::Max);
        assert!(agg_fn(&flags_of(&["--g", "median"])).is_err());
    }

    #[test]
    fn count_backend_flag_parsing() {
        assert_eq!(count_backend(&flags_of(&[])).unwrap(), CountBackend::Dfs);
        assert_eq!(
            count_backend(&flags_of(&["--count-backend", "vertical"])).unwrap(),
            CountBackend::Vertical
        );
        assert_eq!(
            count_backend(&flags_of(&["--count-backend", "hash-tree"])).unwrap(),
            CountBackend::HashTree
        );
        assert_eq!(
            count_backend(&flags_of(&["--count-backend", "AUTO"])).unwrap(),
            CountBackend::Auto
        );
        // The rejection names every valid spelling, so a typo is
        // self-correcting from the error alone.
        assert_eq!(
            count_backend(&flags_of(&["--count-backend", "diffset"])).unwrap(),
            CountBackend::Diffset
        );
        let err = count_backend(&flags_of(&["--count-backend", "nope"])).unwrap_err();
        for valid in ["dfs", "hashtree", "vertical", "diffset", "auto"] {
            assert!(err.contains(valid), "{err:?} should mention {valid:?}");
        }
        assert!(err.contains("nope"));
        assert!(miner(&flags_of(&["--count-backend", "nope"]), 0.1).is_err());
    }

    #[test]
    fn index_budget_flag_parsing() {
        assert_eq!(index_budget(&flags_of(&[])).unwrap(), None);
        assert_eq!(
            index_budget(&flags_of(&["--index-budget", "64M"])).unwrap(),
            Some(64 << 20)
        );
        assert_eq!(
            index_budget(&flags_of(&["--index-budget", "0"])).unwrap(),
            Some(0)
        );
        // The rejection spells out the accepted forms.
        let err = index_budget(&flags_of(&["--index-budget", "lots"])).unwrap_err();
        for hint in ["byte count", "k", "M", "G", "0"] {
            assert!(err.contains(hint), "{err:?} should mention {hint:?}");
        }
        assert!(err.contains("lots"));
    }

    #[test]
    fn end_to_end_through_tempfiles() {
        let dir = std::env::temp_dir().join("focus-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let d1 = dir.join("d1.txt");
        let m1 = dir.join("m1.model");
        let mut f = Flags::new();
        f.insert("out".into(), d1.to_str().unwrap().into());
        f.insert("n".into(), "500".into());
        f.insert("pats".into(), "50".into());
        gen_assoc(&f).unwrap();
        let mut f = Flags::new();
        f.insert("data".into(), d1.to_str().unwrap().into());
        f.insert("minsup".into(), "0.05".into());
        f.insert("out".into(), m1.to_str().unwrap().into());
        mine(&f).unwrap();
        let model = read_lits_model(File::open(&m1).unwrap()).unwrap();
        assert!(!model.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
