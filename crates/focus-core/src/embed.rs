//! Metric embedding of dataset collections (Section 4.1.1).
//!
//! Theorem 4.2 shows that the upper bound δ* satisfies the triangle
//! inequality, so "δ* can be used to embed a collection of datasets in a
//! k-dimensional space for visually comparing their relative differences."
//! This module makes that concrete with **classical multidimensional
//! scaling** (Torgerson MDS): double-center the squared-distance matrix and
//! take the top-`k` eigenpairs (by power iteration with deflation — no
//! linear-algebra dependency needed at these sizes).
#![allow(clippy::needless_range_loop)] // index loops are the clearest form for dense matrix code

use crate::bound::lits_upper_bound;
use crate::diff::AggFn;
use crate::model::LitsModel;

/// A symmetric distance matrix (row-major, `n × n`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds from a symmetric closure `dist(i, j)`; the diagonal is zero.
    pub fn from_fn(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Self {
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = dist(i, j);
                assert!(v >= 0.0, "distances must be non-negative");
                d[i * n + j] = v;
                d[j * n + i] = v;
            }
        }
        Self { n, d }
    }

    /// Pairwise δ*(g_sum) distances between a collection of lits-models —
    /// computable from the models alone, no dataset scans (Theorem 4.2 (3)).
    pub fn from_lits_models(models: &[LitsModel]) -> Self {
        Self::from_fn(models.len(), |i, j| {
            lits_upper_bound(&models[i], &models[j], AggFn::Sum)
        })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between points `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.d[i * self.n + j]
    }

    /// Classical MDS embedding into `k` dimensions. Returns `n` coordinate
    /// vectors of length `k`. Negative eigenvalues (non-Euclidean parts of
    /// the metric) are dropped, as is standard.
    pub fn embed(&self, k: usize) -> Vec<Vec<f64>> {
        let n = self.n;
        assert!(k >= 1);
        if n == 0 {
            return Vec::new();
        }
        // B = -1/2 · J D² J with J = I - 1/n · 11ᵀ (double centering).
        let mut b = vec![0.0f64; n * n];
        let d2 = |i: usize, j: usize| self.get(i, j) * self.get(i, j);
        let mut row_mean = vec![0.0f64; n];
        let mut grand = 0.0;
        for i in 0..n {
            for j in 0..n {
                row_mean[i] += d2(i, j);
            }
            row_mean[i] /= n as f64;
            grand += row_mean[i];
        }
        grand /= n as f64;
        for i in 0..n {
            for j in 0..n {
                b[i * n + j] = -0.5 * (d2(i, j) - row_mean[i] - row_mean[j] + grand);
            }
        }

        // Top-k eigenpairs by power iteration with deflation.
        let mut coords = vec![vec![0.0f64; k]; n];
        let mut matrix = b;
        for dim in 0..k.min(n) {
            let Some((lambda, v)) = power_iteration(&matrix, n, 500, 1e-12) else {
                break;
            };
            if lambda <= 1e-10 {
                break; // remaining spectrum is non-positive
            }
            let scale = lambda.sqrt();
            for i in 0..n {
                coords[i][dim] = v[i] * scale;
            }
            // Deflate: M ← M − λ v vᵀ.
            for i in 0..n {
                for j in 0..n {
                    matrix[i * n + j] -= lambda * v[i] * v[j];
                }
            }
        }
        coords
    }

    /// The *stress* of an embedding: the RMS relative error between the
    /// original distances and the embedded Euclidean distances, over all
    /// pairs with positive original distance. 0 = perfect.
    pub fn stress(&self, coords: &[Vec<f64>]) -> f64 {
        let n = self.n;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let orig = self.get(i, j);
                let emb: f64 = coords[i]
                    .iter()
                    .zip(&coords[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                num += (orig - emb) * (orig - emb);
                den += orig * orig;
            }
        }
        if den == 0.0 {
            0.0
        } else {
            (num / den).sqrt()
        }
    }
}

/// Dominant eigenpair of a symmetric matrix by power iteration. Returns
/// `(eigenvalue, unit eigenvector)`; `None` on breakdown (zero matrix).
fn power_iteration(m: &[f64], n: usize, iters: usize, tol: f64) -> Option<(f64, Vec<f64>)> {
    // Deterministic non-degenerate start.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.1).collect();
    normalize(&mut v)?;
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut w = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                w[i] += m[i * n + j] * v[j];
            }
        }
        let new_lambda: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        normalize(&mut w)?;
        let delta: f64 = v
            .iter()
            .zip(&w)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        v = w;
        let conv = (new_lambda - lambda).abs() < tol * (1.0 + new_lambda.abs());
        lambda = new_lambda;
        if conv && delta < 1e-9 {
            break;
        }
    }
    Some((lambda, v))
}

fn normalize(v: &mut [f64]) -> Option<()> {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 || !norm.is_finite() {
        return None;
    }
    for x in v.iter_mut() {
        *x /= norm;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Itemset;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn embeds_a_line_exactly() {
        // Points at 0, 1, 3 on a line: 1-D MDS must recover the spacing.
        let pts = [0.0f64, 1.0, 3.0];
        let d = DistanceMatrix::from_fn(3, |i, j| (pts[i] - pts[j]).abs());
        let coords = d.embed(1);
        for i in 0..3 {
            for j in 0..3 {
                let emb = (coords[i][0] - coords[j][0]).abs();
                assert!(
                    (emb - d.get(i, j)).abs() < 1e-6,
                    "pair ({i},{j}): {emb} vs {}",
                    d.get(i, j)
                );
            }
        }
        assert!(d.stress(&coords) < 1e-6);
    }

    #[test]
    fn embeds_a_square_in_2d() {
        // Unit square corners: 2-D embedding must be (near) exact, 1-D not.
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)];
        let d = DistanceMatrix::from_fn(4, |i, j| {
            euclid(&[pts[i].0, pts[i].1], &[pts[j].0, pts[j].1])
        });
        let flat = d.embed(1);
        let plane = d.embed(2);
        assert!(d.stress(&plane) < 1e-6, "2-D stress {}", d.stress(&plane));
        assert!(d.stress(&flat) > 0.1, "1-D must be lossy for a square");
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let d = DistanceMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs());
        for i in 0..4 {
            assert_eq!(d.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(d.get(i, j), d.get(j, i));
            }
        }
    }

    #[test]
    fn lits_model_collection_embedding() {
        // Three hand-built models: two near-identical, one far away. The
        // embedding must place the similar pair close together.
        let mk = |sups: &[(u32, f64)]| {
            let (sets, vals): (Vec<Itemset>, Vec<f64>) = sups
                .iter()
                .map(|&(i, s)| (Itemset::new(vec![i]), s))
                .unzip();
            LitsModel::new(sets, vals, 0.1, 1000)
        };
        let a = mk(&[(0, 0.5), (1, 0.4)]);
        let b = mk(&[(0, 0.52), (1, 0.38)]);
        let c = mk(&[(5, 0.9), (6, 0.8)]);
        let d = DistanceMatrix::from_lits_models(&[a, b, c]);
        let coords = d.embed(2);
        let ab = euclid(&coords[0], &coords[1]);
        let ac = euclid(&coords[0], &coords[2]);
        assert!(ab < ac, "similar models must embed closer: {ab} vs {ac}");
        // Embedded distances approximate the δ* metric.
        assert!(d.stress(&coords) < 0.2, "stress {}", d.stress(&coords));
    }

    #[test]
    fn zero_matrix_embeds_at_origin() {
        let d = DistanceMatrix::from_fn(3, |_, _| 0.0);
        let coords = d.embed(2);
        for c in coords {
            assert!(c.iter().all(|&x| x.abs() < 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_distances() {
        DistanceMatrix::from_fn(2, |_, _| -1.0);
    }
}
