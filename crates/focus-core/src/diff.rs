//! Difference and aggregate functions (Section 3.3.2, Definition 3.7).
//!
//! The deviation measure is parameterized by a *difference function* `f`
//! applied per region and an *aggregate function* `g` combining the
//! per-region differences. The paper's instantiations:
//!
//! * `f_a` — absolute difference of selectivities. "Concentrates on the
//!   absolute changes in support."
//! * `f_s` — scaled difference: the absolute difference divided by the mean
//!   selectivity, so "noticing an itemset for the first time" (0% → 5%)
//!   outweighs a slight change in an already-significant itemset
//!   (50% → 55%).
//! * `f_χ²` — the chi-squared cell contribution (Proposition 5.1), which
//!   lets the classical goodness-of-fit statistic be read out of FOCUS.
//!
//! and `g ∈ {sum, max}`. Both `f` and `g` take *absolute* measures plus the
//! dataset sizes (`f : I⁴₊ → R₊`), because some instantiations (notably χ²)
//! need absolute counts, not just selectivities.

/// A difference function `f(v1, v2, |D1|, |D2|) → R₊` over the absolute
/// measures `v1, v2` of one region w.r.t. two datasets of sizes
/// `|D1|, |D2|`.
#[derive(Debug, Clone, Copy)]
pub enum DiffFn {
    /// `f_a`: absolute difference of selectivities, `|v1/n1 − v2/n2|`.
    Absolute,
    /// `f_s`: scaled difference — absolute difference divided by the mean
    /// selectivity; `0` when both measures are `0`.
    Scaled,
    /// `f_χ²`: the chi-squared cell `n2 · (v1/n1 − v2/n2)² / (v1/n1)`, with
    /// the constant `c` substituted when the expected selectivity `v1/n1`
    /// is zero (the standard "add a small constant" practice the paper
    /// adopts from D'Agostino & Stephens).
    ChiSquared {
        /// Value used for cells with zero expected count (0.5 is the
        /// customary choice).
        c: f64,
    },
    /// An arbitrary user-supplied difference function.
    Custom(fn(f64, f64, f64, f64) -> f64),
}

impl DiffFn {
    /// Evaluates the difference of one region's measures.
    ///
    /// `v1`, `v2` are absolute counts of the region in the two datasets;
    /// `n1`, `n2` the dataset sizes.
    ///
    /// Empty datasets (`n = 0`) are treated as having selectivity 0 in
    /// every region, so every built-in difference function stays finite:
    /// the branch guards below test the *selectivities*, not the raw
    /// counts, which keeps `f_s` and `f_χ²` out of their `0/0` corners
    /// when one side is empty.
    pub fn eval(&self, v1: f64, v2: f64, n1: f64, n2: f64) -> f64 {
        debug_assert!(v1 >= 0.0 && v2 >= 0.0 && n1 >= 0.0 && n2 >= 0.0);
        let s1 = if n1 > 0.0 { v1 / n1 } else { 0.0 };
        let s2 = if n2 > 0.0 { v2 / n2 } else { 0.0 };
        match self {
            DiffFn::Absolute => (s1 - s2).abs(),
            DiffFn::Scaled => {
                if s1 + s2 > 0.0 {
                    (s1 - s2).abs() / ((s1 + s2) / 2.0)
                } else {
                    0.0
                }
            }
            DiffFn::ChiSquared { c } => {
                if s1 > 0.0 {
                    n2 * (s1 - s2) * (s1 - s2) / s1
                } else {
                    *c
                }
            }
            DiffFn::Custom(f) => f(v1, v2, n1, n2),
        }
    }
}

/// An aggregate function `g : P(R₊) → R₊` combining per-region differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Sum of the per-region differences (the paper's primary choice).
    Sum,
    /// Maximum per-region difference.
    Max,
}

impl AggFn {
    /// Aggregates an iterator of per-region differences. The empty
    /// aggregate is `0` for both instantiations (two models with no regions
    /// do not deviate).
    pub fn eval<I: IntoIterator<Item = f64>>(&self, diffs: I) -> f64 {
        match self {
            AggFn::Sum => diffs.into_iter().sum(),
            AggFn::Max => diffs.into_iter().fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_difference() {
        // Selectivities 0.5 and 0.1 out of 100/200 rows.
        let f = DiffFn::Absolute;
        assert!((f.eval(50.0, 20.0, 100.0, 200.0) - 0.4).abs() < 1e-12);
        assert_eq!(f.eval(0.0, 0.0, 100.0, 200.0), 0.0);
    }

    #[test]
    fn scaled_difference_weights_novelty() {
        // The paper's motivating pair: X1 moves 50% → 55%, X2 moves 0% → 5%.
        let f = DiffFn::Scaled;
        let x1 = f.eval(50.0, 55.0, 100.0, 100.0);
        let x2 = f.eval(0.0, 5.0, 100.0, 100.0);
        assert!(
            x2 > x1,
            "scaled difference must rank the newly-appearing itemset higher"
        );
        // X2: |0 − 0.05| / 0.025 = 2; X1: 0.05 / 0.525 ≈ 0.0952.
        assert!((x2 - 2.0).abs() < 1e-12);
        assert!((x1 - 0.05 / 0.525).abs() < 1e-12);
    }

    #[test]
    fn scaled_difference_zero_when_both_absent() {
        assert_eq!(DiffFn::Scaled.eval(0.0, 0.0, 10.0, 10.0), 0.0);
    }

    #[test]
    fn chi_squared_cell() {
        // E-selectivity 0.25, O-selectivity 0.35, n2 = 200:
        // 200 · (0.1)² / 0.25 = 8.
        let f = DiffFn::ChiSquared { c: 0.5 };
        assert!((f.eval(25.0, 70.0, 100.0, 200.0) - 8.0).abs() < 1e-9);
        // Zero expected count falls back to c.
        assert_eq!(f.eval(0.0, 70.0, 100.0, 200.0), 0.5);
    }

    #[test]
    fn chi_squared_matches_textbook_form() {
        // X² = Σ (O − E)² / E with E = s1·n2 and O = v2. One cell:
        let n1 = 50.0;
        let n2 = 80.0;
        let v1 = 10.0; // s1 = 0.2, E = 16
        let v2 = 24.0; // O = 24
        let textbook = (24.0 - 16.0_f64).powi(2) / 16.0;
        let cell = DiffFn::ChiSquared { c: 0.5 }.eval(v1, v2, n1, n2);
        assert!((cell - textbook).abs() < 1e-9, "{cell} vs {textbook}");
    }

    #[test]
    fn custom_function() {
        fn halved(v1: f64, v2: f64, _n1: f64, _n2: f64) -> f64 {
            (v1 - v2).abs() / 2.0
        }
        let f = DiffFn::Custom(halved);
        assert_eq!(f.eval(10.0, 4.0, 1.0, 1.0), 3.0);
    }

    #[test]
    fn aggregates() {
        let xs = [0.4, 0.1, 0.4, 0.2, 0.15];
        assert!((AggFn::Sum.eval(xs.iter().copied()) - 1.25).abs() < 1e-12);
        assert_eq!(AggFn::Max.eval(xs.iter().copied()), 0.4);
        assert_eq!(AggFn::Sum.eval(std::iter::empty()), 0.0);
        assert_eq!(AggFn::Max.eval(std::iter::empty()), 0.0);
    }

    #[test]
    fn zero_sized_datasets_do_not_nan() {
        for f in [DiffFn::Absolute, DiffFn::Scaled] {
            let v = f.eval(0.0, 0.0, 0.0, 0.0);
            assert!(v.is_finite());
        }
    }

    #[test]
    fn one_empty_side_stays_finite_for_every_builtin() {
        // Regression: with n1 = 0 but v1 > 0 (a model whose structure came
        // from elsewhere, measured against an empty dataset), f_s used to
        // hit 0/0 and f_χ² divided by a zero expectation.
        for f in [
            DiffFn::Absolute,
            DiffFn::Scaled,
            DiffFn::ChiSquared { c: 0.5 },
        ] {
            for (v1, n1, v2, n2) in [
                (3.0, 0.0, 5.0, 10.0),
                (3.0, 0.0, 0.0, 0.0),
                (0.0, 0.0, 5.0, 10.0),
                (4.0, 8.0, 2.0, 0.0),
            ] {
                let v = f.eval(v1, v2, n1, n2);
                assert!(v.is_finite(), "{f:?} on ({v1},{v2},{n1},{n2}) = {v}");
            }
        }
        // An empty side behaves as selectivity 0: the absolute difference
        // degenerates to the other side's selectivity.
        assert_eq!(DiffFn::Absolute.eval(7.0, 5.0, 0.0, 10.0), 0.5);
        // χ² with zero expected selectivity falls back to the constant c.
        assert_eq!(DiffFn::ChiSquared { c: 0.5 }.eval(7.0, 5.0, 0.0, 10.0), 0.5);
    }
}
