//! Windowed change monitoring — the paper's motivating application
//! (Section 1: "a sales analyst monitoring a dataset may want to analyze
//! the data thoroughly only if the current snapshot differs significantly
//! from previously analyzed snapshots"), packaged as a reusable component.
//!
//! A [`ChangeMonitor`] holds a *reference* dataset and its model-induction
//! pipeline (any `Fn(dataset) → deviation`-style closure pair). Each
//! incoming block is scored with the FOCUS deviation against the
//! reference; the alarm threshold is calibrated once by bootstrapping the
//! null distribution (Section 3.4), so the monitor raises only on
//! statistically significant drift. On alarm, the monitor can re-baseline
//! to the new block (`rebaseline = true`), tracking slow concept drift.
//!
//! The monitor retains a bounded window of recent verdicts (default
//! [`DEFAULT_HISTORY_CAP`]; see [`ChangeMonitor::with_history_cap`]) so an
//! unattended stream cannot grow memory without bound; verdict indices are
//! global, so trimming loses no information a caller could not recover
//! from [`ChangeMonitor::drain_history`] shipments.

use crate::data::{resample_indices, TransactionSet};
use focus_exec::{derive_seed, map_indices, Parallelism};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Default number of verdicts a [`ChangeMonitor`] retains. Long-running
/// monitors observe unboundedly many blocks; an unbounded history is a
/// slow memory leak, so retention is bounded unless explicitly raised via
/// [`ChangeMonitor::with_history_cap`].
pub const DEFAULT_HISTORY_CAP: usize = 1024;

/// Verdict for one monitored block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVerdict {
    /// Sequence number of the block (0-based).
    pub index: usize,
    /// The deviation of the block from the current reference.
    pub deviation: f64,
    /// Calibrated alarm threshold in force when the block was scored.
    pub threshold: f64,
    /// True if the deviation exceeded the threshold.
    pub drifted: bool,
}

/// A calibrated drift monitor over transaction blocks.
///
/// Generic over the deviation pipeline `F: Fn(&TransactionSet,
/// &TransactionSet) -> f64` — typically "mine both, compute
/// `δ(f_a, g_sum)`". The pipeline must be `Fn + Sync`: calibration runs
/// one full pipeline per bootstrap replicate, and the replicates fan out
/// over worker threads.
pub struct ChangeMonitor<F>
where
    F: Fn(&TransactionSet, &TransactionSet) -> f64 + Sync,
{
    reference: TransactionSet,
    pipeline: F,
    /// Alarm quantile in the bootstrap null (e.g. 0.99).
    quantile: f64,
    /// Bootstrap replicates for calibration.
    reps: usize,
    /// Expected block size (calibration resamples this many transactions).
    block_size: usize,
    seed: u64,
    threshold: f64,
    /// Re-baseline to the offending block after an alarm.
    rebaseline: bool,
    /// Worker threads for the calibration fan-out.
    parallelism: Parallelism,
    /// The most recent verdicts, bounded by `history_cap` (oldest dropped
    /// first). [`BlockVerdict::index`] stays global, so a trimmed history
    /// is still unambiguous.
    history: VecDeque<BlockVerdict>,
    history_cap: usize,
    /// Blocks observed over the monitor's whole lifetime — the source of
    /// verdict indices and re-baseline seeds, so trimming or draining the
    /// history never changes any score or threshold.
    observed: usize,
}

impl<F> ChangeMonitor<F>
where
    F: Fn(&TransactionSet, &TransactionSet) -> f64 + Sync,
{
    /// Creates and calibrates a monitor at the process-wide default
    /// parallelism.
    ///
    /// * `reference` — the baseline snapshot;
    /// * `block_size` — expected size of each monitored block;
    /// * `quantile` — null quantile for the alarm (0.99 ⇒ 1% false-alarm
    ///   rate by construction);
    /// * `reps` — bootstrap replicates for the calibration;
    /// * `pipeline` — the model-induction + deviation closure.
    pub fn new(
        reference: TransactionSet,
        block_size: usize,
        quantile: f64,
        reps: usize,
        seed: u64,
        pipeline: F,
    ) -> Self {
        Self::new_par(
            reference,
            block_size,
            quantile,
            reps,
            seed,
            Parallelism::Global,
            pipeline,
        )
    }

    /// [`ChangeMonitor::new`] with an explicit [`Parallelism`] for the
    /// calibration fan-out (also used by re-baseline recalibrations).
    /// Thresholds are bit-identical for every setting.
    pub fn new_par(
        reference: TransactionSet,
        block_size: usize,
        quantile: f64,
        reps: usize,
        seed: u64,
        parallelism: Parallelism,
        pipeline: F,
    ) -> Self {
        assert!(!reference.is_empty(), "reference must be non-empty");
        assert!(
            (0.5..1.0).contains(&quantile),
            "quantile must be in [0.5, 1)"
        );
        assert!(reps >= 10, "need at least 10 replicates to calibrate");
        assert!(block_size > 0);
        let threshold = calibrate_threshold_par(
            &reference,
            block_size,
            quantile,
            reps,
            seed,
            parallelism,
            &pipeline,
        );
        Self {
            reference,
            pipeline,
            quantile,
            reps,
            block_size,
            seed,
            threshold,
            rebaseline: false,
            parallelism,
            history: VecDeque::new(),
            history_cap: DEFAULT_HISTORY_CAP,
            observed: 0,
        }
    }

    /// Enables re-baselining: after an alarm the offending block becomes
    /// the new reference and the threshold is recalibrated.
    pub fn with_rebaseline(mut self) -> Self {
        self.rebaseline = true;
        self
    }

    /// Retains at most `cap` verdicts (default
    /// [`DEFAULT_HISTORY_CAP`]); once full, the oldest is dropped per new
    /// block. `cap = 0` keeps no history at all. The cap only bounds the
    /// retained record: scores, thresholds and verdict indices are
    /// bit-identical under every cap.
    pub fn with_history_cap(mut self, cap: usize) -> Self {
        self.history_cap = cap;
        while self.history.len() > cap {
            self.history.pop_front();
        }
        self
    }

    /// The current alarm threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The retained verdicts, oldest first — the last
    /// [`history_cap`](Self::with_history_cap) of the
    /// [`observed`](Self::observed) blocks.
    pub fn history(&self) -> impl Iterator<Item = &BlockVerdict> {
        self.history.iter()
    }

    /// Number of verdicts currently retained (≤ the history cap).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Total number of blocks scored over the monitor's lifetime,
    /// including any whose verdicts have been trimmed or drained.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Removes and returns every retained verdict, oldest first. Lets a
    /// long-running caller ship verdicts elsewhere without the monitor
    /// re-accumulating them; [`observed`](Self::observed) is unaffected.
    pub fn drain_history(&mut self) -> Vec<BlockVerdict> {
        self.history.drain(..).collect()
    }

    /// Scores one block; returns its verdict (also recorded in history).
    pub fn observe(&mut self, block: &TransactionSet) -> BlockVerdict {
        let deviation = (self.pipeline)(&self.reference, block);
        let drifted = deviation > self.threshold;
        let verdict = BlockVerdict {
            index: self.observed,
            deviation,
            threshold: self.threshold,
            drifted,
        };
        self.observed += 1;
        if self.history.len() >= self.history_cap {
            // ≥, not ==: with_history_cap may have shrunk the cap.
            self.history.pop_front();
        }
        if self.history_cap > 0 {
            self.history.push_back(verdict.clone());
        }
        if drifted && self.rebaseline {
            self.reference = block.clone();
            self.threshold = calibrate_threshold_par(
                &self.reference,
                self.block_size,
                self.quantile,
                self.reps,
                self.seed ^ self.observed as u64,
                self.parallelism,
                &self.pipeline,
            );
        }
        verdict
    }
}

/// Bootstraps the null distribution "reference vs same-process block" and
/// returns its `quantile` as the alarm threshold, with the replicates
/// fanned out over `par` worker threads.
///
/// Each replicate runs the full model-induction pipeline on a pseudo-block
/// resampled from the reference, so the fan-out dominates calibration
/// cost. Replicate `i` seeds its own `StdRng` from `derive_seed(seed, i)`
/// (mirroring `bootstrap_two_sample`), so its random draws depend only on
/// `(seed, i)` — never on the thread count — and the threshold is
/// **bit-identical** however many workers ran the calibration.
pub fn calibrate_threshold_par<F>(
    reference: &TransactionSet,
    block_size: usize,
    quantile: f64,
    reps: usize,
    seed: u64,
    par: Parallelism,
    pipeline: &F,
) -> f64
where
    F: Fn(&TransactionSet, &TransactionSet) -> f64 + Sync,
{
    assert!(!reference.is_empty(), "reference must be non-empty");
    assert!(reps >= 1, "need at least one replicate to calibrate");
    assert!(block_size > 0, "block size must be positive");
    // Same contract as `ChangeMonitor::new_par`: an alarm threshold below
    // the null median makes no statistical sense.
    assert!(
        (0.5..1.0).contains(&quantile),
        "quantile must be in [0.5, 1)"
    );
    let null: Vec<f64> = map_indices(par, reps, |rep| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, rep as u64));
        let idx = resample_indices(reference.len(), block_size, &mut rng);
        let pseudo = reference.subset(&idx);
        pipeline(reference, &pseudo)
    });
    // `map_indices` returns replicates in index order, so a NaN's position
    // *is* the replicate that produced it — name it instead of letting an
    // opaque comparator panic surface from inside the sort.
    if let Some(rep) = null.iter().position(|d| d.is_nan()) {
        panic!(
            "calibration replicate {rep} (seed {}) produced a NaN deviation; \
             the pipeline must return finite values",
            derive_seed(seed, rep as u64)
        );
    }
    let mut null = null;
    null.sort_by(f64::total_cmp);
    let pos = ((quantile * null.len() as f64).ceil() as usize).clamp(1, null.len()) - 1;
    null[pos]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Item-frequency deviation: a cheap stand-in for the full mining
    /// pipeline in tests.
    fn freq_deviation(a: &TransactionSet, b: &TransactionSet) -> f64 {
        let hist = |d: &TransactionSet| {
            let mut h = vec![0.0f64; d.n_items() as usize];
            for t in d.iter() {
                for &i in t {
                    h[i as usize] += 1.0;
                }
            }
            let n = d.len().max(1) as f64;
            h.iter_mut().for_each(|x| *x /= n);
            h
        };
        let ha = hist(a);
        let hb = hist(b);
        ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum()
    }

    fn block(seed: u64, n: usize, p0: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(6);
        for _ in 0..n {
            let mut t = Vec::new();
            if rng.gen::<f64>() < p0 {
                t.push(0);
            }
            if rng.gen::<f64>() < 0.4 {
                t.push(1);
            }
            if rng.gen::<f64>() < 0.2 {
                t.push(2);
            }
            ts.push(t);
        }
        ts
    }

    #[test]
    fn quiet_stream_raises_no_alarm() {
        let reference = block(1, 2000, 0.5);
        let mut mon = ChangeMonitor::new(reference, 400, 0.99, 50, 7, freq_deviation);
        let mut alarms = 0;
        for i in 0..10 {
            if mon.observe(&block(100 + i, 400, 0.5)).drifted {
                alarms += 1;
            }
        }
        assert!(alarms <= 1, "{alarms} false alarms on a quiet stream");
        assert_eq!(mon.history_len(), 10);
        assert_eq!(mon.observed(), 10);
    }

    #[test]
    fn history_is_bounded_and_indices_stay_global() {
        let reference = block(1, 500, 0.5);
        let mut mon =
            ChangeMonitor::new(reference, 100, 0.99, 10, 7, freq_deviation).with_history_cap(3);
        for i in 0..8 {
            let v = mon.observe(&block(100 + i, 100, 0.5));
            assert_eq!(v.index as u64, i, "indices count every observed block");
        }
        // Regression: the history used to grow without bound.
        assert_eq!(mon.history_len(), 3);
        assert_eq!(mon.observed(), 8);
        let retained: Vec<usize> = mon.history().map(|v| v.index).collect();
        assert_eq!(retained, vec![5, 6, 7], "oldest verdicts are dropped");

        let drained = mon.drain_history();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].index, 5);
        assert_eq!(mon.history_len(), 0);
        assert_eq!(mon.observed(), 8, "draining does not rewind the stream");
        let v = mon.observe(&block(200, 100, 0.5));
        assert_eq!(v.index, 8, "indices keep counting after a drain");
    }

    #[test]
    fn zero_history_cap_keeps_nothing_but_still_scores() {
        let reference = block(1, 500, 0.5);
        let mut mon =
            ChangeMonitor::new(reference, 100, 0.99, 10, 7, freq_deviation).with_history_cap(0);
        for i in 0..4 {
            mon.observe(&block(300 + i, 100, 0.5));
        }
        assert_eq!(mon.history_len(), 0);
        assert_eq!(mon.observed(), 4);
    }

    #[test]
    fn history_cap_never_changes_scores_or_thresholds() {
        // Re-baseline seeds derive from the *observed* count, not the
        // retained history length, so a capped monitor must reproduce an
        // uncapped one bit-for-bit even across recalibrations.
        let run = |cap: usize| -> Vec<(u64, u64, bool)> {
            let mut mon = ChangeMonitor::new(block(1, 500, 0.2), 100, 0.9, 10, 7, freq_deviation)
                .with_rebaseline()
                .with_history_cap(cap);
            (0..6)
                .map(|i| {
                    // Alternate regimes to force repeated re-baselines.
                    let p0 = if i % 2 == 0 { 0.9 } else { 0.2 };
                    let v = mon.observe(&block(400 + i, 100, p0));
                    (v.deviation.to_bits(), v.threshold.to_bits(), v.drifted)
                })
                .collect()
        };
        assert_eq!(run(2), run(usize::MAX));
    }

    #[test]
    fn drifting_block_raises_alarm() {
        let reference = block(1, 2000, 0.5);
        let mut mon = ChangeMonitor::new(reference, 400, 0.99, 50, 7, freq_deviation);
        assert!(!mon.observe(&block(50, 400, 0.5)).drifted);
        let v = mon.observe(&block(51, 400, 0.95));
        assert!(v.drifted, "dev {} ≤ threshold {}", v.deviation, v.threshold);
    }

    #[test]
    fn rebaseline_adapts_to_the_new_regime() {
        let reference = block(1, 2000, 0.2);
        let mut mon =
            ChangeMonitor::new(reference, 500, 0.99, 50, 7, freq_deviation).with_rebaseline();
        // Regime change: p0 jumps to 0.9 and stays there.
        assert!(mon.observe(&block(60, 500, 0.9)).drifted);
        // After re-baselining, further 0.9-blocks are business as usual.
        let follow = mon.observe(&block(61, 500, 0.9));
        assert!(
            !follow.drifted,
            "post-rebaseline block flagged: dev {} thr {}",
            follow.deviation, follow.threshold
        );
    }

    #[test]
    fn without_rebaseline_the_drift_keeps_alarming() {
        let reference = block(1, 2000, 0.2);
        let mut mon = ChangeMonitor::new(reference, 500, 0.99, 50, 7, freq_deviation);
        assert!(mon.observe(&block(60, 500, 0.9)).drifted);
        assert!(mon.observe(&block(61, 500, 0.9)).drifted);
    }

    #[test]
    fn threshold_scales_with_quantile() {
        let reference = block(3, 2000, 0.5);
        let strict = ChangeMonitor::new(reference.clone(), 400, 0.99, 50, 7, freq_deviation);
        let lax = ChangeMonitor::new(reference, 400, 0.8, 50, 7, freq_deviation);
        assert!(strict.threshold() >= lax.threshold());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        let reference = block(1, 100, 0.5);
        ChangeMonitor::new(reference, 10, 1.5, 50, 7, freq_deviation);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0.5, 1)")]
    fn calibration_shares_the_monitor_quantile_contract() {
        // Regression: `calibrate_threshold_par` used to accept [0, 1)
        // while the monitor constructor demanded [0.5, 1).
        let reference = block(1, 100, 0.5);
        calibrate_threshold_par(
            &reference,
            10,
            0.2,
            10,
            7,
            Parallelism::Sequential,
            &freq_deviation,
        );
    }

    #[test]
    #[should_panic(expected = "calibration replicate 0")]
    fn nan_pipeline_names_the_offending_replicate() {
        let reference = block(1, 100, 0.5);
        calibrate_threshold_par(
            &reference,
            10,
            0.9,
            10,
            7,
            Parallelism::Sequential,
            &|_: &TransactionSet, _: &TransactionSet| f64::NAN,
        );
    }
}
