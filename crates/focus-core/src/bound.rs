//! The upper bound `δ*` for lits-model deviations (Section 4.1.1,
//! Definition 4.1, Theorem 4.2).
//!
//! Computing the exact deviation requires scanning both datasets to obtain
//! the support, in each dataset, of itemsets frequent only in the other.
//! `δ*` replaces those unknown supports with the most pessimistic value
//! consistent with the models — `0` — which:
//!
//! 1. upper-bounds `δ(f_a, g)` for `g ∈ {sum, max}` (an unknown support is
//!    `< ms ≤` the known one, so `|known − 0| ≥ |known − unknown|`);
//! 2. satisfies the triangle inequality, so `δ*` can embed a collection of
//!    datasets into a metric space for visual comparison;
//! 3. needs only the two models — no data scan — making it effectively
//!    instantaneous in an exploratory loop (the "Time for δ*" column of
//!    Figure 13).

use crate::diff::AggFn;
use crate::gcr::gcr_lits;
use crate::model::LitsModel;

/// The upper bound `δ*(g)(M1, M2)` of Definition 4.1.
///
/// For each itemset `X` in the GCR (= union of the structures):
/// * frequent in both models → `f_a(σ1, σ2)`;
/// * frequent only in `M1` → `f_a(σ1, 0) = σ1`;
/// * frequent only in `M2` → `f_a(0, σ2) = σ2`;
///
/// aggregated by `g ∈ {sum, max}`.
pub fn lits_upper_bound(m1: &LitsModel, m2: &LitsModel, g: AggFn) -> f64 {
    let gcr = gcr_lits(m1.itemsets(), m2.itemsets());
    g.eval(
        gcr.iter()
            .map(|x| match (m1.support_of(x), m2.support_of(x)) {
                (Some(s1), Some(s2)) => (s1 - s2).abs(),
                (Some(s1), None) => s1,
                (None, Some(s2)) => s2,
                (None, None) => unreachable!("GCR itemset missing from both models"),
            }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::TransactionSet;
    use crate::diff::DiffFn;
    use crate::model::induce_lits_measures;
    use crate::region::Itemset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(seed: u64, n: usize, skew: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(8);
        for _ in 0..n {
            let mut t = Vec::new();
            for item in 0..8u32 {
                let p = 0.15 + skew * (item as f64 / 8.0) * 0.4;
                if rng.gen::<f64>() < p {
                    t.push(item);
                }
            }
            ts.push(t);
        }
        ts
    }

    /// Mines the exact frequent itemsets of a tiny dataset by enumeration.
    fn brute_force_model(data: &TransactionSet, minsup: f64) -> LitsModel {
        let n_items = data.n_items();
        let mut frequent: Vec<Itemset> = Vec::new();
        // Enumerate all non-empty subsets of the 8-item universe.
        for mask in 1u32..(1 << n_items) {
            let items: Vec<u32> = (0..n_items).filter(|i| mask & (1 << i) != 0).collect();
            frequent.push(Itemset::new(items));
        }
        let counts = crate::model::count_itemsets(data, &frequent);
        let n = data.len() as f64;
        let keep: Vec<(Itemset, f64)> = frequent
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c as f64 / n >= minsup)
            .map(|(s, c)| (s, c as f64 / n))
            .collect();
        let (sets, sups): (Vec<_>, Vec<_>) = keep.into_iter().unzip();
        LitsModel::new(sets, sups, minsup, data.len() as u64)
    }

    #[test]
    fn bound_dominates_true_deviation() {
        // Theorem 4.2 (1): δ*(g) ≥ δ(f_a, g) on real data, both aggregates.
        for seed in 0..5u64 {
            let d1 = random_dataset(seed, 400, 0.0);
            let d2 = random_dataset(seed + 100, 400, 1.0);
            let m1 = brute_force_model(&d1, 0.2);
            let m2 = brute_force_model(&d2, 0.2);
            for g in [AggFn::Sum, AggFn::Max] {
                let bound = lits_upper_bound(&m1, &m2, g);
                let exact =
                    crate::deviation::lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
                assert!(
                    bound >= exact - 1e-12,
                    "seed {seed} {g:?}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn bound_is_exact_for_identical_structures() {
        // When both models share one structure there are no unknown
        // supports and δ* = δ(f_a, g).
        let d1 = random_dataset(1, 300, 0.0);
        let m1 = brute_force_model(&d1, 0.2);
        // Re-measure the same structure on a second dataset.
        let d2 = random_dataset(2, 300, 0.0);
        let m2 = induce_lits_measures(m1.itemsets().to_vec(), m1.minsup(), &d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = lits_upper_bound(&m1, &m2, g);
            let exact =
                crate::deviation::lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            assert!((bound - exact).abs() < 1e-12, "{g:?}: {bound} vs {exact}");
        }
    }

    #[test]
    fn bound_triangle_inequality() {
        // Theorem 4.2 (2): δ*(g)(A, C) ≤ δ*(g)(A, B) + δ*(g)(B, C).
        let models: Vec<LitsModel> = (0..4u64)
            .map(|s| brute_force_model(&random_dataset(s, 300, s as f64 / 3.0), 0.2))
            .collect();
        for g in [AggFn::Sum, AggFn::Max] {
            for a in 0..models.len() {
                for b in 0..models.len() {
                    for c in 0..models.len() {
                        let ab = lits_upper_bound(&models[a], &models[b], g);
                        let bc = lits_upper_bound(&models[b], &models[c], g);
                        let ac = lits_upper_bound(&models[a], &models[c], g);
                        assert!(
                            ac <= ab + bc + 1e-12,
                            "{g:?} triangle violated: {ac} > {ab} + {bc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_symmetry_and_identity() {
        let d1 = random_dataset(7, 300, 0.2);
        let d2 = random_dataset(8, 300, 0.8);
        let m1 = brute_force_model(&d1, 0.2);
        let m2 = brute_force_model(&d2, 0.2);
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(lits_upper_bound(&m1, &m2, g), lits_upper_bound(&m2, &m1, g));
            assert_eq!(lits_upper_bound(&m1, &m1, g), 0.0);
        }
    }

    #[test]
    fn bound_needs_no_datasets() {
        // δ* is a pure function of the two models: constructing models with
        // hand-written supports suffices.
        let m1 = LitsModel::new(
            vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[1])],
            vec![0.5, 0.4],
            0.3,
            100,
        );
        let m2 = LitsModel::new(
            vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[2])],
            vec![0.35, 0.6],
            0.3,
            100,
        );
        // |0.5−0.35| + 0.4 (only in m1) + 0.6 (only in m2) = 1.15
        let b = lits_upper_bound(&m1, &m2, AggFn::Sum);
        assert!((b - 1.15).abs() < 1e-12, "got {b}");
        let b = lits_upper_bound(&m1, &m2, AggFn::Max);
        assert!((b - 0.6).abs() < 1e-12, "got {b}");
    }
}
