//! Model-only upper bounds `δ*` on the deviation (Section 4.1.1,
//! Definition 4.1, Theorem 4.2) — one per model family.
//!
//! Computing the exact deviation requires scanning both datasets to obtain
//! the measure, in each dataset, of regions known only to the other model.
//! `δ*` replaces those unknown measures with the most pessimistic value
//! consistent with the models alone, which:
//!
//! 1. upper-bounds `δ(f_a, g)` for `g ∈ {sum, max}` (see each bound's
//!    dominance argument);
//! 2. for [`lits_upper_bound`] and [`dt_upper_bound`] also satisfies the
//!    triangle inequality (both are an `L1`/`L∞` distance between sparse
//!    measure vectors), so `δ*` embeds a collection of snapshots into a
//!    metric space and supports triangle-inequality pruning;
//!    [`cluster_upper_bound`] does **not** — overlapping clusters make
//!    `δ*(A, A) > 0`;
//! 3. needs only the two models — no data scan — making it effectively
//!    instantaneous in an exploratory loop (the "Time for δ*" column of
//!    Figure 13).
//!
//! Every bound returns `0.0` for a pair of empty models: the aggregate of
//! zero regions is the empty sum/max, which [`AggFn::eval`] defines as `0`,
//! never NaN or `−∞`.

use crate::diff::AggFn;
use crate::gcr::{gcr_lits, remainders};
use crate::model::{ClusterModel, DtModel, LitsModel};

/// The upper bound `δ*(g)(M1, M2)` of Definition 4.1.
///
/// For each itemset `X` in the GCR (= union of the structures):
/// * frequent in both models → `f_a(σ1, σ2)`;
/// * frequent only in `M1` → `f_a(σ1, 0) = σ1`;
/// * frequent only in `M2` → `f_a(0, σ2) = σ2`;
///
/// aggregated by `g ∈ {sum, max}`.
pub fn lits_upper_bound(m1: &LitsModel, m2: &LitsModel, g: AggFn) -> f64 {
    let gcr = gcr_lits(m1.itemsets(), m2.itemsets());
    g.eval(
        gcr.iter()
            .map(|x| match (m1.support_of(x), m2.support_of(x)) {
                (Some(s1), Some(s2)) => (s1 - s2).abs(),
                (Some(s1), None) => s1,
                (None, Some(s2)) => s2,
                (None, None) => unreachable!("GCR itemset missing from both models"),
            }),
    )
}

/// The leaf-mass upper bound `δ*(g)(T1, T2)` for dt-models — Definition 4.1
/// carried over to the partition overlay of Definition 4.2.
///
/// Treat each model as a sparse vector over `(leaf box, class)` keys whose
/// entry is the model's `[leaf][class]` measure; δ* is the `L1` (`g_sum`)
/// or `L∞` (`g_max`) distance between the two vectors, with a key missing
/// from one model read as `0`:
///
/// * a leaf box present in **both** models contributes
///   `|σ1(B, k) − σ2(B, k)|` per class — the *exact* per-region value: both
///   partitions contain `B` and partitions are disjoint, so `B` is its own
///   GCR cell (`B ∩ B' = ∅` for every other leaf `B'` of either model) and
///   the engine's scan measures exactly the masses the models record;
/// * an **unmatched** leaf contributes its full per-class mass — the
///   pessimistic `0` for the other side, exactly as the lits bound treats
///   an itemset frequent in only one model.
///
/// **Dominance** (`δ(f_a, g) ≤ δ*(g)`, the Theorem 4.2 (1) analogue): every
/// unmatched GCR cell is `a_i ∩ b_j` with *both* parents unmatched (a
/// matched parent's other intersections are empty, see above). Per class,
/// `|σ1(cell) − σ2(cell)| ≤ σ1(cell) + σ2(cell)`, and because the other
/// model's partition is exhaustive, those cell masses sum — over the cells
/// refining each unmatched leaf — to exactly the leaf masses the bound
/// charges, for `g_sum`; for `g_max` each cell's value is dominated by
/// `max(σ1(a_i, k), σ2(b_j, k))`, which some unmatched leaf term of the
/// bound dominates in turn. Matched cells are exact. The argument needs the
/// FOCUS contract that each model's measures are its leaves' per-class
/// selectivities in its paired dataset, `f = f_a`, and a shared class count
/// — [`crate::family::DtFamily::bound_dominates`] gates on the checkable
/// parts.
///
/// **Metric**: an `L1`/`L∞` distance between fixed vectors is a
/// pseudo-metric — symmetric, `δ*(T, T) = 0`, triangle inequality — so dt
/// collections embed under δ* and support triangle pruning.
pub fn dt_upper_bound(m1: &DtModel, m2: &DtModel, g: AggFn) -> f64 {
    // Greedy first-match by box equality; duplicate leaf boxes (degenerate
    // inputs — a real partition never repeats a box) pair off one-to-one.
    let mut matched2 = vec![false; m2.leaves().len()];
    let mut match_of1: Vec<Option<usize>> = Vec::with_capacity(m1.leaves().len());
    for a in m1.leaves() {
        let hit = m2
            .leaves()
            .iter()
            .enumerate()
            .position(|(j, b)| !matched2[j] && a == b);
        if let Some(j) = hit {
            matched2[j] = true;
        }
        match_of1.push(hit);
    }
    let (k1, k2) = (m1.n_classes(), m2.n_classes());
    let mut terms: Vec<f64> = Vec::new();
    for (i, matched) in match_of1.iter().enumerate() {
        match matched {
            // Matched leaf: per-class difference of the recorded masses,
            // classes beyond either model's count reading as 0.
            Some(j) => {
                for k in 0..k1.max(k2) {
                    let v1 = if k < k1 { m1.measure(i, k) } else { 0.0 };
                    let v2 = if k < k2 { m2.measure(*j, k) } else { 0.0 };
                    terms.push((v1 - v2).abs());
                }
            }
            // Unmatched leaf of m1: full per-class mass.
            None => terms.extend((0..k1).map(|k| m1.measure(i, k))),
        }
    }
    for (j, taken) in matched2.iter().enumerate() {
        if !taken {
            terms.extend((0..k2).map(|k| m2.measure(j, k)));
        }
    }
    g.eval(terms)
}

/// The centroid-mass/box-overlap upper bound `δ*(g)(C1, C2)` for
/// cluster-models.
///
/// Replicates the GCR piece decomposition of [`crate::gcr::gcr_boxes`]
/// (intersections `a_i ∩ b_j`, then remainders of each side) and charges
/// every piece a model-only upper bound on its per-region `f_a` value:
///
/// * an intersection of two *identical* boxes (`a_i == b_j`) is the box
///   itself, so its per-region value is exactly `|m1_i − m2_j|`;
/// * any other non-empty intersection is dominated by
///   `max(σ1(piece), σ2(piece)) ≤ max(m1_i, m2_j)` — a piece of a cluster
///   holds at most the cluster's mass;
/// * a remainder piece of `a_i` lies *outside every cluster of `C2`*, so
///   its `σ2` is at most the mass `C2` leaves uncovered:
///   `û2 = 1 − coverage(C2)`, where the model-only coverage lower bound is
///   `Σ_j m2_j` when `C2`'s boxes are pairwise disjoint (the box-overlap
///   check) and `max_j m2_j` otherwise; the piece is charged
///   `max(m1_i, û2)` — and symmetrically for `C2`'s remainders.
///
/// **Dominance** (`δ(f_a, g) ≤ δ*(g)`): the bound dominates the engine's
/// exact value *region by region* over the identical GCR piece list, so it
/// dominates both the `g_sum` and the `g_max` aggregate. The argument needs
/// the FOCUS contract that each model's measures are its cluster boxes'
/// selectivities in its paired dataset (the exact analogue of lits
/// supports; `f = f_a` is checked by
/// [`crate::family::ClusterFamily::bound_dominates`]).
///
/// **Not a metric**: `δ*(C, C) > 0` whenever `C`'s clusters overlap (the
/// cross pieces `a_i ∩ a_j` are charged `max(m_i, m_j)`), so cluster
/// collections neither embed under δ* nor support triangle pruning — the
/// registry keeps using exact values for them
/// ([`crate::family::ModelFamily::BOUND_IS_METRIC`] is `false`).
pub fn cluster_upper_bound(m1: &ClusterModel, m2: &ClusterModel, g: AggFn) -> f64 {
    let (a, b) = (m1.clusters(), m2.clusters());
    let (u1, u2) = (m1.measures(), m2.measures());
    let uncovered = |boxes: &[crate::region::BoxRegion], masses: &[f64]| -> f64 {
        let disjoint = boxes
            .iter()
            .enumerate()
            .all(|(i, p)| boxes[i + 1..].iter().all(|q| p.intersect(q).is_none()));
        let covered = if disjoint {
            masses.iter().sum::<f64>()
        } else {
            masses.iter().fold(0.0, |m, &x| f64::max(m, x))
        };
        (1.0 - covered).clamp(0.0, 1.0)
    };
    let hat1 = uncovered(a, u1);
    let hat2 = uncovered(b, u2);
    let mut terms: Vec<f64> = Vec::new();
    // Group 1: pairwise intersections, in gcr_boxes' nested-loop order.
    for (i, ra) in a.iter().enumerate() {
        for (j, rb) in b.iter().enumerate() {
            if ra.intersect(rb).is_some() {
                terms.push(if ra == rb {
                    (u1[i] - u2[j]).abs()
                } else {
                    u1[i].max(u2[j])
                });
            }
        }
    }
    // Groups 2 and 3: one term per remainder piece, with the piece's own
    // parent mass against the other side's uncovered-mass bound.
    for (i, ra) in a.iter().enumerate() {
        let pieces = remainders(std::slice::from_ref(ra), b).len();
        terms.extend(std::iter::repeat_n(u1[i].max(hat2), pieces));
    }
    for (j, rb) in b.iter().enumerate() {
        let pieces = remainders(std::slice::from_ref(rb), a).len();
        terms.extend(std::iter::repeat_n(hat1.max(u2[j]), pieces));
    }
    g.eval(terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{LabeledTable, Schema, Table, TransactionSet, Value};
    use crate::diff::DiffFn;
    use crate::model::{induce_dt_measures, induce_lits_measures};
    use crate::region::{BoxBuilder, BoxRegion, Itemset};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_dataset(seed: u64, n: usize, skew: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(8);
        for _ in 0..n {
            let mut t = Vec::new();
            for item in 0..8u32 {
                let p = 0.15 + skew * (item as f64 / 8.0) * 0.4;
                if rng.gen::<f64>() < p {
                    t.push(item);
                }
            }
            ts.push(t);
        }
        ts
    }

    /// Mines the exact frequent itemsets of a tiny dataset by enumeration.
    fn brute_force_model(data: &TransactionSet, minsup: f64) -> LitsModel {
        let n_items = data.n_items();
        let mut frequent: Vec<Itemset> = Vec::new();
        // Enumerate all non-empty subsets of the 8-item universe.
        for mask in 1u32..(1 << n_items) {
            let items: Vec<u32> = (0..n_items).filter(|i| mask & (1 << i) != 0).collect();
            frequent.push(Itemset::new(items));
        }
        let counts = crate::model::count_itemsets(data, &frequent);
        let n = data.len() as f64;
        let keep: Vec<(Itemset, f64)> = frequent
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c as f64 / n >= minsup)
            .map(|(s, c)| (s, c as f64 / n))
            .collect();
        let (sets, sups): (Vec<_>, Vec<_>) = keep.into_iter().unzip();
        LitsModel::new(sets, sups, minsup, data.len() as u64)
    }

    #[test]
    fn bound_dominates_true_deviation() {
        // Theorem 4.2 (1): δ*(g) ≥ δ(f_a, g) on real data, both aggregates.
        for seed in 0..5u64 {
            let d1 = random_dataset(seed, 400, 0.0);
            let d2 = random_dataset(seed + 100, 400, 1.0);
            let m1 = brute_force_model(&d1, 0.2);
            let m2 = brute_force_model(&d2, 0.2);
            for g in [AggFn::Sum, AggFn::Max] {
                let bound = lits_upper_bound(&m1, &m2, g);
                let exact =
                    crate::deviation::lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
                assert!(
                    bound >= exact - 1e-12,
                    "seed {seed} {g:?}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn bound_is_exact_for_identical_structures() {
        // When both models share one structure there are no unknown
        // supports and δ* = δ(f_a, g).
        let d1 = random_dataset(1, 300, 0.0);
        let m1 = brute_force_model(&d1, 0.2);
        // Re-measure the same structure on a second dataset.
        let d2 = random_dataset(2, 300, 0.0);
        let m2 = induce_lits_measures(m1.itemsets().to_vec(), m1.minsup(), &d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = lits_upper_bound(&m1, &m2, g);
            let exact =
                crate::deviation::lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            assert!((bound - exact).abs() < 1e-12, "{g:?}: {bound} vs {exact}");
        }
    }

    #[test]
    fn bound_triangle_inequality() {
        // Theorem 4.2 (2): δ*(g)(A, C) ≤ δ*(g)(A, B) + δ*(g)(B, C).
        let models: Vec<LitsModel> = (0..4u64)
            .map(|s| brute_force_model(&random_dataset(s, 300, s as f64 / 3.0), 0.2))
            .collect();
        for g in [AggFn::Sum, AggFn::Max] {
            for a in 0..models.len() {
                for b in 0..models.len() {
                    for c in 0..models.len() {
                        let ab = lits_upper_bound(&models[a], &models[b], g);
                        let bc = lits_upper_bound(&models[b], &models[c], g);
                        let ac = lits_upper_bound(&models[a], &models[c], g);
                        assert!(
                            ac <= ab + bc + 1e-12,
                            "{g:?} triangle violated: {ac} > {ab} + {bc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_symmetry_and_identity() {
        let d1 = random_dataset(7, 300, 0.2);
        let d2 = random_dataset(8, 300, 0.8);
        let m1 = brute_force_model(&d1, 0.2);
        let m2 = brute_force_model(&d2, 0.2);
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(lits_upper_bound(&m1, &m2, g), lits_upper_bound(&m2, &m1, g));
            assert_eq!(lits_upper_bound(&m1, &m1, g), 0.0);
        }
    }

    #[test]
    fn bound_needs_no_datasets() {
        // δ* is a pure function of the two models: constructing models with
        // hand-written supports suffices.
        let m1 = LitsModel::new(
            vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[1])],
            vec![0.5, 0.4],
            0.3,
            100,
        );
        let m2 = LitsModel::new(
            vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[2])],
            vec![0.35, 0.6],
            0.3,
            100,
        );
        // |0.5−0.35| + 0.4 (only in m1) + 0.6 (only in m2) = 1.15
        let b = lits_upper_bound(&m1, &m2, AggFn::Sum);
        assert!((b - 1.15).abs() < 1e-12, "got {b}");
        let b = lits_upper_bound(&m1, &m2, AggFn::Max);
        assert!((b - 0.6).abs() < 1e-12, "got {b}");
    }

    // ---- dt bound -------------------------------------------------------

    fn schema2d() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]))
    }

    fn labeled_data(seed: u64, n: usize) -> LabeledTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = LabeledTable::new(schema2d(), 2);
        for _ in 0..n {
            let x = rng.gen::<f64>() * 100.0;
            let y = rng.gen::<f64>() * 100.0;
            t.push_row(&[Value::Num(x), Value::Num(y)], u32::from(x + y > 100.0));
        }
        t
    }

    fn split_partition(s: &Arc<Schema>, attr: &str, at: f64) -> Vec<BoxRegion> {
        vec![
            BoxBuilder::new(s).lt(attr, at).build(),
            BoxBuilder::new(s).ge(attr, at).build(),
        ]
    }

    #[test]
    fn dt_bound_dominates_true_deviation() {
        let s = schema2d();
        for seed in 0..5u64 {
            let d1 = labeled_data(seed, 400);
            let d2 = labeled_data(seed + 100, 400);
            let m1 = induce_dt_measures(split_partition(&s, "x", 20.0 + seed as f64 * 10.0), &d1);
            let m2 = induce_dt_measures(split_partition(&s, "y", 65.0 - seed as f64 * 10.0), &d2);
            for g in [AggFn::Sum, AggFn::Max] {
                let bound = dt_upper_bound(&m1, &m2, g);
                let exact =
                    crate::deviation::dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
                assert!(
                    bound >= exact - 1e-12,
                    "seed {seed} {g:?}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn dt_bound_exact_for_shared_structure() {
        // When both trees have the same leaf partition every leaf matches,
        // every GCR cell is a shared leaf, and δ* = δ(f_a, g) exactly.
        let s = schema2d();
        let d1 = labeled_data(11, 300);
        let d2 = labeled_data(12, 300);
        let leaves = split_partition(&s, "x", 40.0);
        let m1 = induce_dt_measures(leaves.clone(), &d1);
        let m2 = induce_dt_measures(leaves, &d2);
        for g in [AggFn::Sum, AggFn::Max] {
            let bound = dt_upper_bound(&m1, &m2, g);
            let exact =
                crate::deviation::dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g).value;
            assert!((bound - exact).abs() < 1e-12, "{g:?}: {bound} vs {exact}");
        }
    }

    #[test]
    fn dt_bound_triangle_inequality() {
        let s = schema2d();
        let models: Vec<DtModel> = (0..4u64)
            .map(|i| {
                let d = labeled_data(i + 20, 300);
                let (attr, at) = if i % 2 == 0 {
                    ("x", 25.0 + i as f64 * 15.0)
                } else {
                    ("y", 70.0 - i as f64 * 15.0)
                };
                induce_dt_measures(split_partition(&s, attr, at), &d)
            })
            .collect();
        for g in [AggFn::Sum, AggFn::Max] {
            for a in 0..models.len() {
                for b in 0..models.len() {
                    for c in 0..models.len() {
                        let ab = dt_upper_bound(&models[a], &models[b], g);
                        let bc = dt_upper_bound(&models[b], &models[c], g);
                        let ac = dt_upper_bound(&models[a], &models[c], g);
                        assert!(
                            ac <= ab + bc + 1e-12,
                            "{g:?} triangle violated: {ac} > {ab} + {bc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn dt_bound_symmetry_identity_and_hand_check() {
        let s = schema2d();
        let m1 = DtModel::new(
            split_partition(&s, "x", 30.0),
            2,
            vec![0.3, 0.2, 0.1, 0.4],
            100,
        );
        let m2 = DtModel::new(
            split_partition(&s, "x", 50.0),
            2,
            vec![0.25, 0.25, 0.25, 0.25],
            80,
        );
        let m3 = DtModel::new(
            split_partition(&s, "x", 30.0),
            2,
            vec![0.1, 0.4, 0.3, 0.2],
            60,
        );
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(dt_upper_bound(&m1, &m2, g), dt_upper_bound(&m2, &m1, g));
            assert_eq!(dt_upper_bound(&m1, &m1, g), 0.0);
        }
        // m1 vs m2: no leaf matches — all eight masses are charged.
        let b = dt_upper_bound(&m1, &m2, AggFn::Sum);
        assert!((b - 2.0).abs() < 1e-12, "got {b}");
        let b = dt_upper_bound(&m1, &m2, AggFn::Max);
        assert!((b - 0.4).abs() < 1e-12, "got {b}");
        // m1 vs m3: both leaves match — per-class |difference|s only.
        let b = dt_upper_bound(&m1, &m3, AggFn::Sum);
        assert!((b - 0.8).abs() < 1e-12, "got {b}");
        let b = dt_upper_bound(&m1, &m3, AggFn::Max);
        assert!((b - 0.2).abs() < 1e-12, "got {b}");
    }

    #[test]
    fn dt_bound_handles_unequal_class_counts() {
        // The bound stays total (reads missing classes as 0) even though
        // the exact engine — and bound_dominates — require equal counts.
        let s = schema2d();
        let leaves = split_partition(&s, "x", 30.0);
        let m1 = DtModel::new(leaves.clone(), 2, vec![0.3, 0.2, 0.1, 0.4], 100);
        let m2 = DtModel::new(leaves, 3, vec![0.2, 0.2, 0.1, 0.1, 0.2, 0.2], 100);
        // Leaf 0: |0.3−0.2| + |0.2−0.2| + |0−0.1| = 0.2
        // Leaf 1: |0.1−0.1| + |0.4−0.2| + |0−0.2| = 0.4
        let b = dt_upper_bound(&m1, &m2, AggFn::Sum);
        assert!((b - 0.6).abs() < 1e-12, "got {b}");
        let b = dt_upper_bound(&m1, &m2, AggFn::Max);
        assert!((b - 0.2).abs() < 1e-12, "got {b}");
    }

    // ---- cluster bound --------------------------------------------------

    fn points(seed: u64, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Table::new(schema2d());
        for _ in 0..n {
            t.push_row(&[
                Value::Num(rng.gen::<f64>() * 100.0),
                Value::Num(rng.gen::<f64>() * 100.0),
            ]);
        }
        t
    }

    /// Builds a cluster-model honouring the dominance contract: each
    /// measure is its box's *selectivity* in the paired dataset.
    fn cluster_model_sel(data: &Table, boxes: Vec<BoxRegion>) -> ClusterModel {
        let n = data.len().max(1) as f64;
        let measures = boxes
            .iter()
            .map(|b| data.rows().filter(|r| b.contains(r)).count() as f64 / n)
            .collect();
        ClusterModel::new(boxes, measures, data.len() as u64)
    }

    #[test]
    fn cluster_bound_dominates_true_deviation() {
        let s = schema2d();
        for seed in 0..5u64 {
            let d1 = points(seed, 400);
            let d2 = points(seed + 100, 400);
            let off = seed as f64 * 5.0;
            // Disjoint boxes in m1; m2's second box overlaps its first.
            let m1 = cluster_model_sel(
                &d1,
                vec![
                    BoxBuilder::new(&s)
                        .range("x", 0.0, 40.0)
                        .range("y", 0.0, 40.0)
                        .build(),
                    BoxBuilder::new(&s)
                        .range("x", 60.0, 100.0)
                        .range("y", 60.0, 100.0)
                        .build(),
                ],
            );
            let m2 = cluster_model_sel(
                &d2,
                vec![
                    BoxBuilder::new(&s)
                        .range("x", off, 50.0 + off)
                        .range("y", 0.0, 50.0)
                        .build(),
                    BoxBuilder::new(&s)
                        .range("x", 30.0, 90.0)
                        .range("y", 30.0, 90.0)
                        .build(),
                ],
            );
            for g in [AggFn::Sum, AggFn::Max] {
                let bound = cluster_upper_bound(&m1, &m2, g);
                let exact =
                    crate::deviation::cluster_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, g)
                        .value;
                assert!(
                    bound >= exact - 1e-12,
                    "seed {seed} {g:?}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn cluster_bound_exact_for_identical_disjoint_models() {
        // Identical models with pairwise-disjoint boxes: every intersection
        // pairs a box with its own copy (exact term 0) and every remainder
        // is empty (each box is subtracted by its own copy), so δ* = 0.
        let s = schema2d();
        let d = points(42, 300);
        let m = cluster_model_sel(
            &d,
            vec![
                BoxBuilder::new(&s).range("x", 0.0, 30.0).build(),
                BoxBuilder::new(&s).range("x", 50.0, 80.0).build(),
            ],
        );
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(cluster_upper_bound(&m, &m, g), 0.0);
        }
    }

    #[test]
    fn cluster_bound_is_not_a_metric() {
        // δ*(A, A) > 0 when A's clusters overlap: the cross-intersections
        // a_0 ∩ a_1 are charged max(m_0, m_1), not 0. This is why
        // ClusterFamily::BOUND_IS_METRIC is false.
        let s = schema2d();
        let a = ClusterModel::new(
            vec![
                BoxBuilder::new(&s).range("x", 0.0, 10.0).build(),
                BoxBuilder::new(&s).range("x", 5.0, 15.0).build(),
            ],
            vec![0.5, 0.5],
            100,
        );
        for g in [AggFn::Sum, AggFn::Max] {
            assert!(
                cluster_upper_bound(&a, &a, g) > 0.0,
                "{g:?}: overlapping self-bound must be positive"
            );
        }
    }

    #[test]
    fn cluster_bound_symmetry_and_hand_check() {
        let s = schema2d();
        // a: one box [0,10) with mass 0.4; b: one box [20,30) with mass 0.3.
        // Disjoint, so coverage bounds are û_a = 0.6, û_b = 0.7. GCR: no
        // intersections, one remainder piece per side:
        //   a's remainder → max(0.4, û_b = 0.7) = 0.7
        //   b's remainder → max(û_a = 0.6, 0.3) = 0.6
        let a = ClusterModel::new(
            vec![BoxBuilder::new(&s).range("x", 0.0, 10.0).build()],
            vec![0.4],
            100,
        );
        let b = ClusterModel::new(
            vec![BoxBuilder::new(&s).range("x", 20.0, 30.0).build()],
            vec![0.3],
            100,
        );
        let v = cluster_upper_bound(&a, &b, AggFn::Sum);
        assert!((v - 1.3).abs() < 1e-12, "got {v}");
        let v = cluster_upper_bound(&a, &b, AggFn::Max);
        assert!((v - 0.7).abs() < 1e-12, "got {v}");
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(
                cluster_upper_bound(&a, &b, g),
                cluster_upper_bound(&b, &a, g)
            );
        }
    }

    // ---- empty-model regressions (all families) -------------------------

    #[test]
    fn empty_vs_empty_bounds_are_zero_not_nan() {
        // Regression: AggFn::Max over an empty GCR must be 0.0 — never NaN
        // or −∞ — for every family's bound.
        let l = LitsModel::new(Vec::new(), Vec::new(), 0.3, 0);
        let t = DtModel::new(Vec::new(), 1, Vec::new(), 0);
        let c = ClusterModel::new(Vec::new(), Vec::new(), 0);
        for g in [AggFn::Sum, AggFn::Max] {
            assert_eq!(lits_upper_bound(&l, &l, g), 0.0, "lits {g:?}");
            assert_eq!(dt_upper_bound(&t, &t, g), 0.0, "dt {g:?}");
            assert_eq!(cluster_upper_bound(&c, &c, g), 0.0, "cluster {g:?}");
        }
    }

    #[test]
    fn empty_vs_nonempty_bounds_are_finite_and_dominate() {
        let s = schema2d();
        let l0 = LitsModel::new(Vec::new(), Vec::new(), 0.3, 0);
        let l1 = LitsModel::new(vec![Itemset::from_slice(&[0])], vec![0.5], 0.3, 100);
        let t0 = DtModel::new(Vec::new(), 2, Vec::new(), 0);
        let t1 = DtModel::new(
            split_partition(&s, "x", 30.0),
            2,
            vec![0.3, 0.2, 0.1, 0.4],
            100,
        );
        let c0 = ClusterModel::new(Vec::new(), Vec::new(), 0);
        let c1 = ClusterModel::new(
            vec![BoxBuilder::new(&s).range("x", 0.0, 10.0).build()],
            vec![0.4],
            100,
        );
        for g in [AggFn::Sum, AggFn::Max] {
            for v in [
                lits_upper_bound(&l0, &l1, g),
                lits_upper_bound(&l1, &l0, g),
                dt_upper_bound(&t0, &t1, g),
                dt_upper_bound(&t1, &t0, g),
                cluster_upper_bound(&c0, &c1, g),
                cluster_upper_bound(&c1, &c0, g),
            ] {
                assert!(v.is_finite() && v >= 0.0, "{g:?}: got {v}");
            }
        }
        // Spot-check the values: the nonempty side's full mass is charged.
        assert_eq!(lits_upper_bound(&l0, &l1, AggFn::Sum), 0.5);
        assert_eq!(dt_upper_bound(&t0, &t1, AggFn::Sum), 1.0);
        assert_eq!(dt_upper_bound(&t0, &t1, AggFn::Max), 0.4);
        // An empty cluster-model covers nothing (û = 1): the lone remainder
        // piece of c1's box is charged max(1, 0.4) = 1.
        assert_eq!(cluster_upper_bound(&c0, &c1, AggFn::Sum), 1.0);
        assert_eq!(cluster_upper_bound(&c0, &c1, AggFn::Max), 1.0);
    }
}
