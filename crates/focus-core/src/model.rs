//! 2-component models (Definition 3.3).
//!
//! A model `M` induced by a dataset `D` is described as
//! `⟨Γ_M, Σ(Γ_M, D)⟩`: a *structural component* `Γ_M` (set of regions) and a
//! *measure component* (the selectivity of each region w.r.t. `D`). This
//! module defines the three model classes of the paper and the measure
//! (selectivity) computations that extend a structure over a dataset —
//! the "single scan of the underlying datasets" of Section 3.3.1.

use crate::data::{LabeledTable, Table, TransactionSet};
use crate::region::{BoxRegion, Itemset};
use focus_exec::{map_chunks, merge_counts, Parallelism};
use std::collections::HashMap;

/// Minimum rows per worker chunk for the counting scans: below this,
/// thread-spawn overhead exceeds the scan itself and the scan runs inline.
pub(crate) const SCAN_GRAIN: usize = focus_exec::DEFAULT_GRAIN;

/// A lits-model: the set of frequent itemsets of a transaction dataset at a
/// minimum-support level, with their supports (Section 2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct LitsModel {
    /// Structural component: frequent itemsets, in canonical (sorted) order.
    itemsets: Vec<Itemset>,
    /// Measure component: support (selectivity) of each itemset.
    supports: Vec<f64>,
    /// The minimum support threshold `ms` the model was mined at.
    minsup: f64,
    /// Number of transactions in the inducing dataset.
    n_transactions: u64,
}

impl LitsModel {
    /// Assembles a lits-model from parallel itemset/support vectors.
    /// The itemsets are put into canonical order.
    pub fn new(
        itemsets: Vec<Itemset>,
        supports: Vec<f64>,
        minsup: f64,
        n_transactions: u64,
    ) -> Self {
        assert_eq!(itemsets.len(), supports.len(), "parallel vectors");
        assert!(
            (0.0..=1.0).contains(&minsup),
            "minsup must be a fraction, got {minsup}"
        );
        let mut pairs: Vec<(Itemset, f64)> = itemsets.into_iter().zip(supports).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        let (itemsets, supports) = pairs.into_iter().unzip();
        Self {
            itemsets,
            supports,
            minsup,
            n_transactions,
        }
    }

    /// Structural component `Γ_M`: the frequent itemsets in canonical order.
    pub fn itemsets(&self) -> &[Itemset] {
        &self.itemsets
    }

    /// Measure component, parallel to [`Self::itemsets`].
    pub fn supports(&self) -> &[f64] {
        &self.supports
    }

    /// The minimum support level the model was mined at.
    pub fn minsup(&self) -> f64 {
        self.minsup
    }

    /// Number of transactions in the inducing dataset.
    pub fn n_transactions(&self) -> u64 {
        self.n_transactions
    }

    /// Number of itemsets in the structural component.
    pub fn len(&self) -> usize {
        self.itemsets.len()
    }

    /// True if the model has no frequent itemsets.
    pub fn is_empty(&self) -> bool {
        self.itemsets.is_empty()
    }

    /// The support of `x` if `x` is in the structural component.
    pub fn support_of(&self, x: &Itemset) -> Option<f64> {
        self.itemsets
            .binary_search(x)
            .ok()
            .map(|i| self.supports[i])
    }
}

/// A dt-model: the partition of the attribute space induced by a decision
/// tree's leaves, with per-(leaf, class) measures (Section 2.1).
///
/// Each leaf corresponds to `k` regions (one per class) which differ only in
/// the class label; the measure of region `(leaf, class)` is the fraction of
/// the dataset that falls in the leaf *and* has that class.
#[derive(Debug, Clone, PartialEq)]
pub struct DtModel {
    /// Leaf cells (class-free boxes) partitioning the attribute space.
    leaves: Vec<BoxRegion>,
    /// Number of classes `k`.
    n_classes: u32,
    /// Row-major measures: `measures[leaf * k + class]`, each in `[0, 1]`,
    /// summing to 1 over all entries (when induced from a dataset).
    measures: Vec<f64>,
    /// Number of rows in the inducing dataset.
    n_rows: u64,
}

impl DtModel {
    /// Assembles a dt-model. `measures` must have `leaves.len() * n_classes`
    /// entries in row-major `[leaf][class]` order.
    pub fn new(leaves: Vec<BoxRegion>, n_classes: u32, measures: Vec<f64>, n_rows: u64) -> Self {
        assert!(n_classes > 0);
        assert_eq!(
            measures.len(),
            leaves.len() * n_classes as usize,
            "measure vector must be leaves × classes"
        );
        assert!(
            leaves.iter().all(|l| l.class.is_none()),
            "leaf cells must be class-free; classes are the measure rows"
        );
        Self {
            leaves,
            n_classes,
            measures,
            n_rows,
        }
    }

    /// The leaf cells (class-free partition of the attribute space).
    pub fn leaves(&self) -> &[BoxRegion] {
        &self.leaves
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u32 {
        self.n_classes
    }

    /// Row-major `[leaf][class]` measures.
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Number of rows in the inducing dataset.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// The measure of region `(leaf, class)`.
    pub fn measure(&self, leaf: usize, class: u32) -> f64 {
        self.measures[leaf * self.n_classes as usize + class as usize]
    }

    /// The full structural component in the paper's sense: every leaf
    /// crossed with every class label.
    pub fn class_regions(&self) -> Vec<BoxRegion> {
        let mut out = Vec::with_capacity(self.leaves.len() * self.n_classes as usize);
        for leaf in &self.leaves {
            for c in 0..self.n_classes {
                out.push(leaf.with_class(c));
            }
        }
        out
    }

    /// Index of the leaf containing `row`, if any. Leaves partition the
    /// space, so at most one matches.
    pub fn locate(&self, row: &[crate::data::Value]) -> Option<usize> {
        self.leaves.iter().position(|l| l.contains(row))
    }

    /// Majority-class prediction for `row` (ties break to the lower class).
    /// Rows outside every leaf (impossible for a real tree partition) map to
    /// class 0.
    pub fn predict(&self, row: &[crate::data::Value]) -> u32 {
        match self.locate(row) {
            None => 0,
            Some(leaf) => {
                let k = self.n_classes as usize;
                let slice = &self.measures[leaf * k..(leaf + 1) * k];
                let mut best = 0usize;
                for (c, &m) in slice.iter().enumerate() {
                    if m > slice[best] {
                        best = c;
                    }
                }
                best as u32
            }
        }
    }
}

/// A cluster-model: a set of (possibly non-exhaustive) cluster regions with
/// their selectivities (Section 2.4).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterModel {
    /// Cluster regions (class-free boxes; may leave space uncovered).
    clusters: Vec<BoxRegion>,
    /// Selectivity of each cluster region.
    measures: Vec<f64>,
    /// Number of rows in the inducing dataset.
    n_rows: u64,
}

impl ClusterModel {
    /// Assembles a cluster-model from parallel region/measure vectors.
    pub fn new(clusters: Vec<BoxRegion>, measures: Vec<f64>, n_rows: u64) -> Self {
        assert_eq!(clusters.len(), measures.len(), "parallel vectors");
        Self {
            clusters,
            measures,
            n_rows,
        }
    }

    /// The cluster regions.
    pub fn clusters(&self) -> &[BoxRegion] {
        &self.clusters
    }

    /// Selectivity of each cluster region.
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }

    /// Number of rows in the inducing dataset.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }
}

// ---------------------------------------------------------------------------
// Measure computation: extending a structure over a dataset (one scan).
// ---------------------------------------------------------------------------

/// Counts, for each itemset, the number of supporting transactions, with
/// the scan's row range fanned out over `par` worker threads.
///
/// One scan of the dataset: each transaction is turned into an item bitmap
/// and tested against every itemset with early exit. Per-chunk counters are
/// merged by `u64` addition in chunk order, so the result is bit-identical
/// to the sequential scan for every thread count.
pub fn count_itemsets_par(
    data: &TransactionSet,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    if itemsets.is_empty() || data.is_empty() {
        // The empty itemset is contained in every transaction; handle the
        // empty-data case uniformly here.
        return itemsets
            .iter()
            .map(|s| if s.is_empty() { data.len() as u64 } else { 0 })
            .collect();
    }
    let words_len = (data.n_items() as usize).div_ceil(64).max(1);
    let parts = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        let mut words = vec![0u64; words_len];
        let mut counts = vec![0u64; itemsets.len()];
        for t in range {
            data.bitmap_of(t, &mut words);
            for (i, s) in itemsets.iter().enumerate() {
                if s.is_subset_of_bitmap(&words) {
                    counts[i] += 1;
                }
            }
        }
        counts
    });
    merge_counts(parts)
}

/// [`count_itemsets_par`] at the process-wide default parallelism.
pub fn count_itemsets(data: &TransactionSet, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_par(data, itemsets, Parallelism::Global)
}

/// Counts, for each `(leaf, class)` region of a partition, the number of
/// rows of `data` that fall in it, scanning row chunks on `par` worker
/// threads. Returns a row-major `leaves.len() × n_classes` vector,
/// bit-identical for every thread count.
///
/// One scan: each row is routed to the (unique) containing leaf.
pub fn count_partition_par(
    data: &LabeledTable,
    leaves: &[BoxRegion],
    n_classes: u32,
    par: Parallelism,
) -> Vec<u64> {
    let k = n_classes as usize;
    // A label ≥ n_classes would index past its leaf's row and silently fold
    // the count into a neighbouring (leaf, class) slot; validate up front
    // (mirroring the class-count guard on the GCR cell scan).
    if let Some(row) = data.labels.iter().position(|&l| l >= n_classes) {
        panic!(
            "count_partition: row {row} has class label {} but the partition \
             was built for {n_classes} classes",
            data.labels[row]
        );
    }
    if leaves.is_empty() {
        return Vec::new();
    }
    let parts = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        let mut counts = vec![0u64; leaves.len() * k];
        for i in range {
            let row = data.table.row(i);
            if let Some(leaf) = leaves.iter().position(|l| l.contains(row)) {
                counts[leaf * k + data.labels[i] as usize] += 1;
            }
        }
        counts
    });
    if parts.is_empty() {
        return vec![0u64; leaves.len() * k];
    }
    merge_counts(parts)
}

/// [`count_partition_par`] at the process-wide default parallelism.
pub fn count_partition(data: &LabeledTable, leaves: &[BoxRegion], n_classes: u32) -> Vec<u64> {
    count_partition_par(data, leaves, n_classes, Parallelism::Global)
}

/// Counts, for each (possibly overlapping) box, the rows of `data` inside
/// it, scanning row chunks on `par` worker threads. Unlike
/// [`count_partition_par`], every box is tested for every row.
pub fn count_boxes_par(data: &Table, boxes: &[BoxRegion], par: Parallelism) -> Vec<u64> {
    let parts = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        let mut counts = vec![0u64; boxes.len()];
        for r in range {
            let row = data.row(r);
            for (i, b) in boxes.iter().enumerate() {
                if b.contains(row) {
                    counts[i] += 1;
                }
            }
        }
        counts
    });
    if parts.is_empty() {
        return vec![0u64; boxes.len()];
    }
    merge_counts(parts)
}

/// [`count_boxes_par`] at the process-wide default parallelism.
pub fn count_boxes(data: &Table, boxes: &[BoxRegion]) -> Vec<u64> {
    count_boxes_par(data, boxes, Parallelism::Global)
}

/// Counts labelled rows per class-carrying box (used when GCR cells carry
/// class labels explicitly), scanning row chunks on `par` worker threads.
pub fn count_labeled_boxes_par(
    data: &LabeledTable,
    boxes: &[BoxRegion],
    par: Parallelism,
) -> Vec<u64> {
    let parts = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        let mut counts = vec![0u64; boxes.len()];
        for r in range {
            let row = data.table.row(r);
            let label = data.labels[r];
            for (i, b) in boxes.iter().enumerate() {
                if b.contains_labeled(row, label) {
                    counts[i] += 1;
                }
            }
        }
        counts
    });
    if parts.is_empty() {
        return vec![0u64; boxes.len()];
    }
    merge_counts(parts)
}

/// [`count_labeled_boxes_par`] at the process-wide default parallelism.
pub fn count_labeled_boxes(data: &LabeledTable, boxes: &[BoxRegion]) -> Vec<u64> {
    count_labeled_boxes_par(data, boxes, Parallelism::Global)
}

/// Builds a [`DtModel`] measure component for an externally supplied leaf
/// partition by scanning a dataset.
pub fn induce_dt_measures(leaves: Vec<BoxRegion>, data: &LabeledTable) -> DtModel {
    let counts = count_partition(data, &leaves, data.n_classes);
    let n = data.len().max(1) as f64;
    let measures = counts.iter().map(|&c| c as f64 / n).collect();
    DtModel::new(leaves, data.n_classes, measures, data.len() as u64)
}

/// Builds a [`LitsModel`] over a *given* structural component (not
/// necessarily the frequent itemsets of `data`) by scanning `data`. This is
/// the "extension" step of Definition 3.6.
pub fn induce_lits_measures(
    itemsets: Vec<Itemset>,
    minsup: f64,
    data: &TransactionSet,
) -> LitsModel {
    let counts = count_itemsets(data, &itemsets);
    let n = data.len().max(1) as f64;
    let supports = counts.iter().map(|&c| c as f64 / n).collect();
    LitsModel::new(itemsets, supports, minsup, data.len() as u64)
}

/// A fast lookup table from itemset to index (for joins over structures).
pub fn itemset_index(itemsets: &[Itemset]) -> HashMap<&Itemset, usize> {
    itemsets.iter().enumerate().map(|(i, s)| (s, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::region::BoxBuilder;
    use std::sync::Arc;

    fn toy_transactions() -> TransactionSet {
        // 4 transactions over items {0=a, 1=b}.
        let mut ts = TransactionSet::new(2);
        ts.push(vec![0, 1]);
        ts.push(vec![0]);
        ts.push(vec![1]);
        ts.push(vec![0, 1]);
        ts
    }

    #[test]
    fn count_itemsets_basic() {
        let ts = toy_transactions();
        let sets = vec![
            Itemset::from_slice(&[0]),
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[0, 1]),
        ];
        assert_eq!(count_itemsets(&ts, &sets), vec![3, 3, 2]);
    }

    #[test]
    fn count_itemsets_empty_itemset_matches_all() {
        let ts = toy_transactions();
        let sets = vec![Itemset::new(vec![])];
        assert_eq!(count_itemsets(&ts, &sets), vec![4]);
    }

    #[test]
    fn lits_model_lookup_and_canonical_order() {
        let m = LitsModel::new(
            vec![Itemset::from_slice(&[1]), Itemset::from_slice(&[0])],
            vec![0.4, 0.5],
            0.1,
            100,
        );
        assert_eq!(m.support_of(&Itemset::from_slice(&[0])), Some(0.5));
        assert_eq!(m.support_of(&Itemset::from_slice(&[1])), Some(0.4));
        assert_eq!(m.support_of(&Itemset::from_slice(&[2])), None);
        // Canonical order: {0} before {1}.
        assert_eq!(m.itemsets()[0], Itemset::from_slice(&[0]));
    }

    fn toy_labeled() -> (Arc<Schema>, LabeledTable) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
        let mut t = LabeledTable::new(Arc::clone(&schema), 2);
        // Ages 10, 20, 30, 40 with classes 0, 0, 1, 1.
        for (age, c) in [(10.0, 0), (20.0, 0), (30.0, 1), (40.0, 1)] {
            t.push_row(&[Value::Num(age)], c);
        }
        (schema, t)
    }

    #[test]
    fn count_partition_routes_rows() {
        let (schema, t) = toy_labeled();
        let leaves = vec![
            BoxBuilder::new(&schema).lt("age", 25.0).build(),
            BoxBuilder::new(&schema).ge("age", 25.0).build(),
        ];
        let counts = count_partition(&t, &leaves, 2);
        // leaf0: class0 = 2, class1 = 0; leaf1: class0 = 0, class1 = 2.
        assert_eq!(counts, vec![2, 0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "count_partition: row 2 has class label 2")]
    fn count_partition_rejects_stale_class_count() {
        // The table legitimately has 3 classes; counting it against a
        // partition sized for 2 must fail loudly, not fold class 2 into a
        // neighbouring slot.
        let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
        let mut t = LabeledTable::new(Arc::clone(&schema), 3);
        for (age, c) in [(10.0, 0), (20.0, 1), (30.0, 2)] {
            t.push_row(&[Value::Num(age)], c);
        }
        let leaves = vec![
            BoxBuilder::new(&schema).lt("age", 25.0).build(),
            BoxBuilder::new(&schema).ge("age", 25.0).build(),
        ];
        count_partition(&t, &leaves, 2);
    }

    #[test]
    fn induce_dt_measures_normalizes() {
        let (schema, t) = toy_labeled();
        let leaves = vec![
            BoxBuilder::new(&schema).lt("age", 25.0).build(),
            BoxBuilder::new(&schema).ge("age", 25.0).build(),
        ];
        let m = induce_dt_measures(leaves, &t);
        assert_eq!(m.measure(0, 0), 0.5);
        assert_eq!(m.measure(1, 1), 0.5);
        let total: f64 = m.measures().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dt_model_predict_majority() {
        let (schema, t) = toy_labeled();
        let leaves = vec![
            BoxBuilder::new(&schema).lt("age", 25.0).build(),
            BoxBuilder::new(&schema).ge("age", 25.0).build(),
        ];
        let m = induce_dt_measures(leaves, &t);
        assert_eq!(m.predict(&[Value::Num(15.0)]), 0);
        assert_eq!(m.predict(&[Value::Num(35.0)]), 1);
    }

    #[test]
    fn class_regions_expand_leaves() {
        let (schema, t) = toy_labeled();
        let leaves = vec![
            BoxBuilder::new(&schema).lt("age", 25.0).build(),
            BoxBuilder::new(&schema).ge("age", 25.0).build(),
        ];
        let m = induce_dt_measures(leaves, &t);
        let regions = m.class_regions();
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[0].class, Some(0));
        assert_eq!(regions[1].class, Some(1));
    }

    #[test]
    fn count_boxes_allows_overlap() {
        let (schema, t) = toy_labeled();
        let boxes = vec![
            BoxBuilder::new(&schema).lt("age", 35.0).build(),
            BoxBuilder::new(&schema).ge("age", 15.0).build(),
        ];
        let counts = count_boxes(&t.table, &boxes);
        assert_eq!(counts, vec![3, 3]);
    }

    #[test]
    fn count_labeled_boxes_respects_class() {
        let (schema, t) = toy_labeled();
        let b0 = BoxBuilder::new(&schema).class(0).build();
        let b1 = BoxBuilder::new(&schema).class(1).build();
        assert_eq!(count_labeled_boxes(&t, &[b0, b1]), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "leaf cells must be class-free")]
    fn dt_model_rejects_classful_leaves() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let leaf = BoxBuilder::new(&schema).class(0).build();
        DtModel::new(vec![leaf], 2, vec![0.5, 0.5], 10);
    }
}
