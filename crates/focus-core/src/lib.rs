//! # focus-core — the FOCUS deviation framework
//!
//! An implementation of *"A Framework for Measuring Changes in Data
//! Characteristics"* (Ganti, Gehrke, Ramakrishnan, Loh — PODS 1999).
//!
//! FOCUS quantifies the difference (**deviation**) between two datasets in
//! terms of the data-mining models they induce. Any model class with the
//! **2-component property** (a structural component of regions + a measure
//! per region) and the **meet-semilattice property** (any two structures
//! have a greatest common refinement, GCR) plugs into the framework; this
//! crate instantiates the paper's three classes:
//!
//! | class          | structure                | GCR                         |
//! |----------------|--------------------------|-----------------------------|
//! | lits-models    | frequent itemsets        | union of itemset families   |
//! | dt-models      | decision-tree leaf cells | overlay of the partitions   |
//! | cluster-models | cluster boxes            | overlay + remainders        |
//!
//! The crate provides:
//!
//! * [`data`] — attribute spaces, tables, transaction sets (Def. 3.1);
//! * [`region`] — box and itemset regions;
//! * [`model`] — 2-component models and the measure (selectivity) scans;
//! * [`vertical`] — Eclat-style vertical tid-bitset counting (the fast
//!   backend behind the itemset-support scans);
//! * [`source`] — the counting-source layer: per-dataset handles that
//!   cache the vertical index and pick a backend by a deterministic cost
//!   model;
//! * [`gcr`] — greatest common refinements (Defs. 3.4, 4.2);
//! * [`diff`] — difference functions `f_a`, `f_s`, `f_χ²` and aggregates
//!   `sum`, `max` (Def. 3.7);
//! * [`deviation`] — `δ(f,g)` and the focussed `δρ` (Defs. 3.5, 3.6, 5.2);
//! * [`bound`] — the scan-free upper bound `δ*` (Def. 4.1, Thm. 4.2);
//! * [`ops`] — structural union/intersection/difference, rank and select
//!   operators for exploratory analysis (Section 5);
//! * [`monitor`] — misclassification error and chi-squared as FOCUS special
//!   cases (Thm. 5.2, Prop. 5.1);
//! * [`qualify`] — bootstrap significance of deviations (Section 3.4).
//!
//! ## Quick example
//!
//! ```
//! use focus_core::prelude::*;
//! use std::sync::Arc;
//!
//! // Two tiny one-attribute datasets with different class boundaries.
//! let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
//! let mut d1 = LabeledTable::new(Arc::clone(&schema), 2);
//! let mut d2 = LabeledTable::new(Arc::clone(&schema), 2);
//! for i in 0..100 {
//!     let age = i as f64;
//!     d1.push_row(&[Value::Num(age)], u32::from(age < 30.0));
//!     d2.push_row(&[Value::Num(age)], u32::from(age < 50.0));
//! }
//!
//! // Models: two-leaf partitions at each dataset's own boundary.
//! let t1 = induce_dt_measures(vec![
//!     BoxBuilder::new(&schema).lt("age", 30.0).build(),
//!     BoxBuilder::new(&schema).ge("age", 30.0).build(),
//! ], &d1);
//! let t2 = induce_dt_measures(vec![
//!     BoxBuilder::new(&schema).lt("age", 50.0).build(),
//!     BoxBuilder::new(&schema).ge("age", 50.0).build(),
//! ], &d2);
//!
//! // δ(f_a, g_sum): extends both to the GCR and aggregates per-region diffs.
//! let dev = dt_deviation(&t1, &d1, &t2, &d2, DiffFn::Absolute, AggFn::Sum);
//! assert!((dev.value - 0.4).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bound;
pub mod data;
pub mod deviation;
pub mod diff;
pub mod embed;
pub mod family;
pub mod gcr;
pub mod model;
pub mod monitor;
pub mod ops;
pub mod persist;
pub mod qualify;
pub mod region;
pub mod report;
pub mod source;
pub mod stream;
pub mod vertical;

/// One-stop imports for typical FOCUS workflows.
pub mod prelude {
    pub use crate::bound::{cluster_upper_bound, dt_upper_bound, lits_upper_bound};
    pub use crate::data::{
        AttrType, Attribute, LabeledTable, Schema, Table, TransactionSet, Value,
    };
    pub use crate::deviation::{
        cluster_deviation, cluster_deviation_focussed, cluster_deviation_par, deviate,
        deviate_focussed, deviate_over, deviate_over_sources, deviate_par, deviate_sources_par,
        deviation_fixed, deviation_fixed_par, dt_deviation, dt_deviation_focussed,
        dt_deviation_par, lits_deviation, lits_deviation_focussed, lits_deviation_over,
        lits_deviation_over_par, lits_deviation_par, ClusterDeviation, DtDeviation,
        FamilyDeviation, LitsDeviation,
    };
    pub use crate::diff::{AggFn, DiffFn};
    pub use crate::embed::DistanceMatrix;
    pub use crate::family::{ClusterFamily, DtFamily, DtGcr, LitsFamily, ModelFamily, Side};
    pub use crate::gcr::{gcr_boxes, gcr_lits, gcr_partition, OverlayCell};
    pub use crate::model::{
        count_boxes, count_boxes_par, count_itemsets, count_itemsets_par, count_partition,
        count_partition_par, induce_dt_measures, induce_lits_measures, ClusterModel, DtModel,
        LitsModel,
    };
    pub use crate::monitor::{
        chi_squared_statistic, chi_squared_statistic_par, chi_squared_test, me_via_deviation,
        misclassification_error, misclassification_error_par, predicted_dataset, ChiSquaredFit,
    };
    pub use crate::ops::{
        lits_difference, lits_intersection, lits_union, partition_difference,
        partition_intersection, partition_union, rank, select_bottom_n, select_min, select_top,
        select_top_n, Ranked,
    };
    pub use crate::persist::{
        read_cluster_model, read_dt_model, read_lits_model, write_cluster_model, write_dt_model,
        write_lits_model,
    };
    pub use crate::qualify::{
        qualify_chi_squared, qualify_chi_squared_par, qualify_tables, qualify_tables_par,
        qualify_transactions, qualify_transactions_par,
    };
    pub use crate::region::{AttrConstraint, BoxBuilder, BoxRegion, CatMask, Itemset};
    pub use crate::report::{dt_report, lits_report, ComparisonReport, ReportOptions};
    pub use crate::source::{
        choose_backend, global_index_budget, parse_index_budget, prefers_vertical,
        set_global_index_budget, BackendChoice, CountSource, DEFAULT_INDEX_BUDGET,
        DIFFSET_DENSITY_NUM,
    };
    pub use crate::stream::{
        calibrate_threshold_par, BlockVerdict, ChangeMonitor, DEFAULT_HISTORY_CAP,
    };
    pub use crate::vertical::{
        count_itemsets_auto, count_itemsets_auto_par, count_itemsets_grouped,
        count_itemsets_grouped_par, count_itemsets_vertical, count_itemsets_vertical_par, CsrError,
        RowRepr, VerticalIndex,
    };
    pub use focus_exec::Parallelism;
}
