//! The qualification procedure (Section 3.4): is a deviation statistically
//! significant?
//!
//! "A deviation of 0.01 may not be uncommon between two datasets generated
//! by the same process." To decide, the paper bootstraps the distribution
//! `F` of deviation values under the null hypothesis that both datasets come
//! from one process: pool the datasets, repeatedly draw two pseudo-datasets
//! of the original sizes (with replacement), run the full model-induction +
//! deviation pipeline on each pair, and report where the observed deviation
//! falls in that distribution (the "%sig" columns of Figures 13 and 14).
//!
//! The heavy lifting is generic in `focus-stats`; this module adapts it to
//! the two dataset shapes, resampling *indices* so rows are never cloned.
//!
//! Each bootstrap replicate runs the full model-induction pipeline, so the
//! fan-out over replicates dominates qualification cost. Every function here
//! therefore takes (or defaults) a [`Parallelism`]: replicate `i` seeds its
//! own `StdRng` from `derive_seed(seed, i)`, making the null distribution a
//! pure function of `(datasets, reps, seed)` — bit-identical for any thread
//! count.

use crate::data::{resample_indices, LabeledTable, TransactionSet};
use focus_exec::{derive_seed, map_indices, Parallelism};
use focus_stats::bootstrap::{significance_percent, BootstrapResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Qualifies an observed deviation between two transaction datasets.
///
/// `stat` must be the complete pipeline "induce a model from each dataset,
/// compute their deviation" — e.g. mine frequent itemsets at the original
/// minimum support and evaluate `δ(f_a, g_sum)`.
///
/// Returns the bootstrap null distribution and the significance percentage.
pub fn qualify_transactions<F>(
    d1: &TransactionSet,
    d2: &TransactionSet,
    observed: f64,
    reps: usize,
    seed: u64,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&TransactionSet, &TransactionSet) -> f64 + Sync,
{
    qualify_transactions_par(d1, d2, observed, reps, seed, Parallelism::Global, stat)
}

/// [`qualify_transactions`] with an explicit [`Parallelism`] for the
/// per-replicate fan-out.
pub fn qualify_transactions_par<F>(
    d1: &TransactionSet,
    d2: &TransactionSet,
    observed: f64,
    reps: usize,
    seed: u64,
    par: Parallelism,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&TransactionSet, &TransactionSet) -> f64 + Sync,
{
    assert!(
        !d1.is_empty() && !d2.is_empty(),
        "datasets must be non-empty"
    );
    let pool = d1.concat(d2);
    let mut null = map_indices(par, reps, |rep| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, rep as u64));
        let i1 = resample_indices(pool.len(), d1.len(), &mut rng);
        let i2 = resample_indices(pool.len(), d2.len(), &mut rng);
        stat(&pool.subset(&i1), &pool.subset(&i2))
    });
    let significance = significance_percent(observed, &null);
    null.sort_by(|a, b| a.partial_cmp(b).expect("NaN deviation in bootstrap"));
    BootstrapResult {
        observed,
        null_distribution: null,
        significance_percent: significance,
    }
}

/// Qualifies an observed deviation between two labelled tables. Mirrors
/// [`qualify_transactions`] for the dt-model pipeline (build a tree on each
/// pseudo-dataset, compute the deviation).
pub fn qualify_tables<F>(
    d1: &LabeledTable,
    d2: &LabeledTable,
    observed: f64,
    reps: usize,
    seed: u64,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&LabeledTable, &LabeledTable) -> f64 + Sync,
{
    qualify_tables_par(d1, d2, observed, reps, seed, Parallelism::Global, stat)
}

/// [`qualify_tables`] with an explicit [`Parallelism`] for the
/// per-replicate fan-out.
pub fn qualify_tables_par<F>(
    d1: &LabeledTable,
    d2: &LabeledTable,
    observed: f64,
    reps: usize,
    seed: u64,
    par: Parallelism,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&LabeledTable, &LabeledTable) -> f64 + Sync,
{
    assert!(
        !d1.is_empty() && !d2.is_empty(),
        "datasets must be non-empty"
    );
    let pool = d1.concat(d2);
    let mut null = map_indices(par, reps, |rep| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, rep as u64));
        let i1 = resample_indices(pool.len(), d1.len(), &mut rng);
        let i2 = resample_indices(pool.len(), d2.len(), &mut rng);
        stat(&pool.subset(&i1), &pool.subset(&i2))
    });
    let significance = significance_percent(observed, &null);
    null.sort_by(|a, b| a.partial_cmp(b).expect("NaN deviation in bootstrap"));
    BootstrapResult {
        observed,
        null_distribution: null,
        significance_percent: significance,
    }
}

/// Bootstrap calibration of the chi-squared statistic (Section 5.2.2):
/// estimates the exact null distribution of `X²` ("distribution of X² values
/// when the new dataset fits the old model") by resampling pseudo-`D2`s
/// from `D2` itself... against the old model's expectations — then reports
/// the p-value of the observed statistic.
///
/// `stat` evaluates the statistic of one pseudo-dataset against the fixed
/// old model; resampling is from the *old* dataset `d1` (datasets that do
/// fit the old model by construction).
pub fn qualify_chi_squared<F>(
    d1: &LabeledTable,
    n2: usize,
    observed: f64,
    reps: usize,
    seed: u64,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&LabeledTable) -> f64 + Sync,
{
    qualify_chi_squared_par(d1, n2, observed, reps, seed, Parallelism::Global, stat)
}

/// [`qualify_chi_squared`] with an explicit [`Parallelism`] for the
/// per-replicate fan-out.
pub fn qualify_chi_squared_par<F>(
    d1: &LabeledTable,
    n2: usize,
    observed: f64,
    reps: usize,
    seed: u64,
    par: Parallelism,
    stat: F,
) -> BootstrapResult
where
    F: Fn(&LabeledTable) -> f64 + Sync,
{
    assert!(!d1.is_empty(), "dataset must be non-empty");
    assert!(n2 > 0, "target dataset size must be positive");
    let mut null = map_indices(par, reps, |rep| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, rep as u64));
        let idx = resample_indices(d1.len(), n2, &mut rng);
        stat(&d1.subset(&idx))
    });
    let significance = significance_percent(observed, &null);
    null.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic in bootstrap"));
    BootstrapResult {
        observed,
        null_distribution: null,
        significance_percent: significance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::deviation::dt_deviation;
    use crate::diff::{AggFn, DiffFn};
    use crate::model::induce_dt_measures;
    use crate::monitor::chi_squared_statistic;
    use crate::region::BoxBuilder;
    use rand::Rng;
    use std::sync::Arc;

    fn txn_dataset(seed: u64, n: usize, p_item0: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(4);
        for _ in 0..n {
            let mut t = Vec::new();
            if rng.gen::<f64>() < p_item0 {
                t.push(0);
            }
            if rng.gen::<f64>() < 0.3 {
                t.push(1);
            }
            ts.push(t);
        }
        ts
    }

    /// A toy deviation statistic: absolute difference in item-0 frequency.
    fn item0_stat(a: &TransactionSet, b: &TransactionSet) -> f64 {
        let fa = a.iter().filter(|t| t.contains(&0)).count() as f64 / a.len() as f64;
        let fb = b.iter().filter(|t| t.contains(&0)).count() as f64 / b.len() as f64;
        (fa - fb).abs()
    }

    #[test]
    fn same_process_transactions_not_significant() {
        let d1 = txn_dataset(1, 300, 0.5);
        let d2 = txn_dataset(2, 300, 0.5);
        let obs = item0_stat(&d1, &d2);
        let r = qualify_transactions(&d1, &d2, obs, 99, 7, item0_stat);
        assert!(
            r.significance_percent < 99.0,
            "sig = {}",
            r.significance_percent
        );
    }

    #[test]
    fn different_process_transactions_significant() {
        let d1 = txn_dataset(1, 300, 0.5);
        let d2 = txn_dataset(2, 300, 0.9);
        let obs = item0_stat(&d1, &d2);
        let r = qualify_transactions(&d1, &d2, obs, 99, 7, item0_stat);
        assert!(
            r.significance_percent >= 99.0,
            "sig = {}",
            r.significance_percent
        );
        assert!(r.is_significant(0.05));
    }

    fn labeled_dataset(seed: u64, n: usize, boundary: f64) -> LabeledTable {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = LabeledTable::new(schema, 2);
        for _ in 0..n {
            let x: f64 = rng.gen::<f64>() * 100.0;
            t.push_row(&[Value::Num(x)], u32::from(x < boundary));
        }
        t
    }

    /// Deviation pipeline for tables: fixed two-leaf stumps at x = 50.
    fn stump_deviation(a: &LabeledTable, b: &LabeledTable) -> f64 {
        let schema = Arc::clone(a.table.schema());
        let leaves = || {
            vec![
                BoxBuilder::new(&schema).lt("x", 50.0).build(),
                BoxBuilder::new(&schema).ge("x", 50.0).build(),
            ]
        };
        let m1 = induce_dt_measures(leaves(), a);
        let m2 = induce_dt_measures(leaves(), b);
        dt_deviation(&m1, a, &m2, b, DiffFn::Absolute, AggFn::Sum).value
    }

    #[test]
    fn table_qualification_detects_boundary_shift() {
        let d1 = labeled_dataset(1, 400, 50.0);
        let d_same = labeled_dataset(2, 400, 50.0);
        let d_shift = labeled_dataset(3, 400, 75.0);

        let obs_same = stump_deviation(&d1, &d_same);
        let r_same = qualify_tables(&d1, &d_same, obs_same, 49, 11, stump_deviation);
        assert!(
            r_same.significance_percent < 99.0,
            "same-process sig = {}",
            r_same.significance_percent
        );

        let obs_shift = stump_deviation(&d1, &d_shift);
        let r_shift = qualify_tables(&d1, &d_shift, obs_shift, 49, 11, stump_deviation);
        assert!(
            r_shift.significance_percent >= 95.0,
            "shifted sig = {}",
            r_shift.significance_percent
        );
    }

    #[test]
    fn chi_squared_bootstrap_calibration() {
        let d1 = labeled_dataset(5, 500, 50.0);
        let schema = Arc::clone(d1.table.schema());
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("x", 50.0).build(),
                BoxBuilder::new(&schema).ge("x", 50.0).build(),
            ],
            &d1,
        );
        // A dataset that fits the old model: X² should be unremarkable.
        let d_fit = labeled_dataset(6, 300, 50.0);
        let obs_fit = chi_squared_statistic(&model, &d_fit, 0.5);
        let r = qualify_chi_squared(&d1, 300, obs_fit, 99, 13, |d| {
            chi_squared_statistic(&model, d, 0.5)
        });
        assert!(
            r.significance_percent < 99.0,
            "fit sig = {}",
            r.significance_percent
        );
        // A drifted dataset: X² should land in the extreme tail.
        let d_drift = labeled_dataset(7, 300, 80.0);
        let obs_drift = chi_squared_statistic(&model, &d_drift, 0.5);
        let r = qualify_chi_squared(&d1, 300, obs_drift, 99, 13, |d| {
            chi_squared_statistic(&model, d, 0.5)
        });
        assert!(
            r.significance_percent >= 99.0,
            "drift sig = {}",
            r.significance_percent
        );
    }

    #[test]
    fn qualification_is_deterministic() {
        let d1 = txn_dataset(1, 100, 0.5);
        let d2 = txn_dataset(2, 100, 0.6);
        let obs = item0_stat(&d1, &d2);
        let a = qualify_transactions(&d1, &d2, obs, 20, 99, item0_stat);
        let b = qualify_transactions(&d1, &d2, obs, 20, 99, item0_stat);
        assert_eq!(a.null_distribution, b.null_distribution);
    }
}
