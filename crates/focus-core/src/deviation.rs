//! The deviation measure `δ(f,g)` (Definitions 3.5 and 3.6) and its
//! focussed variant `δρ` (Definition 5.2).
//!
//! Computing `δ(f,g)(M1, M2)`:
//! 1. form the GCR of the two structural components;
//! 2. extend both models to the GCR — one scan of each dataset to obtain
//!    the measure of every GCR region w.r.t. that dataset;
//! 3. apply the difference function `f` per region and the aggregate `g`
//!    over all regions.
//!
//! The paper defines those three steps once, over any model class with the
//! 2-component and meet-semilattice properties — and so does this module:
//! the **generic engine** ([`deviate`], [`deviate_par`],
//! [`deviate_focussed`], [`deviate_over`]) is written against the
//! [`ModelFamily`] trait, and the per-family entry points
//! (`lits_deviation*`, `dt_deviation*`, `cluster_deviation*`) are thin
//! wrappers that instantiate it with [`LitsFamily`], [`DtFamily`] or
//! [`ClusterFamily`] and repackage the result into the family's
//! domain-specific report type.
//!
//! Focussed deviation first intersects every GCR region with the focussing
//! region `ρ` and computes the same aggregate over the intersections.

use crate::data::{LabeledTable, TransactionSet};
use crate::diff::{AggFn, DiffFn};
use crate::family::{ClusterFamily, DtFamily, LitsFamily, ModelFamily, Side};
use crate::gcr::OverlayCell;
use crate::model::{ClusterModel, DtModel, LitsModel};
use crate::region::{BoxRegion, Itemset};
use focus_exec::{map_chunks_flat, Parallelism};

/// Minimum regions per worker chunk for the per-region difference loops:
/// one `f.eval` is a handful of flops, so only large GCRs are worth
/// fanning out.
const REGION_GRAIN: usize = 1024;

/// Evaluates an independent per-region value over `0..n` on `par` worker
/// threads, returning the values **in region order**.
///
/// Each region's value is computed by the same expression a sequential
/// loop would use and per-chunk vectors concatenate in chunk order
/// ([`map_chunks_flat`]), so the result is bit-identical for every thread
/// count. Callers fold the vector sequentially afterwards (the aggregate
/// `g`), which keeps the whole `f`-then-`g` aggregation
/// thread-count-invariant: the parallel part is exact, the float fold sees
/// the same values in the same order.
pub(crate) fn eval_regions_par(
    par: Parallelism,
    n: usize,
    f: impl Fn(usize) -> f64 + Sync,
) -> Vec<f64> {
    map_chunks_flat(par, n, REGION_GRAIN, |range| {
        range.map(&f).collect::<Vec<f64>>()
    })
}

// ---------------------------------------------------------------------------
// δ1: identical structural components (Definition 3.5)
// ---------------------------------------------------------------------------

/// Deviation between two measure components over an *identical* structural
/// component (Definition 3.5). `counts1`/`counts2` are the absolute measures
/// of each region w.r.t. datasets of sizes `n1`/`n2`.
///
/// Empty datasets are well-defined: a dataset with `n = 0` rows has
/// selectivity 0 in every region (see [`DiffFn::eval`]), so the deviation
/// against an empty side degenerates to the other side's total mass rather
/// than NaN, and two empty datasets deviate by 0.
pub fn deviation_fixed(
    counts1: &[u64],
    counts2: &[u64],
    n1: u64,
    n2: u64,
    f: DiffFn,
    g: AggFn,
) -> f64 {
    deviation_fixed_par(counts1, counts2, n1, n2, f, g, Parallelism::Global)
}

/// [`deviation_fixed`] with the per-region difference loop fanned out over
/// `par` worker threads. Bit-identical to the sequential computation for
/// any thread count: per-region values are exact and come back in region
/// order; only the final `g` fold touches them, sequentially.
pub fn deviation_fixed_par(
    counts1: &[u64],
    counts2: &[u64],
    n1: u64,
    n2: u64,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> f64 {
    assert_eq!(
        counts1.len(),
        counts2.len(),
        "identical structure required: measure vectors must align"
    );
    let per_region = eval_regions_par(par, counts1.len(), |i| {
        f.eval(counts1[i] as f64, counts2[i] as f64, n1 as f64, n2 as f64)
    });
    g.eval(per_region)
}

/// As [`deviation_fixed`] but over already-normalized selectivities (the
/// dataset sizes are still passed through to `f` since χ² needs them).
pub fn deviation_fixed_selectivities(
    sel1: &[f64],
    sel2: &[f64],
    n1: u64,
    n2: u64,
    f: DiffFn,
    g: AggFn,
) -> f64 {
    assert_eq!(sel1.len(), sel2.len());
    g.eval(
        sel1.iter()
            .zip(sel2)
            .map(|(&a, &b)| f.eval(a * n1 as f64, b * n2 as f64, n1 as f64, n2 as f64)),
    )
}

// ---------------------------------------------------------------------------
// The generic engine (Definition 3.6, any model family)
// ---------------------------------------------------------------------------

/// Full result of a generic deviation computation: the GCR, the canonical
/// per-region measures of both sides, and the per-region differences. The
/// per-family wrappers repackage this into their domain report types
/// ([`LitsDeviation`], [`DtDeviation`], [`ClusterDeviation`]).
#[derive(Debug, Clone)]
pub struct FamilyDeviation<F: ModelFamily> {
    /// The deviation value `δ(f,g)(M1, M2)`.
    pub value: f64,
    /// The GCR structural component.
    pub gcr: F::Gcr,
    /// Canonical measures of every evaluation region w.r.t. `D1` (support
    /// fractions for lits, absolute counts for dt/cluster).
    pub raw1: Vec<f64>,
    /// Canonical measures w.r.t. `D2`.
    pub raw2: Vec<f64>,
    /// Per-region difference `f(v1, v2, n1, n2)`; `0` for regions that do
    /// not participate (e.g. the other classes of a class-focussed cell).
    pub per_region: Vec<f64>,
}

/// Deviation between two models of any family (Definition 3.6) at the
/// process-wide default parallelism.
pub fn deviate<F: ModelFamily>(
    m1: &F::Model,
    d1: &F::Dataset,
    m2: &F::Model,
    d2: &F::Dataset,
    f: DiffFn,
    g: AggFn,
) -> FamilyDeviation<F> {
    deviate_par::<F>(m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// [`deviate`] with an explicit [`Parallelism`] for the measure scans and
/// the per-region difference loop. Bit-identical to the sequential
/// computation for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn deviate_par<F: ModelFamily>(
    m1: &F::Model,
    d1: &F::Dataset,
    m2: &F::Model,
    d2: &F::Dataset,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> FamilyDeviation<F> {
    deviate_over::<F>(F::gcr(m1, m2), m1, d1, m2, d2, f, g, par)
}

/// Focussed deviation `δρ` (Definition 5.2): the GCR is intersected with
/// the focussing region before measures are extended.
#[allow(clippy::too_many_arguments)]
pub fn deviate_focussed<F: ModelFamily>(
    m1: &F::Model,
    d1: &F::Dataset,
    m2: &F::Model,
    d2: &F::Dataset,
    focus: &F::Focus,
    f: DiffFn,
    g: AggFn,
) -> FamilyDeviation<F> {
    let gcr = F::restrict(F::gcr(m1, m2), focus);
    deviate_over::<F>(gcr, m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// The region-evaluation loop every family shares — the single place the
/// `f`-then-`g` aggregation of Definition 3.6 is spelled out:
///
/// 1. measure every GCR evaluation region against both datasets (one scan
///    each, via [`ModelFamily::measures`]);
/// 2. apply `f` per region, fanned out in region order;
/// 3. fold the participating regions' differences with `g`, sequentially.
///
/// Callers that construct their own region sets (the structural operators
/// of Section 5, the focussed entry points) pass the GCR in explicitly.
#[allow(clippy::too_many_arguments)]
pub fn deviate_over<F: ModelFamily>(
    gcr: F::Gcr,
    m1: &F::Model,
    d1: &F::Dataset,
    m2: &F::Model,
    d2: &F::Dataset,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> FamilyDeviation<F> {
    let s1 = F::source(d1);
    let s2 = F::source(d2);
    deviate_over_sources::<F>(gcr, m1, &s1, m2, &s2, f, g, par)
}

/// [`deviate_par`] over pre-built access handles instead of raw datasets:
/// the batch engines in `focus-registry` keep one [`ModelFamily::Source`]
/// per surviving snapshot for a whole matrix run, so the expensive
/// structures inside a handle (the lits vertical index) are built at most
/// once per snapshot instead of once per pair.
#[allow(clippy::too_many_arguments)]
pub fn deviate_sources_par<F: ModelFamily>(
    m1: &F::Model,
    s1: &F::Source<'_>,
    m2: &F::Model,
    s2: &F::Source<'_>,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> FamilyDeviation<F> {
    deviate_over_sources::<F>(F::gcr(m1, m2), m1, s1, m2, s2, f, g, par)
}

/// [`deviate_over`] over pre-built access handles — the innermost form of
/// the generic engine; everything above delegates here.
#[allow(clippy::too_many_arguments)]
pub fn deviate_over_sources<F: ModelFamily>(
    gcr: F::Gcr,
    m1: &F::Model,
    s1: &F::Source<'_>,
    m2: &F::Model,
    s2: &F::Source<'_>,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> FamilyDeviation<F> {
    let n1 = F::source_len(s1);
    let n2 = F::source_len(s2);
    let raw1 = F::measures(&gcr, m1, m2, s1, Side::Left, par);
    let raw2 = F::measures(&gcr, m1, m2, s2, Side::Right, par);
    debug_assert_eq!(raw1.len(), F::n_regions(&gcr));
    debug_assert_eq!(raw2.len(), F::n_regions(&gcr));
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let (raw1_ref, raw2_ref, gcr_ref) = (&raw1, &raw2, &gcr);
    let per_region = eval_regions_par(par, raw1.len(), |i| {
        if F::participates(gcr_ref, i) {
            f.eval(
                F::abs_measure(raw1_ref[i], n1),
                F::abs_measure(raw2_ref[i], n2),
                n1f,
                n2f,
            )
        } else {
            0.0
        }
    });
    let value = g.eval(
        per_region
            .iter()
            .enumerate()
            .filter(|&(i, _)| F::participates(&gcr, i))
            .map(|(_, &d)| d),
    );
    FamilyDeviation {
        value,
        gcr,
        raw1,
        raw2,
        per_region,
    }
}

// ---------------------------------------------------------------------------
// lits-models
// ---------------------------------------------------------------------------

/// Full result of a lits-model deviation computation, exposing the GCR and
/// the per-region differences for exploratory analysis (Section 5).
#[derive(Debug, Clone)]
pub struct LitsDeviation {
    /// The deviation value `δ(f,g)(M1, M2)`.
    pub value: f64,
    /// The GCR structural component (union of the two itemset families).
    pub gcr: Vec<Itemset>,
    /// Supports of each GCR itemset w.r.t. `D1`.
    pub supports1: Vec<f64>,
    /// Supports of each GCR itemset w.r.t. `D2`.
    pub supports2: Vec<f64>,
    /// Per-region difference `f(v1, v2, n1, n2)`, parallel to `gcr`.
    pub per_region: Vec<f64>,
}

impl From<FamilyDeviation<LitsFamily>> for LitsDeviation {
    fn from(dev: FamilyDeviation<LitsFamily>) -> Self {
        LitsDeviation {
            value: dev.value,
            gcr: dev.gcr,
            supports1: dev.raw1,
            supports2: dev.raw2,
            per_region: dev.per_region,
        }
    }
}

/// Deviation between two lits-models (Definition 3.6, Section 4.1): extends
/// both to the GCR (union of the itemset families), scanning each dataset
/// once to obtain missing supports.
pub fn lits_deviation(
    m1: &LitsModel,
    d1: &TransactionSet,
    m2: &LitsModel,
    d2: &TransactionSet,
    f: DiffFn,
    g: AggFn,
) -> LitsDeviation {
    lits_deviation_par(m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// [`lits_deviation`] with an explicit [`Parallelism`] for the extension
/// scans. Bit-identical to the sequential computation for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn lits_deviation_par(
    m1: &LitsModel,
    d1: &TransactionSet,
    m2: &LitsModel,
    d2: &TransactionSet,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> LitsDeviation {
    deviate_par::<LitsFamily>(m1, d1, m2, d2, f, g, par).into()
}

/// Focussed lits-model deviation (Definition 5.2, Section 5.1): only the
/// GCR itemsets drawn entirely from `universe` (a sorted item list — e.g.
/// "the shoes department's items") participate.
pub fn lits_deviation_focussed(
    m1: &LitsModel,
    d1: &TransactionSet,
    m2: &LitsModel,
    d2: &TransactionSet,
    universe: &[u32],
    f: DiffFn,
    g: AggFn,
) -> LitsDeviation {
    deviate_focussed::<LitsFamily>(m1, d1, m2, d2, universe, f, g).into()
}

/// Deviation over an explicit region list (used by both entry points and by
/// the structural operators of Section 5, which construct their own region
/// sets).
pub fn lits_deviation_over(
    regions: &[Itemset],
    m1: &LitsModel,
    d1: &TransactionSet,
    m2: &LitsModel,
    d2: &TransactionSet,
    f: DiffFn,
    g: AggFn,
) -> LitsDeviation {
    lits_deviation_over_par(regions, m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// [`lits_deviation_over`] with an explicit [`Parallelism`] for the
/// extension scans.
#[allow(clippy::too_many_arguments)]
pub fn lits_deviation_over_par(
    regions: &[Itemset],
    m1: &LitsModel,
    d1: &TransactionSet,
    m2: &LitsModel,
    d2: &TransactionSet,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> LitsDeviation {
    deviate_over::<LitsFamily>(regions.to_vec(), m1, d1, m2, d2, f, g, par).into()
}

// ---------------------------------------------------------------------------
// dt-models
// ---------------------------------------------------------------------------

/// Full result of a dt-model deviation computation.
#[derive(Debug, Clone)]
pub struct DtDeviation {
    /// The deviation value `δ(f,g)(M1, M2)`.
    pub value: f64,
    /// The GCR cells (overlay of the two leaf partitions), class-free;
    /// measures are tracked per class below.
    pub cells: Vec<OverlayCell>,
    /// Number of classes `k`.
    pub n_classes: u32,
    /// Row-major `[cell][class]` selectivities w.r.t. `D1`.
    pub measures1: Vec<f64>,
    /// Row-major `[cell][class]` selectivities w.r.t. `D2`.
    pub measures2: Vec<f64>,
    /// Row-major `[cell][class]` per-region differences.
    pub per_region: Vec<f64>,
}

impl DtDeviation {
    fn from_generic(dev: FamilyDeviation<DtFamily>, n1: u64, n2: u64) -> Self {
        let nmax1 = n1.max(1) as f64;
        let nmax2 = n2.max(1) as f64;
        DtDeviation {
            value: dev.value,
            n_classes: dev.gcr.n_classes,
            measures1: dev.raw1.iter().map(|&v| v / nmax1).collect(),
            measures2: dev.raw2.iter().map(|&v| v / nmax2).collect(),
            per_region: dev.per_region,
            cells: dev.gcr.cells,
        }
    }
}

/// Deviation between two dt-models (Definition 3.6, Section 4.2): overlays
/// the two leaf partitions into the GCR and scans each dataset once, routing
/// every row through both partitions to its (unique) GCR cell.
pub fn dt_deviation(
    m1: &DtModel,
    d1: &LabeledTable,
    m2: &DtModel,
    d2: &LabeledTable,
    f: DiffFn,
    g: AggFn,
) -> DtDeviation {
    dt_deviation_par(m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// [`dt_deviation`] with an explicit [`Parallelism`] for the routing scans.
/// Bit-identical to the sequential computation for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn dt_deviation_par(
    m1: &DtModel,
    d1: &LabeledTable,
    m2: &DtModel,
    d2: &LabeledTable,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> DtDeviation {
    let dev = deviate_par::<DtFamily>(m1, d1, m2, d2, f, g, par);
    DtDeviation::from_generic(dev, d1.len() as u64, d2.len() as u64)
}

/// Focussed dt-model deviation (Definition 5.2): every GCR cell is first
/// intersected with the focussing region `ρ`; cells that miss `ρ` drop out.
/// If `ρ` carries a class label, only that class's regions participate.
pub fn dt_deviation_focussed(
    m1: &DtModel,
    d1: &LabeledTable,
    m2: &DtModel,
    d2: &LabeledTable,
    focus: &BoxRegion,
    f: DiffFn,
    g: AggFn,
) -> DtDeviation {
    let dev = deviate_focussed::<DtFamily>(m1, d1, m2, d2, focus, f, g);
    DtDeviation::from_generic(dev, d1.len() as u64, d2.len() as u64)
}

// ---------------------------------------------------------------------------
// cluster-models
// ---------------------------------------------------------------------------

/// Full result of a cluster-model deviation computation.
#[derive(Debug, Clone)]
pub struct ClusterDeviation {
    /// The deviation value.
    pub value: f64,
    /// The GCR regions (pairwise intersections + remainders).
    pub gcr: Vec<BoxRegion>,
    /// Selectivities of each GCR region w.r.t. `D1`.
    pub measures1: Vec<f64>,
    /// Selectivities of each GCR region w.r.t. `D2`.
    pub measures2: Vec<f64>,
    /// Per-region differences.
    pub per_region: Vec<f64>,
}

impl ClusterDeviation {
    fn from_generic(dev: FamilyDeviation<ClusterFamily>, n1: u64, n2: u64) -> Self {
        let nmax1 = (n1 as f64).max(1.0);
        let nmax2 = (n2 as f64).max(1.0);
        ClusterDeviation {
            value: dev.value,
            gcr: dev.gcr,
            measures1: dev.raw1.iter().map(|&v| v / nmax1).collect(),
            measures2: dev.raw2.iter().map(|&v| v / nmax2).collect(),
            per_region: dev.per_region,
        }
    }
}

/// Deviation between two cluster-models. The GCR is the box overlay with
/// remainders (see [`crate::gcr::gcr_boxes`]); both datasets are scanned
/// once to measure every GCR region.
pub fn cluster_deviation(
    m1: &ClusterModel,
    d1: &crate::data::Table,
    m2: &ClusterModel,
    d2: &crate::data::Table,
    f: DiffFn,
    g: AggFn,
) -> ClusterDeviation {
    cluster_deviation_par(m1, d1, m2, d2, f, g, Parallelism::Global)
}

/// [`cluster_deviation`] with an explicit [`Parallelism`] for the measure
/// scans. Bit-identical to the sequential computation for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn cluster_deviation_par(
    m1: &ClusterModel,
    d1: &crate::data::Table,
    m2: &ClusterModel,
    d2: &crate::data::Table,
    f: DiffFn,
    g: AggFn,
    par: Parallelism,
) -> ClusterDeviation {
    let dev = deviate_par::<ClusterFamily>(m1, d1, m2, d2, f, g, par);
    ClusterDeviation::from_generic(dev, d1.len() as u64, d2.len() as u64)
}

/// Focussed cluster-model deviation: GCR regions intersected with `ρ`.
pub fn cluster_deviation_focussed(
    m1: &ClusterModel,
    d1: &crate::data::Table,
    m2: &ClusterModel,
    d2: &crate::data::Table,
    focus: &BoxRegion,
    f: DiffFn,
    g: AggFn,
) -> ClusterDeviation {
    let dev = deviate_focussed::<ClusterFamily>(m1, d1, m2, d2, focus, f, g);
    ClusterDeviation::from_generic(dev, d1.len() as u64, d2.len() as u64)
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::model::induce_dt_measures;
    use crate::region::BoxBuilder;
    use std::sync::Arc;

    // ---------------- lits ----------------

    /// Builds the paper's Figure 6 scenario as actual transaction datasets.
    ///
    /// Supports required (items a=0, b=1, c=2), |D| = 20 each:
    ///   D1: a:0.5  b:0.4  c:0.1  ab:0.25 bc:0.05
    ///   D2: a:0.1  b:0.3  c:0.5  ab:0.05 bc:0.2
    fn figure6_datasets() -> (TransactionSet, TransactionSet) {
        // Construct D1: 20 transactions.
        // ab:5, a alone:5, b alone:2(+ab5+bc1=8→0.4), bc:1, c alone:1.
        let mut d1 = TransactionSet::new(3);
        for _ in 0..5 {
            d1.push(vec![0, 1]); // ab (counts a, b, ab)
        }
        for _ in 0..5 {
            d1.push(vec![0]); // a = 10 → 0.5
        }
        d1.push(vec![1, 2]); // bc = 1 → 0.05; b = 6+1... wait recompute
        for _ in 0..2 {
            d1.push(vec![1]); // b alone
        }
        d1.push(vec![2]); // c alone → c = 2 → 0.1
                          // Pad with empty transactions to reach 20.
        while d1.len() < 20 {
            d1.push(vec![]);
        }
        // Verify: a = 10 (0.5) ✓; b = 5 + 1 + 2 = 8 (0.4) ✓; c = 2 (0.1) ✓;
        // ab = 5 (0.25) ✓; bc = 1 (0.05) ✓.

        let mut d2 = TransactionSet::new(3);
        d2.push(vec![0, 1]); // ab = 1 → 0.05; contributes a and b
        d2.push(vec![0]); // a = 2 → 0.1
        for _ in 0..4 {
            d2.push(vec![1, 2]); // bc = 4 → 0.2; b += 4, c += 4
        }
        d2.push(vec![1]); // b = 1 + 4 + 1 = 6 → 0.3
        for _ in 0..6 {
            d2.push(vec![2]); // c = 4 + 6 = 10 → 0.5
        }
        while d2.len() < 20 {
            d2.push(vec![]);
        }
        (d1, d2)
    }

    fn figure6_models(d1: &TransactionSet, d2: &TransactionSet) -> (LitsModel, LitsModel) {
        // L1 = {a, b, ab}; L2 = {b, c, bc} (minsup 0.25 on each side).
        let l1 = crate::model::induce_lits_measures(
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[1]),
                Itemset::from_slice(&[0, 1]),
            ],
            0.25,
            d1,
        );
        let l2 = crate::model::induce_lits_measures(
            vec![
                Itemset::from_slice(&[1]),
                Itemset::from_slice(&[2]),
                Itemset::from_slice(&[1, 2]),
            ],
            0.25,
            d2,
        );
        (l1, l2)
    }

    #[test]
    fn paper_figure_6_sum_deviation() {
        // Section 2.2: δ(f_a, g_sum)(L1, L2)
        //   = |0.5−0.1| + |0.4−0.3| + |0.1−0.5| + |0.25−0.05| + |0.05−0.2|
        //   = 0.4 + 0.1 + 0.4 + 0.2 + 0.15 = 1.25.
        // (The paper prints the total as "1.125", but the five per-region
        // terms it lists sum to 1.25 — an arithmetic slip in the paper; we
        // assert the correct sum of its own terms.)
        let (d1, d2) = figure6_datasets();
        let (l1, l2) = figure6_models(&d1, &d2);
        let dev = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Sum);
        assert!((dev.value - 1.25).abs() < 1e-12, "got {}", dev.value);
        assert_eq!(dev.gcr.len(), 5);
        // Cross-check the five per-region contributions individually.
        let mut per: Vec<f64> = dev.per_region.clone();
        per.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = [0.4, 0.1, 0.4, 0.2, 0.15];
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (p, e) in per.iter().zip(expected) {
            assert!((p - e).abs() < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    fn paper_figure_6_max_deviation_is_0_4() {
        // Section 4.1: δ(f_a, g_max)(L1, L2) = 0.4.
        let (d1, d2) = figure6_datasets();
        let (l1, l2) = figure6_models(&d1, &d2);
        let dev = lits_deviation(&l1, &d1, &l2, &d2, DiffFn::Absolute, AggFn::Max);
        assert!((dev.value - 0.4).abs() < 1e-12, "got {}", dev.value);
    }

    #[test]
    fn lits_deviation_identical_models_is_zero() {
        let (d1, _) = figure6_datasets();
        let (l1, _) = figure6_models(&d1, &d1);
        let dev = lits_deviation(&l1, &d1, &l1, &d1, DiffFn::Absolute, AggFn::Sum);
        assert_eq!(dev.value, 0.0);
    }

    #[test]
    fn lits_focussed_restricts_universe() {
        let (d1, d2) = figure6_datasets();
        let (l1, l2) = figure6_models(&d1, &d2);
        // Focus on items {a, b} = {0, 1}: only a, b, ab participate.
        let dev =
            lits_deviation_focussed(&l1, &d1, &l2, &d2, &[0, 1], DiffFn::Absolute, AggFn::Sum);
        // |0.5−0.1| + |0.4−0.3| + |0.25−0.05| = 0.7
        assert!((dev.value - 0.7).abs() < 1e-12, "got {}", dev.value);
        assert_eq!(dev.gcr.len(), 3);
    }

    #[test]
    fn deviation_fixed_matches_manual() {
        let v = deviation_fixed(&[5, 0], &[1, 2], 10, 10, DiffFn::Absolute, AggFn::Sum);
        assert!((v - (0.4 + 0.2)).abs() < 1e-12);
        let m = deviation_fixed(&[5, 0], &[1, 2], 10, 10, DiffFn::Absolute, AggFn::Max);
        assert!((m - 0.4).abs() < 1e-12);
    }

    #[test]
    fn deviation_fixed_defined_on_empty_datasets() {
        // Regression: n1 == 0 or n2 == 0 used to produce NaN for f_s (0/0)
        // and f_χ² (zero expectation); an empty dataset now counts as
        // selectivity 0 everywhere.
        for f in [
            DiffFn::Absolute,
            DiffFn::Scaled,
            DiffFn::ChiSquared { c: 0.5 },
        ] {
            for g in [AggFn::Sum, AggFn::Max] {
                let one_empty = deviation_fixed(&[5, 0], &[1, 2], 0, 10, f, g);
                assert!(one_empty.is_finite(), "{f:?}/{g:?}: {one_empty}");
                let other_empty = deviation_fixed(&[5, 0], &[1, 2], 10, 0, f, g);
                assert!(other_empty.is_finite(), "{f:?}/{g:?}: {other_empty}");
                let both_empty = deviation_fixed(&[0, 0], &[0, 0], 0, 0, f, g);
                assert!(both_empty.is_finite(), "{f:?}/{g:?}: {both_empty}");
            }
        }
        // Two genuinely empty measure components do not deviate at all
        // under f_a — the defined value is exactly 0.
        assert_eq!(
            deviation_fixed(&[0, 0], &[0, 0], 0, 0, DiffFn::Absolute, AggFn::Sum),
            0.0
        );
        // Against an empty side, f_a degenerates to the populated side's
        // total selectivity mass: 0.1 + 0.2 here.
        let v = deviation_fixed(&[0, 0], &[1, 2], 0, 10, DiffFn::Absolute, AggFn::Sum);
        assert!((v - 0.3).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn lits_deviation_with_empty_dataset_is_defined() {
        let (d1, _) = figure6_datasets();
        let (l1, _) = figure6_models(&d1, &d1);
        let empty = TransactionSet::new(3);
        let empty_model = crate::model::induce_lits_measures(Vec::new(), 0.25, &empty);
        for f in [
            DiffFn::Absolute,
            DiffFn::Scaled,
            DiffFn::ChiSquared { c: 0.5 },
        ] {
            let dev = lits_deviation(&l1, &d1, &empty_model, &empty, f, AggFn::Sum);
            assert!(dev.value.is_finite(), "{f:?}: {}", dev.value);
            assert!(dev.per_region.iter().all(|d| d.is_finite()));
        }
    }

    // ---------------- dt ----------------

    /// Two one-attribute datasets and trees mirroring the paper's Figure 5
    /// structure (different split points ⇒ non-trivial overlay).
    fn dt_fixture() -> (Arc<Schema>, LabeledTable, LabeledTable, DtModel, DtModel) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
        let mut d1 = LabeledTable::new(Arc::clone(&schema), 2);
        let mut d2 = LabeledTable::new(Arc::clone(&schema), 2);
        // D1: ages 0..100; class = age < 30.
        for i in 0..100 {
            let age = i as f64;
            d1.push_row(&[Value::Num(age)], u32::from(age < 30.0));
        }
        // D2: class boundary at 50 instead.
        for i in 0..100 {
            let age = i as f64;
            d2.push_row(&[Value::Num(age)], u32::from(age < 50.0));
        }
        let t1 = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("age", 30.0).build(),
                BoxBuilder::new(&schema).ge("age", 30.0).build(),
            ],
            &d1,
        );
        let t2 = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("age", 50.0).build(),
                BoxBuilder::new(&schema).ge("age", 50.0).build(),
            ],
            &d2,
        );
        (schema, d1, d2, t1, t2)
    }

    #[test]
    fn dt_deviation_overlay_and_value() {
        let (_s, d1, d2, t1, t2) = dt_fixture();
        let dev = dt_deviation(&t1, &d1, &t2, &d2, DiffFn::Absolute, AggFn::Sum);
        // Overlay cells: [<30), [30,50), [≥50) — 3 cells.
        assert_eq!(dev.cells.len(), 3);
        // Manual: cell [0,30): D1 class1 sel = .30, class0 0; D2 class1 .30.
        //   diffs: |0.30−0.30| + |0−0| = 0
        // cell [30,50): D1 class0 .20; D2 class1 .20 → |0−.20| + |.20−0| = .4
        // cell [50,∞): both class0 .50 → 0. Total = 0.4.
        assert!((dev.value - 0.4).abs() < 1e-12, "got {}", dev.value);
    }

    #[test]
    fn dt_deviation_identical_is_zero() {
        let (_s, d1, _d2, t1, _t2) = dt_fixture();
        let dev = dt_deviation(&t1, &d1, &t1, &d1, DiffFn::Absolute, AggFn::Sum);
        assert_eq!(dev.value, 0.0);
    }

    #[test]
    fn dt_deviation_focussed_on_region() {
        let (s, d1, d2, t1, t2) = dt_fixture();
        // Focus on age < 30: that slice agrees in both datasets → 0.
        let focus = BoxBuilder::new(&s).lt("age", 30.0).build();
        let dev = dt_deviation_focussed(&t1, &d1, &t2, &d2, &focus, DiffFn::Absolute, AggFn::Sum);
        assert_eq!(dev.value, 0.0);
        // Focus on the disputed band [30, 50): full disagreement 0.4.
        let focus = BoxBuilder::new(&s).range("age", 30.0, 50.0).build();
        let dev = dt_deviation_focussed(&t1, &d1, &t2, &d2, &focus, DiffFn::Absolute, AggFn::Sum);
        assert!((dev.value - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dt_focussed_monotonicity_for_fa() {
        // Section 5 remark: for f_a and g ∈ {sum, max}, ρ ⊆ ρ′ implies
        // δρ ≤ δρ′.
        let (s, d1, d2, t1, t2) = dt_fixture();
        let small = BoxBuilder::new(&s).range("age", 35.0, 45.0).build();
        let large = BoxBuilder::new(&s).range("age", 20.0, 60.0).build();
        for g in [AggFn::Sum, AggFn::Max] {
            let ds = dt_deviation_focussed(&t1, &d1, &t2, &d2, &small, DiffFn::Absolute, g);
            let dl = dt_deviation_focussed(&t1, &d1, &t2, &d2, &large, DiffFn::Absolute, g);
            assert!(ds.value <= dl.value + 1e-12, "{:?}", g);
        }
    }

    #[test]
    fn dt_deviation_chi_squared_zero_when_identical() {
        let (_s, d1, _d2, t1, _t2) = dt_fixture();
        let dev = dt_deviation(
            &t1,
            &d1,
            &t1,
            &d1,
            DiffFn::ChiSquared { c: 0.5 },
            AggFn::Sum,
        );
        // Identical structure & data: every populated cell contributes 0,
        // but empty-expected cells contribute c each. With a perfect split
        // there are two zero-expectation regions (class 0 in the <30 leaf,
        // class 1 in the ≥30 leaf): value = 2c = 1.0.
        assert!((dev.value - 1.0).abs() < 1e-12, "got {}", dev.value);
    }

    // ---------------- cluster ----------------

    #[test]
    fn cluster_deviation_basics() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut d1 = crate::data::Table::new(Arc::clone(&schema));
        let mut d2 = crate::data::Table::new(Arc::clone(&schema));
        for i in 0..10 {
            d1.push_row(&[Value::Num(i as f64)]); // clustered low
            d2.push_row(&[Value::Num(i as f64 + 5.0)]); // shifted by 5
        }
        let c1 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", 0.0, 10.0).build()],
            vec![1.0],
            10,
        );
        let c2 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", 5.0, 15.0).build()],
            vec![1.0],
            10,
        );
        let dev = cluster_deviation(&c1, &d1, &c2, &d2, DiffFn::Absolute, AggFn::Sum);
        // GCR: [5,10) ∩, [0,5) rem of c1, [10,15) rem of c2.
        // sel1: [5,10)=0.5, [0,5)=0.5, [10,15)=0.0
        // sel2: [5,10)=0.5, [0,5)=0.0, [10,15)=0.5
        // δ = 0 + 0.5 + 0.5 = 1.0.
        assert_eq!(dev.gcr.len(), 3);
        assert!((dev.value - 1.0).abs() < 1e-12, "got {}", dev.value);
        // Identical models/datasets deviate by zero.
        let same = cluster_deviation(&c1, &d1, &c1, &d1, DiffFn::Absolute, AggFn::Sum);
        assert_eq!(same.value, 0.0);
    }

    #[test]
    fn cluster_deviation_focus_restricts() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut d1 = crate::data::Table::new(Arc::clone(&schema));
        let mut d2 = crate::data::Table::new(Arc::clone(&schema));
        for i in 0..10 {
            d1.push_row(&[Value::Num(i as f64)]);
            d2.push_row(&[Value::Num(i as f64 + 5.0)]);
        }
        let c1 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", 0.0, 10.0).build()],
            vec![1.0],
            10,
        );
        let c2 = ClusterModel::new(
            vec![BoxBuilder::new(&schema).range("x", 5.0, 15.0).build()],
            vec![1.0],
            10,
        );
        // Focus on [5, 10): the shared region where both agree (0.5 vs 0.5).
        let focus = BoxBuilder::new(&schema).range("x", 5.0, 10.0).build();
        let dev =
            cluster_deviation_focussed(&c1, &d1, &c2, &d2, &focus, DiffFn::Absolute, AggFn::Sum);
        assert_eq!(dev.value, 0.0);
    }
}
