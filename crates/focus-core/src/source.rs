//! The counting-source layer: one handle per dataset that serves itemset
//! support counts through whichever backend a deterministic cost model
//! picks, building the vertical index at most once per handle.
//!
//! Every measure-extension scan in the FOCUS pipeline ultimately asks the
//! same question — "how many transactions support each of these itemsets?"
//! — yet before this module each call site chose its own access structure:
//! the auto dispatcher built a throwaway [`VerticalIndex`] per call, and a
//! `matrix` run re-indexed every snapshot for every surviving pair. A
//! [`CountSource`] is the snapshot-scoped answer: it wraps the horizontal
//! [`TransactionSet`] view (borrowed or owned) or a pre-built index, and
//! lazily caches the index behind a [`OnceLock`] so `Fn + Sync` parallel
//! closures can share one handle across worker threads.
//!
//! ## The cost model
//!
//! [`choose_backend`] replaces the old static gate (≥ 8 itemsets over
//! ≥ 1024 transactions) with an explicit three-way comparison —
//! [`BackendChoice::Horizontal`] / [`BackendChoice::Tidset`] /
//! [`BackendChoice::Diffset`]:
//!
//! * horizontal scan ≈ `rows × Σ|itemset|` subset probes plus one bitmap
//!   build per transaction (`total_items` touches);
//! * vertical count ≈ `Σ|itemset| × words` AND/popcount word ops, plus —
//!   when no index exists yet — a build pass weighted by
//!   [`INDEX_BUILD_WEIGHT`] so a throwaway index never wins on a workload
//!   too small to amortise it;
//! * when vertical wins, a dense dataset (average fill at or above 1/4,
//!   so a meaningful share of items sits past the per-row 1/2 density
//!   crossover) builds the **diffset-adaptive** index
//!   ([`VerticalIndex::build_adaptive`]) instead of the all-tidset one —
//!   same word count, complement rows for the dense items.
//!
//! The choice is a **pure function of data shape, workload and budget** —
//! never thread count, timing, or whether a cache already holds the index
//! — so dispatch can never violate the workspace's
//! bit-identical-for-any-thread-count contract. All backends produce
//! identical `u64` counts (the differential suite enforces this), so the
//! model can only change cost, never a result. [`prefers_vertical`] is
//! the boolean view of the same model (`!= Horizontal`).
//!
//! ## The index budget
//!
//! A huge sparse item universe over few transactions makes the bit matrix
//! mostly zeros; the budget caps how large an index the cost model may
//! choose to build. It resolves like `FOCUS_THREADS`: the CLI override
//! ([`set_global_index_budget`], the `--index-budget` flag) beats the
//! `FOCUS_INDEX_BUDGET` environment variable (bytes, with optional
//! `k`/`m`/`g` binary suffixes; unparseable values warn once and fall
//! back) beats the [`DEFAULT_INDEX_BUDGET`] of 128 MiB. A budget of `0`
//! never builds an index — a forced-horizontal knob.

use crate::data::TransactionSet;
use crate::model::count_itemsets_par;
use crate::region::Itemset;
use crate::vertical::{count_itemsets_grouped_par, VerticalIndex};
use focus_exec::Parallelism;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Index budget plumbing (mirrors focus-exec's FOCUS_THREADS handling)

/// Default cap on the bit-matrix size the cost model may build: 128 MiB.
pub const DEFAULT_INDEX_BUDGET: usize = 128 << 20;

/// Sentinel for "no process-wide override set".
const BUDGET_UNSET: usize = usize::MAX;

/// Process-wide budget override (CLI `--index-budget`).
static GLOBAL_BUDGET: AtomicUsize = AtomicUsize::new(BUDGET_UNSET);

/// Lazily parsed `FOCUS_INDEX_BUDGET` environment setting.
static ENV_BUDGET: OnceLock<Option<usize>> = OnceLock::new();

/// Parses a byte-count knob: a plain byte count, optionally suffixed with
/// `k`, `m` or `g` (case-insensitive, binary units). `"0"` is valid and
/// means "never build an index".
pub fn parse_index_budget(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, unit) = match t.as_bytes().last()? {
        b'k' | b'K' => (&t[..t.len() - 1], 1usize << 10),
        b'm' | b'M' => (&t[..t.len() - 1], 1 << 20),
        b'g' | b'G' => (&t[..t.len() - 1], 1 << 30),
        _ => (t, 1),
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse::<usize>().ok()?.checked_mul(unit)
}

fn env_index_budget() -> Option<usize> {
    // A typo'd budget silently falling back would be invisible (counts are
    // bit-identical either way), so say so once.
    focus_exec::env_knob_once(
        &ENV_BUDGET,
        "FOCUS_INDEX_BUDGET",
        parse_index_budget,
        |raw| {
            eprintln!(
                "focus-core: ignoring unparseable FOCUS_INDEX_BUDGET={raw:?} \
             (want a byte count, optionally with a k/m/g suffix); \
             using the {} MiB default",
                DEFAULT_INDEX_BUDGET >> 20
            )
        },
    )
}

/// Sets the process-wide index budget in bytes (the CLI's `--index-budget`
/// flag). Takes precedence over the `FOCUS_INDEX_BUDGET` environment
/// variable. `0` means "never build an index".
pub fn set_global_index_budget(bytes: usize) {
    GLOBAL_BUDGET.store(bytes.min(BUDGET_UNSET - 1), Ordering::Relaxed);
}

/// The process-wide index budget: [`set_global_index_budget`] if called,
/// else `FOCUS_INDEX_BUDGET`, else [`DEFAULT_INDEX_BUDGET`].
pub fn global_index_budget() -> usize {
    match GLOBAL_BUDGET.load(Ordering::Relaxed) {
        BUDGET_UNSET => env_index_budget().unwrap_or(DEFAULT_INDEX_BUDGET),
        b => b,
    }
}

// ---------------------------------------------------------------------------
// The cost model

/// How much more a build-pass touch costs than a steady-state word op.
/// Building writes scattered cache lines (item-major matrix, row-major
/// input) while counting streams them, and a throwaway build is pure
/// overhead if the workload never revisits the index — so the build term
/// is up-weighted to keep one-shot small workloads on the horizontal scan.
const INDEX_BUILD_WEIGHT: usize = 4;

/// Average dataset density (as `total_items / (n_transactions × n_items)`)
/// at or above which the cost model builds the diffset-adaptive index:
/// 1/4, expressed as the numerator of the comparison
/// `DIFFSET_DENSITY_NUM × total_items ≥ n_transactions × n_items`. At a
/// quarter average fill, a meaningful share of items sits past the
/// per-row 1/2 crossover where the complement row is the sparser one.
pub const DIFFSET_DENSITY_NUM: u128 = 4;

/// Which counting backend the cost model picked for a workload.
///
/// `Tidset` and `Diffset` differ only in **which index gets built** — the
/// all-tidset matrix versus the density-adaptive mixed layout
/// ([`VerticalIndex::build_adaptive`]); every counting entry point
/// resolves the representation per row, so an already-built index of
/// either flavour serves either choice with identical counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// Scan the horizontal transaction list.
    Horizontal,
    /// Count through the all-tidset vertical index.
    Tidset,
    /// Count through the diffset-adaptive vertical index (dense items
    /// stored as complement rows).
    Diffset,
}

/// The deterministic three-way backend choice for counting `n_itemsets`
/// itemsets totalling `workload_items` items over the given data shape:
/// horizontal when the vertical word fold (including, when `index_built`
/// is false, the [`INDEX_BUILD_WEIGHT`]-weighted build pass) loses or the
/// index would not fit `budget_bytes`; otherwise tidset or diffset by the
/// dataset's average density against [`DIFFSET_DENSITY_NUM`].
///
/// Inputs are data shape, workload and budget only — never thread count,
/// timing, or cache state — so for a fixed dataset and call sequence the
/// dispatch decision is identical on every run and every `FOCUS_THREADS`
/// setting. `index_built` exists for strictly sequential callers that
/// already hold an index (the Apriori level loop); shared [`CountSource`]
/// handles always pass `false` so their dispatch never depends on what a
/// previous call happened to cache. The density term depends on the data
/// alone, so one dataset always maps to one index flavour no matter how
/// the workload varies call to call.
pub fn choose_backend(
    n_itemsets: usize,
    workload_items: usize,
    n_transactions: usize,
    n_items: u32,
    total_items: usize,
    index_built: bool,
    budget_bytes: usize,
) -> BackendChoice {
    if n_itemsets == 0 || n_transactions == 0 {
        // Nothing to scan; the trivial early-outs of all backends agree,
        // so route to whatever already exists.
        return if index_built {
            BackendChoice::Tidset
        } else {
            BackendChoice::Horizontal
        };
    }
    let words = n_transactions.div_ceil(64) as u128;
    // Horizontal: every transaction is bitmapped once (≈ total_items
    // touches) and probed once per itemset item.
    let horizontal = (n_transactions as u128) * (workload_items as u128) + total_items as u128;
    // Vertical: AND + popcount over each itemset item's word row, plus the
    // weighted build pass (one touch per stored item, one per matrix byte)
    // when no index exists yet.
    let build = if index_built {
        0
    } else {
        if VerticalIndex::estimate_bytes_for(n_items, n_transactions) > budget_bytes {
            return BackendChoice::Horizontal;
        }
        (INDEX_BUILD_WEIGHT as u128) * (total_items as u128 + (n_items as u128) * words.div_ceil(8))
    };
    let vertical = (workload_items as u128) * words + build;
    if vertical >= horizontal {
        return BackendChoice::Horizontal;
    }
    // Vertical wins; pick the row layout by the dataset's average density.
    if DIFFSET_DENSITY_NUM * (total_items as u128) >= (n_transactions as u128) * (n_items as u128) {
        BackendChoice::Diffset
    } else {
        BackendChoice::Tidset
    }
}

/// The boolean view of [`choose_backend`]: `true` for either vertical
/// flavour. Kept for callers that only care about the
/// horizontal-vs-vertical split.
pub fn prefers_vertical(
    n_itemsets: usize,
    workload_items: usize,
    n_transactions: usize,
    n_items: u32,
    total_items: usize,
    index_built: bool,
    budget_bytes: usize,
) -> bool {
    choose_backend(
        n_itemsets,
        workload_items,
        n_transactions,
        n_items,
        total_items,
        index_built,
        budget_bytes,
    ) != BackendChoice::Horizontal
}

// ---------------------------------------------------------------------------
// CountSource

/// How a [`CountSource`] holds its data.
enum Repr<'a> {
    /// A borrowed horizontal view (the common in-process case).
    Borrowed(&'a TransactionSet),
    /// An owned horizontal view (e.g. a text-loaded registry snapshot).
    Owned(TransactionSet),
    /// A pre-built index with no horizontal view at all — the
    /// decode-to-index path, where binary snapshot bytes become bitsets
    /// without ever materialising a `TransactionSet`.
    Index(VerticalIndex),
}

/// A snapshot-scoped counting handle: wraps one dataset and serves
/// [`CountSource::counts`] through whichever backend [`prefers_vertical`]
/// picks per call, building the [`VerticalIndex`] at most once for the
/// handle's lifetime.
///
/// The handle is `Sync` and interior-mutable ([`OnceLock`]), so parallel
/// `Fn + Sync` closures — the matrix engine's per-pair fan-out — can share
/// one source per snapshot and still pay at most one index build between
/// them. The index budget is snapshotted at construction, so every count
/// through one handle sees the same budget regardless of later knob turns.
pub struct CountSource<'a> {
    repr: Repr<'a>,
    cache: OnceLock<VerticalIndex>,
    budget: usize,
}

impl std::fmt::Debug for CountSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountSource")
            .field(
                "repr",
                &match self.repr {
                    Repr::Borrowed(_) => "borrowed",
                    Repr::Owned(_) => "owned",
                    Repr::Index(_) => "index",
                },
            )
            .field("indexed", &self.index_built())
            .field("budget", &self.budget)
            .finish()
    }
}

impl<'a> CountSource<'a> {
    /// A source borrowing `data` (no copy); the usual in-process handle.
    pub fn borrowed(data: &'a TransactionSet) -> CountSource<'a> {
        CountSource {
            repr: Repr::Borrowed(data),
            cache: OnceLock::new(),
            budget: global_index_budget(),
        }
    }

    /// A source owning `data` — e.g. a registry snapshot loaded from text.
    pub fn from_owned(data: TransactionSet) -> CountSource<'static> {
        CountSource {
            repr: Repr::Owned(data),
            cache: OnceLock::new(),
            budget: global_index_budget(),
        }
    }

    /// A source that *is* an index: every count goes vertical, no
    /// horizontal view exists. This is the decode-to-index registry path.
    pub fn from_index(index: VerticalIndex) -> CountSource<'static> {
        CountSource {
            repr: Repr::Index(index),
            cache: OnceLock::new(),
            budget: global_index_budget(),
        }
    }

    /// Overrides the handle's index budget (tests and benches; production
    /// callers use the process-wide knob). Has no effect on an
    /// index-backed source, which never builds anything.
    pub fn with_index_budget(mut self, bytes: usize) -> CountSource<'a> {
        self.budget = bytes;
        self
    }

    /// Number of transactions behind the handle.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Borrowed(d) => d.len(),
            Repr::Owned(d) => d.len(),
            Repr::Index(idx) => idx.n_transactions(),
        }
    }

    /// True when the handle holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the item universe behind the handle.
    pub fn n_items(&self) -> u32 {
        match &self.repr {
            Repr::Borrowed(d) => d.n_items(),
            Repr::Owned(d) => d.n_items(),
            Repr::Index(idx) => idx.n_items(),
        }
    }

    /// The horizontal view, when the handle has one (`None` for an
    /// index-backed source).
    pub fn transactions(&self) -> Option<&TransactionSet> {
        match &self.repr {
            Repr::Borrowed(d) => Some(d),
            Repr::Owned(d) => Some(d),
            Repr::Index(_) => None,
        }
    }

    /// True when a vertical index exists — pre-built or already cached.
    pub fn index_built(&self) -> bool {
        matches!(self.repr, Repr::Index(_)) || self.cache.get().is_some()
    }

    /// Support counts for `itemsets`, dispatched by the cost model.
    ///
    /// Index-backed sources always count vertically. Horizontal-backed
    /// sources consult [`choose_backend`] with `index_built = false`
    /// every call — dispatch depends only on the workload's shape, never
    /// on what an earlier call cached — and a winning vertical choice
    /// reuses (or race-safely builds) the cached index, diffset-adaptive
    /// when the choice was [`BackendChoice::Diffset`]. (The density term
    /// is a function of the data alone, so every call over one handle
    /// resolves to the same index flavour.) Vertical counting goes through
    /// the batched prefix-run path ([`count_itemsets_grouped_par`]), so
    /// sibling itemsets in a measure-extension workload share one cached
    /// prefix mask per run. Counts are bit-identical across backends and
    /// thread counts.
    pub fn counts(&self, itemsets: &[Itemset], par: Parallelism) -> Vec<u64> {
        let data = match &self.repr {
            Repr::Index(idx) => return count_itemsets_grouped_par(idx, itemsets, par),
            Repr::Borrowed(d) => d,
            Repr::Owned(d) => d,
        };
        let workload_items: usize = itemsets.iter().map(Itemset::len).sum();
        match choose_backend(
            itemsets.len(),
            workload_items,
            data.len(),
            data.n_items(),
            data.total_items(),
            false,
            self.budget,
        ) {
            BackendChoice::Horizontal => count_itemsets_par(data, itemsets, par),
            choice => {
                let index = self.cache.get_or_init(|| {
                    if choice == BackendChoice::Diffset {
                        VerticalIndex::build_adaptive(data)
                    } else {
                        VerticalIndex::build(data)
                    }
                });
                count_itemsets_grouped_par(index, itemsets, par)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Compile-time contract: sources are shared across worker threads.
    const fn assert_sync<T: Sync>() {}
    const _: () = assert_sync::<CountSource<'static>>();

    fn toy() -> TransactionSet {
        let mut ts = TransactionSet::new(2);
        ts.push(vec![0, 1]);
        ts.push(vec![0]);
        ts.push(vec![1]);
        ts.push(vec![0, 1]);
        ts
    }

    fn random_set(seed: u64, n: usize, n_items: u32, density: f64) -> TransactionSet {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items)
                .filter(|_| rng.gen::<f64>() < density)
                .collect();
            ts.push(t);
        }
        ts
    }

    #[test]
    fn parse_index_budget_accepts_bytes_and_binary_suffixes() {
        assert_eq!(parse_index_budget("0"), Some(0));
        assert_eq!(parse_index_budget("4096"), Some(4096));
        assert_eq!(parse_index_budget("64k"), Some(64 << 10));
        assert_eq!(parse_index_budget("64K"), Some(64 << 10));
        assert_eq!(parse_index_budget("128m"), Some(128 << 20));
        assert_eq!(parse_index_budget("2G"), Some(2 << 30));
        assert_eq!(parse_index_budget(" 16m "), Some(16 << 20));
        for bad in ["", "m", "-1", "1.5g", "12kb", "lots", "1 6k"] {
            assert_eq!(parse_index_budget(bad), None, "{bad:?}");
        }
        // Overflow saturates to None, never wraps.
        assert_eq!(parse_index_budget(&format!("{}g", usize::MAX)), None);
    }

    #[test]
    fn cost_model_is_deterministic_and_budget_capped() {
        // A workload big enough to amortise the build prefers vertical…
        let big = prefers_vertical(17, 25, 2000, 9, 7200, false, DEFAULT_INDEX_BUDGET);
        assert!(big);
        // …and the same inputs always give the same answer.
        for _ in 0..8 {
            assert_eq!(
                prefers_vertical(17, 25, 2000, 9, 7200, false, DEFAULT_INDEX_BUDGET),
                big
            );
        }
        // A single tiny scan never pays for a throwaway build.
        assert!(!prefers_vertical(
            1,
            2,
            1000,
            10,
            3000,
            false,
            DEFAULT_INDEX_BUDGET
        ));
        // …but reuses an index that is already there.
        assert!(prefers_vertical(
            1,
            2,
            1000,
            10,
            3000,
            true,
            DEFAULT_INDEX_BUDGET
        ));
        // Budget 0 forbids building regardless of workload.
        assert!(!prefers_vertical(
            1000, 5000, 100_000, 50, 1_000_000, false, 0
        ));
        // Degenerate shapes never dispatch a build.
        assert!(!prefers_vertical(
            0,
            0,
            1000,
            10,
            3000,
            false,
            DEFAULT_INDEX_BUDGET
        ));
        assert!(!prefers_vertical(
            5,
            10,
            0,
            10,
            0,
            false,
            DEFAULT_INDEX_BUDGET
        ));
    }

    #[test]
    fn three_way_choice_follows_density_and_budget() {
        // A build-amortising workload over sparse data: tidset.
        assert_eq!(
            choose_backend(17, 25, 2000, 9, 2700, false, DEFAULT_INDEX_BUDGET),
            BackendChoice::Tidset,
            "density 0.15 stays tidset"
        );
        // Same workload, dense data (≥ 1/4 average fill): diffset.
        assert_eq!(
            choose_backend(17, 25, 2000, 9, 7200, false, DEFAULT_INDEX_BUDGET),
            BackendChoice::Diffset,
            "density 0.4 crosses to diffset"
        );
        // Exactly the 1/4 boundary is dense.
        assert_eq!(
            choose_backend(17, 25, 2000, 8, 4000, false, DEFAULT_INDEX_BUDGET),
            BackendChoice::Diffset
        );
        // Too small to amortise a build, or over budget: horizontal, no
        // matter the density.
        assert_eq!(
            choose_backend(1, 2, 1000, 10, 8000, false, DEFAULT_INDEX_BUDGET),
            BackendChoice::Horizontal
        );
        assert_eq!(
            choose_backend(1000, 5000, 100_000, 50, 4_000_000, false, 0),
            BackendChoice::Horizontal
        );
        // Degenerate shapes route to whatever already exists.
        assert_eq!(
            choose_backend(0, 0, 1000, 10, 3000, false, DEFAULT_INDEX_BUDGET),
            BackendChoice::Horizontal
        );
        assert_eq!(
            choose_backend(0, 0, 1000, 10, 3000, true, DEFAULT_INDEX_BUDGET),
            BackendChoice::Tidset
        );
        // prefers_vertical is exactly the boolean view.
        for (args, want) in [
            ((17usize, 25usize, 2000usize, 9u32, 7200usize, false), true),
            ((17, 25, 2000, 9, 2700, false), true),
            ((1, 2, 1000, 10, 8000, false), false),
        ] {
            let (a, b, c, d, e, f) = args;
            assert_eq!(
                prefers_vertical(a, b, c, d, e, f, DEFAULT_INDEX_BUDGET),
                want
            );
        }
    }

    #[test]
    fn dense_sources_cache_the_adaptive_index() {
        // Density 0.7 — well past the crossover — over a workload that
        // amortises the build: the handle must cache the diffset-adaptive
        // index and still count identically to the horizontal scan.
        let ts = random_set(31, 2000, 9, 0.7);
        let sets: Vec<Itemset> = (0..9u32)
            .map(|i| Itemset::from_slice(&[i]))
            .chain((0..8u32).map(|i| Itemset::from_slice(&[i, i + 1])))
            .chain((0..7u32).map(|i| Itemset::from_slice(&[i, i + 1, i + 2])))
            .collect();
        let source = CountSource::borrowed(&ts).with_index_budget(DEFAULT_INDEX_BUDGET);
        let got = source.counts(&sets, Parallelism::Sequential);
        assert!(source.index_built());
        assert!(
            source.cache.get().unwrap().n_diffset_rows() > 0,
            "dense data must cache the adaptive index"
        );
        assert_eq!(got, count_itemsets_par(&ts, &sets, Parallelism::Sequential));
    }

    #[test]
    fn counts_match_horizontal_for_all_reprs() {
        let ts = random_set(21, 600, 11, 0.35);
        let sets: Vec<Itemset> = (0..11u32)
            .map(|i| Itemset::from_slice(&[i]))
            .chain((0..10u32).map(|i| Itemset::from_slice(&[i, i + 1])))
            .chain([Itemset::new(vec![]), Itemset::from_slice(&[40])])
            .collect();
        let reference = count_itemsets_par(&ts, &sets, Parallelism::Sequential);
        let borrowed = CountSource::borrowed(&ts);
        assert_eq!(borrowed.counts(&sets, Parallelism::Sequential), reference);
        let owned = CountSource::from_owned(ts.clone());
        assert_eq!(owned.counts(&sets, Parallelism::Sequential), reference);
        let indexed = CountSource::from_index(VerticalIndex::build(&ts));
        assert_eq!(indexed.counts(&sets, Parallelism::Sequential), reference);
        // Forced-horizontal budget: still the same counts.
        let capped = CountSource::borrowed(&ts).with_index_budget(0);
        assert_eq!(capped.counts(&sets, Parallelism::Sequential), reference);
        assert!(!capped.index_built(), "budget 0 must never build");
    }

    #[test]
    fn index_is_cached_across_calls() {
        let ts = random_set(5, 2000, 9, 0.4);
        let sets: Vec<Itemset> = (0..9u32)
            .map(|i| Itemset::from_slice(&[i]))
            .chain((0..8u32).map(|i| Itemset::from_slice(&[i, i + 1])))
            .collect();
        // Pin the budget: another test in this binary may be exercising
        // the process-wide setter concurrently.
        let source = CountSource::borrowed(&ts).with_index_budget(DEFAULT_INDEX_BUDGET);
        assert!(!source.index_built());
        let first = source.counts(&sets, Parallelism::Sequential);
        assert!(source.index_built(), "this workload should go vertical");
        // The second call reuses the cached index and agrees bit-for-bit.
        let second = source.counts(&sets, Parallelism::Sequential);
        assert_eq!(first, second);
        assert_eq!(
            first,
            count_itemsets_par(&ts, &sets, Parallelism::Sequential)
        );
    }

    #[test]
    fn accessors_cover_every_repr() {
        let ts = toy();
        let borrowed = CountSource::borrowed(&ts);
        assert_eq!(borrowed.len(), 4);
        assert_eq!(borrowed.n_items(), 2);
        assert!(!borrowed.is_empty());
        assert!(borrowed.transactions().is_some());
        let indexed = CountSource::from_index(VerticalIndex::build(&ts));
        assert_eq!(indexed.len(), 4);
        assert_eq!(indexed.n_items(), 2);
        assert!(indexed.transactions().is_none());
        assert!(indexed.index_built());
        let empty = CountSource::from_owned(TransactionSet::new(3));
        assert!(empty.is_empty());
        assert_eq!(
            empty.counts(
                &[Itemset::new(vec![]), Itemset::from_slice(&[1])],
                Parallelism::Sequential
            ),
            vec![0, 0]
        );
    }

    #[test]
    fn global_budget_defaults_and_overrides() {
        // No override set in this test binary unless another test in this
        // process set one; exercise the setter round trip explicitly.
        set_global_index_budget(64 << 10);
        assert_eq!(global_index_budget(), 64 << 10);
        set_global_index_budget(0);
        assert_eq!(global_index_budget(), 0);
        // usize::MAX is clamped below the "unset" sentinel, not treated
        // as unset.
        set_global_index_budget(usize::MAX);
        assert_eq!(global_index_budget(), usize::MAX - 1);
        set_global_index_budget(DEFAULT_INDEX_BUDGET);
        assert_eq!(global_index_budget(), DEFAULT_INDEX_BUDGET);
    }
}
