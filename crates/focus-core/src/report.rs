//! One-call comparison reports: deviation + qualification + drill-down in
//! a single artifact.
//!
//! The paper's workflow (Sections 3–5) is: compute `δ`, qualify it against
//! the bootstrap null, and — if significant — rank regions to find *where*
//! the change lives. [`lits_report`] and [`dt_report`] run that pipeline
//! end-to-end and return a structured [`ComparisonReport`] with a
//! human-readable `Display`, which is what a monitoring job would log or
//! page on.

use crate::data::{LabeledTable, TransactionSet};
use crate::deviation::{dt_deviation, lits_deviation};
use crate::diff::{AggFn, DiffFn};
use crate::model::{DtModel, LitsModel};
use crate::qualify::{qualify_tables, qualify_transactions};
use std::fmt;

/// Options for report generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportOptions {
    /// Bootstrap replicates for the significance column (0 = skip
    /// qualification — e.g. when the caller already knows the verdict).
    pub reps: usize,
    /// Seed for the bootstrap.
    pub seed: u64,
    /// How many top drifting regions to include.
    pub top_k: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            reps: 49,
            seed: 7,
            top_k: 5,
        }
    }
}

/// The outcome of a full dataset comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Which model class produced the report (`"lits"` or `"dt"`).
    pub model_class: &'static str,
    /// The deviation `δ(f_a, g_sum)`.
    pub deviation: f64,
    /// The model-only upper bound δ* — computable without scans.
    pub bound: Option<f64>,
    /// Bootstrap significance percentage, when requested.
    pub significance_percent: Option<f64>,
    /// Number of GCR regions the deviation aggregated over.
    pub n_regions: usize,
    /// The `top_k` regions by per-region difference: (description, Δ).
    pub top_regions: Vec<(String, f64)>,
    /// Sizes of the two datasets.
    pub sizes: (usize, usize),
}

impl ComparisonReport {
    /// True if the report carries a significance at or above
    /// `100·(1 − alpha)` percent.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.significance_percent
            .is_some_and(|s| s >= 100.0 * (1.0 - alpha))
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FOCUS {} comparison: |D1| = {}, |D2| = {}",
            self.model_class, self.sizes.0, self.sizes.1
        )?;
        write!(f, "  δ(f_a, g_sum) = {:.6}", self.deviation)?;
        if let Some(b) = self.bound {
            write!(f, "   (δ* = {b:.6})")?;
        }
        writeln!(f)?;
        match self.significance_percent {
            Some(s) => writeln!(f, "  significance: {s:.2}% (bootstrap)")?,
            None => writeln!(f, "  significance: not evaluated")?,
        }
        writeln!(f, "  GCR regions: {}", self.n_regions)?;
        if !self.top_regions.is_empty() {
            writeln!(f, "  top drifting regions:")?;
            for (desc, d) in &self.top_regions {
                writeln!(f, "    Δ = {d:.5}  {desc}")?;
            }
        }
        Ok(())
    }
}

/// Runs the full lits pipeline: deviation over the GCR, δ*, optional
/// bootstrap qualification (re-mining per replicate via `miner`), and the
/// top-k drifting itemsets.
pub fn lits_report<M>(
    d1: &TransactionSet,
    d2: &TransactionSet,
    miner: M,
    opts: ReportOptions,
) -> ComparisonReport
where
    M: Fn(&TransactionSet) -> LitsModel + Sync,
{
    let m1 = miner(d1);
    let m2 = miner(d2);
    let dev = lits_deviation(&m1, d1, &m2, d2, DiffFn::Absolute, AggFn::Sum);
    let bound = crate::bound::lits_upper_bound(&m1, &m2, AggFn::Sum);

    let significance = if opts.reps > 0 {
        let q = qualify_transactions(d1, d2, dev.value, opts.reps, opts.seed, |a, b| {
            let ma = miner(a);
            let mb = miner(b);
            lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
        });
        Some(q.significance_percent)
    } else {
        None
    };

    let mut ranked: Vec<(String, f64)> = dev
        .gcr
        .iter()
        .zip(&dev.per_region)
        .map(|(s, &d)| (s.to_string(), d))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite diffs"));
    ranked.truncate(opts.top_k);

    ComparisonReport {
        model_class: "lits",
        deviation: dev.value,
        bound: Some(bound),
        significance_percent: significance,
        n_regions: dev.gcr.len(),
        top_regions: ranked,
        sizes: (d1.len(), d2.len()),
    }
}

/// Runs the full dt pipeline with a caller-supplied model builder
/// (typically a CART fit).
pub fn dt_report<M>(
    d1: &LabeledTable,
    d2: &LabeledTable,
    fit: M,
    opts: ReportOptions,
) -> ComparisonReport
where
    M: Fn(&LabeledTable) -> DtModel + Sync,
{
    let m1 = fit(d1);
    let m2 = fit(d2);
    let dev = dt_deviation(&m1, d1, &m2, d2, DiffFn::Absolute, AggFn::Sum);
    let significance = if opts.reps > 0 {
        let q = qualify_tables(d1, d2, dev.value, opts.reps, opts.seed, |a, b| {
            let ma = fit(a);
            let mb = fit(b);
            dt_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
        });
        Some(q.significance_percent)
    } else {
        None
    };

    let schema = d1.table.schema();
    let k = m1.n_classes() as usize;
    let mut ranked: Vec<(String, f64)> = dev
        .cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let total: f64 = (0..k).map(|c| dev.per_region[i * k + c]).sum();
            (cell.region.describe(schema), total)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite diffs"));
    ranked.truncate(opts.top_k);

    ComparisonReport {
        model_class: "dt",
        deviation: dev.value,
        bound: Some(crate::bound::dt_upper_bound(&m1, &m2, AggFn::Sum)),
        significance_percent: significance,
        n_regions: dev.cells.len() * k,
        top_regions: ranked,
        sizes: (d1.len(), d2.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::model::{induce_dt_measures, induce_lits_measures};
    use crate::region::{BoxBuilder, Itemset};
    use std::sync::Arc;

    fn txns(rows: &[&[u32]]) -> TransactionSet {
        let mut t = TransactionSet::new(4);
        for r in rows {
            t.push(r.to_vec());
        }
        t
    }

    /// A trivial "miner" with a fixed structure — keeps tests fast and
    /// deterministic without depending on the mining crate.
    fn fixed_miner(d: &TransactionSet) -> LitsModel {
        induce_lits_measures(
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[1]),
                Itemset::from_slice(&[0, 1]),
            ],
            0.1,
            d,
        )
    }

    #[test]
    fn lits_report_end_to_end() {
        let d1 = txns(&[&[0, 1], &[0], &[0, 1], &[1]]);
        let d2 = txns(&[&[2], &[2, 3], &[3], &[2]]);
        let r = lits_report(&d1, &d2, fixed_miner, ReportOptions::default());
        assert_eq!(r.model_class, "lits");
        assert!(r.deviation > 0.0);
        assert!(r.bound.unwrap() >= r.deviation - 1e-12);
        assert!(r.significance_percent.is_some());
        assert_eq!(r.sizes, (4, 4));
        assert!(!r.top_regions.is_empty());
        // Top regions are sorted descending.
        assert!(r.top_regions.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn report_skips_qualification_when_reps_zero() {
        let d1 = txns(&[&[0, 1], &[0]]);
        let r = lits_report(
            &d1,
            &d1,
            fixed_miner,
            ReportOptions {
                reps: 0,
                ..Default::default()
            },
        );
        assert_eq!(r.significance_percent, None);
        assert_eq!(r.deviation, 0.0);
        assert!(!r.is_significant(0.05));
    }

    #[test]
    fn dt_report_end_to_end_and_display() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
        let mut d1 = LabeledTable::new(Arc::clone(&schema), 2);
        let mut d2 = LabeledTable::new(Arc::clone(&schema), 2);
        for i in 0..200 {
            let age = (i % 100) as f64;
            d1.push_row(&[Value::Num(age)], u32::from(age < 30.0));
            d2.push_row(&[Value::Num(age)], u32::from(age < 60.0));
        }
        let fit = |d: &LabeledTable| {
            induce_dt_measures(
                vec![
                    BoxBuilder::new(&schema).lt("age", 45.0).build(),
                    BoxBuilder::new(&schema).ge("age", 45.0).build(),
                ],
                d,
            )
        };
        let r = dt_report(&d1, &d2, fit, ReportOptions::default());
        assert_eq!(r.model_class, "dt");
        assert!(r.deviation > 0.1);
        assert!(r.is_significant(0.05), "{:?}", r.significance_percent);
        let text = r.to_string();
        assert!(text.contains("FOCUS dt comparison"));
        assert!(text.contains("significance"));
        assert!(text.contains("top drifting regions"));
    }

    #[test]
    fn top_k_truncates() {
        let d1 = txns(&[&[0, 1], &[0], &[1]]);
        let d2 = txns(&[&[0], &[1], &[0, 1]]);
        let r = lits_report(
            &d1,
            &d2,
            fixed_miner,
            ReportOptions {
                reps: 0,
                top_k: 2,
                ..Default::default()
            },
        );
        assert!(r.top_regions.len() <= 2);
    }
}
