//! Dataset and attribute-space primitives (Definition 3.1 of the paper).
//!
//! FOCUS is defined over an *attribute space* `A(I) = D1 × … × Dn`: the cross
//! product of attribute domains. A *dataset* is a finite enumerated set of
//! tuples in that space. Two dataset shapes appear in the paper:
//!
//! * relational tables of mixed numeric/categorical attributes, optionally
//!   with a class label (dt-models and cluster-models);
//! * market-basket transaction sets over an item universe (lits-models).
//!
//! Both carry deterministic sampling and pooling operations because the
//! sample-size study (Section 6) and the bootstrap qualification procedure
//! (Section 3.4) are defined in terms of them.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// A single attribute value: numeric or categorical (coded).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A numeric (continuous or ordinal) value.
    Num(f64),
    /// A categorical value, encoded as a small integer code.
    Cat(u32),
}

impl Value {
    /// The numeric payload; panics if the value is categorical.
    pub fn as_num(&self) -> f64 {
        match self {
            Value::Num(x) => *x,
            Value::Cat(c) => panic!("expected numeric value, found categorical code {c}"),
        }
    }

    /// The categorical code; panics if the value is numeric.
    pub fn as_cat(&self) -> u32 {
        match self {
            Value::Cat(c) => *c,
            Value::Num(x) => panic!("expected categorical value, found numeric {x}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Cat(c) => write!(f, "#{c}"),
        }
    }
}

/// The type of an attribute domain.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrType {
    /// A numeric attribute over the reals.
    Numeric,
    /// A categorical attribute with codes `0..cardinality`.
    Categorical {
        /// Number of distinct category codes.
        cardinality: u32,
    },
}

/// A named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name, e.g. `"age"` or `"salary"`.
    pub name: String,
    /// Domain type.
    pub ty: AttrType,
}

/// The attribute space `A(I)`: an ordered list of attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a list of attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Self { attrs }
    }

    /// Convenience constructor for a numeric attribute.
    pub fn numeric(name: &str) -> Attribute {
        Attribute {
            name: name.to_string(),
            ty: AttrType::Numeric,
        }
    }

    /// Convenience constructor for a categorical attribute.
    pub fn categorical(name: &str, cardinality: u32) -> Attribute {
        Attribute {
            name: name.to_string(),
            ty: AttrType::Categorical { cardinality },
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute at position `i`.
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Resolves an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Validates a row against the schema (arity and per-slot value kinds,
    /// categorical codes within cardinality).
    pub fn check_row(&self, row: &[Value]) -> Result<(), String> {
        if row.len() != self.attrs.len() {
            return Err(format!(
                "row has {} values but schema has {} attributes",
                row.len(),
                self.attrs.len()
            ));
        }
        for (i, (v, a)) in row.iter().zip(&self.attrs).enumerate() {
            match (v, &a.ty) {
                (Value::Num(_), AttrType::Numeric) => {}
                (Value::Cat(c), AttrType::Categorical { cardinality }) => {
                    if c >= cardinality {
                        return Err(format!(
                            "attribute {} ({}): code {} out of range 0..{}",
                            i, a.name, c, cardinality
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "attribute {} ({}): value kind does not match schema",
                        i, a.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A dense row-major relational table over a [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    values: Vec<Value>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            values: Vec::new(),
            n_rows: 0,
        }
    }

    /// Creates an empty table with row capacity pre-reserved.
    pub fn with_capacity(schema: Arc<Schema>, rows: usize) -> Self {
        let width = schema.len();
        Self {
            schema,
            values: Vec::with_capacity(rows * width),
            n_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends a row; panics if it does not match the schema.
    pub fn push_row(&mut self, row: &[Value]) {
        if let Err(e) = self.schema.check_row(row) {
            panic!("push_row: {e}");
        }
        self.values.extend_from_slice(row);
        self.n_rows += 1;
    }

    /// The `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[Value] {
        let w = self.schema.len();
        &self.values[i * w..(i + 1) * w]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let w = self.schema.len();
        self.values.chunks_exact(w.max(1)).take(self.n_rows)
    }

    /// Builds a table directly from row-major values — the bulk-load path
    /// used by the binary snapshot decoder, which already holds the whole
    /// value buffer and must not pay a per-row `push_row` round trip.
    /// Every row is still validated against the schema; the error string
    /// describes the first violation.
    pub fn from_values(
        schema: Arc<Schema>,
        values: Vec<Value>,
        n_rows: usize,
    ) -> Result<Table, String> {
        let width = schema.len();
        let want = n_rows
            .checked_mul(width)
            .ok_or_else(|| "row count × width overflows".to_string())?;
        if values.len() != want {
            return Err(format!(
                "value buffer holds {} values but {n_rows} rows × {width} attributes needs {want}",
                values.len()
            ));
        }
        for (i, row) in values.chunks_exact(width.max(1)).take(n_rows).enumerate() {
            schema.check_row(row).map_err(|e| format!("row {i}: {e}"))?;
        }
        Ok(Table {
            schema,
            values,
            n_rows,
        })
    }

    /// Builds a new table containing the rows at `indices` (in order;
    /// duplicates allowed, which is what bootstrap resampling needs).
    pub fn subset(&self, indices: &[usize]) -> Table {
        let mut t = Table::with_capacity(Arc::clone(&self.schema), indices.len());
        for &i in indices {
            t.values.extend_from_slice(self.row(i));
            t.n_rows += 1;
        }
        t
    }
}

/// A [`Table`] with a class label per row: the input shape for dt-models.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledTable {
    /// The attribute part of the dataset.
    pub table: Table,
    /// One class code per row, each `< n_classes`.
    pub labels: Vec<u32>,
    /// Number of distinct classes.
    pub n_classes: u32,
}

impl LabeledTable {
    /// Creates an empty labelled table.
    pub fn new(schema: Arc<Schema>, n_classes: u32) -> Self {
        assert!(n_classes > 0, "need at least one class");
        Self {
            table: Table::new(schema),
            labels: Vec::new(),
            n_classes,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Appends a labelled row.
    pub fn push_row(&mut self, row: &[Value], label: u32) {
        assert!(
            label < self.n_classes,
            "label {label} out of range 0..{}",
            self.n_classes
        );
        self.table.push_row(row);
        self.labels.push(label);
    }

    /// Iterates over `(row, label)` pairs.
    pub fn rows(&self) -> impl Iterator<Item = (&[Value], u32)> + '_ {
        self.table.rows().zip(self.labels.iter().copied())
    }

    /// Builds a new labelled table from row indices (duplicates allowed).
    pub fn subset(&self, indices: &[usize]) -> LabeledTable {
        LabeledTable {
            table: self.table.subset(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Draws a simple random sample *without* replacement of
    /// `ceil(fraction · n)` rows — the sampling model of Section 6.
    pub fn sample_fraction(&self, fraction: f64, seed: u64) -> LabeledTable {
        let idx = sample_indices(self.len(), fraction, seed);
        self.subset(&idx)
    }

    /// Draws a sample *with* replacement of `ceil(fraction · n)` rows.
    pub fn sample_fraction_wr(&self, fraction: f64, seed: u64) -> LabeledTable {
        assert!((0.0..=1.0).contains(&fraction));
        let k = ((fraction * self.len() as f64).ceil() as usize).min(self.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = resample_indices(self.len(), k, &mut rng);
        self.subset(&idx)
    }

    /// Draws a *stratified* sample without replacement: `ceil(fraction ·
    /// n_c)` rows independently from each class `c`, preserving the class
    /// mix (useful when a rare class would otherwise vanish from small
    /// samples).
    pub fn sample_stratified(&self, fraction: f64, seed: u64) -> LabeledTable {
        assert!((0.0..=1.0).contains(&fraction));
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes as usize];
        for (i, &label) in self.labels.iter().enumerate() {
            by_class[label as usize].push(i);
        }
        let mut chosen: Vec<usize> = Vec::new();
        for (c, rows) in by_class.iter().enumerate() {
            let local = sample_indices(rows.len(), fraction, seed ^ (c as u64) << 17);
            chosen.extend(local.into_iter().map(|j| rows[j]));
        }
        chosen.sort_unstable();
        self.subset(&chosen)
    }

    /// Concatenates two labelled tables over the same schema.
    pub fn concat(&self, other: &LabeledTable) -> LabeledTable {
        assert_eq!(
            self.table.schema(),
            other.table.schema(),
            "concat requires identical schemas"
        );
        assert_eq!(self.n_classes, other.n_classes);
        let mut out = self.clone();
        for (row, label) in other.rows() {
            out.push_row(row, label);
        }
        out
    }
}

/// A set of market-basket transactions over items `0..n_items`
/// (CSR layout: one offsets array, one flat items array).
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionSet {
    n_items: u32,
    offsets: Vec<usize>,
    items: Vec<u32>,
}

impl TransactionSet {
    /// Creates an empty transaction set over an item universe of size
    /// `n_items`.
    pub fn new(n_items: u32) -> Self {
        Self {
            n_items,
            offsets: vec![0],
            items: Vec::new(),
        }
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a transaction. Items are sorted and deduplicated; codes must
    /// be `< n_items`.
    pub fn push(&mut self, mut items: Vec<u32>) {
        items.sort_unstable();
        items.dedup();
        if let Some(&max) = items.last() {
            assert!(
                max < self.n_items,
                "item {max} out of range 0..{}",
                self.n_items
            );
        }
        self.items.extend_from_slice(&items);
        self.offsets.push(self.items.len());
    }

    /// Builds a transaction set directly from its CSR parts — the
    /// bulk-load path used by the binary snapshot decoder, avoiding the
    /// per-transaction `Vec` + sort that [`TransactionSet::push`] pays.
    /// The parts must already satisfy the representation invariants
    /// (offsets start at 0, are non-decreasing and end at `items.len()`;
    /// each transaction strictly increasing with items `< n_items`);
    /// violations are reported, not repaired, so a corrupt binary artifact
    /// surfaces as an error instead of silently re-sorted data.
    pub fn from_parts(
        n_items: u32,
        offsets: Vec<usize>,
        items: Vec<u32>,
    ) -> Result<TransactionSet, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start at 0".to_string());
        }
        if *offsets.last().expect("non-empty by the check above") != items.len() {
            return Err(format!(
                "last offset {} does not cover the {} items",
                offsets.last().unwrap(),
                items.len()
            ));
        }
        for (t, w) in offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(format!("offsets decrease at transaction {t}"));
            }
            let txn = &items[w[0]..w[1]];
            if let Some(&max) = txn.last() {
                if max >= n_items {
                    return Err(format!(
                        "transaction {t}: item {max} out of range 0..{n_items}"
                    ));
                }
            }
            if txn.windows(2).any(|p| p[1] <= p[0]) {
                return Err(format!(
                    "transaction {t} is not strictly increasing (sorted + deduplicated)"
                ));
            }
        }
        Ok(TransactionSet {
            n_items,
            offsets,
            items,
        })
    }

    /// The `i`-th transaction as a sorted item slice.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.items[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Total number of stored items across all transactions (the length
    /// of the CSR item column) — an input to the counting cost model.
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Average transaction length.
    pub fn avg_len(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.items.len() as f64 / self.len() as f64
        }
    }

    /// Builds a new transaction set from transaction indices (duplicates
    /// allowed, for bootstrap resampling).
    pub fn subset(&self, indices: &[usize]) -> TransactionSet {
        let mut t = TransactionSet::new(self.n_items);
        t.items
            .reserve(indices.len() * (self.avg_len().ceil() as usize + 1));
        for &i in indices {
            t.items.extend_from_slice(self.get(i));
            t.offsets.push(t.items.len());
        }
        t
    }

    /// Draws a simple random sample without replacement of
    /// `ceil(fraction · n)` transactions (Section 6's sampling model; the
    /// paper's Figure 9 labels these curves "WOR").
    pub fn sample_fraction(&self, fraction: f64, seed: u64) -> TransactionSet {
        let idx = sample_indices(self.len(), fraction, seed);
        self.subset(&idx)
    }

    /// Draws a sample *with* replacement of `ceil(fraction · n)`
    /// transactions — the bootstrap-style counterpart of
    /// [`Self::sample_fraction`].
    pub fn sample_fraction_wr(&self, fraction: f64, seed: u64) -> TransactionSet {
        assert!((0.0..=1.0).contains(&fraction));
        let k = ((fraction * self.len() as f64).ceil() as usize).min(self.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = resample_indices(self.len(), k, &mut rng);
        self.subset(&idx)
    }

    /// Concatenates two transaction sets over the same item universe. This is
    /// how the paper constructs the `D + δ` datasets of Figure 13 (rows
    /// (5)–(7)): the original dataset extended with a new block.
    pub fn concat(&self, other: &TransactionSet) -> TransactionSet {
        assert_eq!(self.n_items, other.n_items, "item universes must match");
        let mut t = self.clone();
        for txn in other.iter() {
            t.items.extend_from_slice(txn);
            t.offsets.push(t.items.len());
        }
        t
    }

    /// A per-transaction membership bitmap for fast subset tests. The bitmap
    /// has `ceil(n_items / 64)` words; `words` must be at least that large.
    pub fn bitmap_of(&self, i: usize, words: &mut [u64]) {
        debug_assert!(
            words.len() * 64 >= self.n_items as usize,
            "bitmap_of: transaction {i} needs {} words to cover items 0..{}, \
             scratch has {}",
            (self.n_items as usize).div_ceil(64),
            self.n_items,
            words.len()
        );
        words.fill(0);
        for &it in self.get(i) {
            words[(it / 64) as usize] |= 1 << (it % 64);
        }
    }
}

/// Shared sampling helper: `ceil(fraction · n)` distinct indices, uniform
/// without replacement, deterministic in `seed`.
pub(crate) fn sample_indices(n: usize, fraction: f64, seed: u64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "sample fraction must be in [0,1], got {fraction}"
    );
    let k = ((fraction * n as f64).ceil() as usize).min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    // Partial Fisher–Yates: only the first k positions need shuffling.
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Resamples `k` indices *with* replacement from `0..n` (bootstrap draws).
pub(crate) fn resample_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    (0..k).map(|_| rng.gen_range(0..n)).collect()
}

/// Shuffles a vector deterministically (used by generators and experiments).
pub fn shuffled<T>(mut v: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    v.shuffle(&mut rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Schema::numeric("age"),
            Schema::numeric("salary"),
            Schema::categorical("elevel", 5),
        ]))
    }

    #[test]
    fn schema_lookup() {
        let s = demo_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("salary"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.attr(2).name, "elevel");
    }

    #[test]
    fn table_push_and_row_access() {
        let s = demo_schema();
        let mut t = Table::new(Arc::clone(&s));
        t.push_row(&[Value::Num(30.0), Value::Num(50_000.0), Value::Cat(2)]);
        t.push_row(&[Value::Num(61.0), Value::Num(90_000.0), Value::Cat(4)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(1)[0], Value::Num(61.0));
        assert_eq!(t.rows().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn table_rejects_bad_category() {
        let s = demo_schema();
        let mut t = Table::new(s);
        t.push_row(&[Value::Num(30.0), Value::Num(50_000.0), Value::Cat(5)]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn table_rejects_kind_mismatch() {
        let s = demo_schema();
        let mut t = Table::new(s);
        t.push_row(&[Value::Cat(1), Value::Num(50_000.0), Value::Cat(1)]);
    }

    #[test]
    fn labeled_table_subset_and_concat() {
        let s = demo_schema();
        let mut t = LabeledTable::new(Arc::clone(&s), 2);
        for i in 0..10 {
            t.push_row(
                &[Value::Num(i as f64), Value::Num(0.0), Value::Cat(0)],
                (i % 2) as u32,
            );
        }
        let sub = t.subset(&[0, 0, 9]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels, vec![0, 0, 1]);
        let cat = t.concat(&sub);
        assert_eq!(cat.len(), 13);
    }

    #[test]
    fn table_from_values_validates_and_matches_push_row() {
        let s = demo_schema();
        let mut pushed = Table::new(Arc::clone(&s));
        let rows = [
            [Value::Num(30.0), Value::Num(50_000.0), Value::Cat(2)],
            [Value::Num(61.0), Value::Num(90_000.0), Value::Cat(4)],
        ];
        let mut flat = Vec::new();
        for row in &rows {
            pushed.push_row(row);
            flat.extend_from_slice(row);
        }
        let bulk = Table::from_values(Arc::clone(&s), flat.clone(), 2).unwrap();
        assert_eq!(bulk, pushed);
        // Shape and value violations are errors, not panics.
        assert!(Table::from_values(Arc::clone(&s), flat.clone(), 3).is_err());
        let mut bad = flat.clone();
        bad[2] = Value::Cat(9); // cardinality is 5
        assert!(Table::from_values(Arc::clone(&s), bad, 2).is_err());
        let mut wrong_kind = flat;
        wrong_kind[0] = Value::Cat(0);
        assert!(Table::from_values(Arc::clone(&s), wrong_kind, 2).is_err());
        // Empty-schema tables carry their row count explicitly.
        let empty = Arc::new(Schema::new(Vec::new()));
        assert_eq!(Table::from_values(empty, Vec::new(), 7).unwrap().len(), 7);
    }

    #[test]
    fn transactions_from_parts_validates_and_matches_push() {
        let mut pushed = TransactionSet::new(10);
        pushed.push(vec![1, 3, 5]);
        pushed.push(vec![]);
        pushed.push(vec![0, 9]);
        let bulk = TransactionSet::from_parts(10, vec![0, 3, 3, 5], vec![1, 3, 5, 0, 9]).unwrap();
        assert_eq!(bulk, pushed);
        // Each representation invariant is reported, never repaired.
        assert!(TransactionSet::from_parts(10, vec![1, 3], vec![1, 3, 5]).is_err());
        assert!(TransactionSet::from_parts(10, vec![0, 2], vec![1, 3, 5]).is_err());
        assert!(TransactionSet::from_parts(10, vec![0, 2, 1], vec![1, 3]).is_err());
        assert!(
            TransactionSet::from_parts(10, vec![0, 2], vec![3, 1]).is_err(),
            "unsorted transaction"
        );
        assert!(
            TransactionSet::from_parts(10, vec![0, 2], vec![1, 1]).is_err(),
            "duplicate item"
        );
        assert!(
            TransactionSet::from_parts(10, vec![0, 1], vec![10]).is_err(),
            "item out of universe"
        );
    }

    #[test]
    fn transactions_sorted_and_deduped() {
        let mut ts = TransactionSet::new(100);
        ts.push(vec![5, 3, 5, 1]);
        assert_eq!(ts.get(0), &[1, 3, 5]);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn transactions_subset_allows_duplicates() {
        let mut ts = TransactionSet::new(10);
        ts.push(vec![1, 2]);
        ts.push(vec![3]);
        let sub = ts.subset(&[1, 1, 0]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.get(0), &[3]);
        assert_eq!(sub.get(2), &[1, 2]);
    }

    #[test]
    fn sample_fraction_sizes_and_determinism() {
        let mut ts = TransactionSet::new(10);
        for i in 0..100 {
            ts.push(vec![i % 10]);
        }
        let s1 = ts.sample_fraction(0.3, 7);
        let s2 = ts.sample_fraction(0.3, 7);
        let s3 = ts.sample_fraction(0.3, 8);
        assert_eq!(s1.len(), 30);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(ts.sample_fraction(1.0, 0).len(), 100);
        assert_eq!(ts.sample_fraction(0.0, 0).len(), 0);
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let idx = sample_indices(50, 0.5, 3);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), idx.len());
    }

    #[test]
    fn with_replacement_sampling_sizes_and_duplicates() {
        let mut ts = TransactionSet::new(10);
        for i in 0..40 {
            ts.push(vec![i % 10]);
        }
        let s = ts.sample_fraction_wr(0.5, 3);
        assert_eq!(s.len(), 20);
        // With replacement over 40 rows, 20 draws almost surely repeat at
        // least once for some seed; check determinism instead of luck.
        assert_eq!(s, ts.sample_fraction_wr(0.5, 3));
        assert_ne!(s, ts.sample_fraction_wr(0.5, 4));
    }

    #[test]
    fn stratified_sampling_preserves_class_mix() {
        let s = demo_schema();
        let mut t = LabeledTable::new(Arc::clone(&s), 2);
        // 90 rows of class 0, 10 of class 1.
        for i in 0..100 {
            t.push_row(
                &[Value::Num(i as f64), Value::Num(0.0), Value::Cat(0)],
                u32::from(i >= 90),
            );
        }
        let sample = t.sample_stratified(0.2, 7);
        let c1 = sample.labels.iter().filter(|&&l| l == 1).count();
        let c0 = sample.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(c0, 18, "ceil(0.2·90)");
        assert_eq!(c1, 2, "ceil(0.2·10): the rare class survives");
        // Plain WOR sampling could have dropped class 1 entirely; the
        // stratified sampler cannot.
        assert!(c1 > 0);
    }

    #[test]
    fn transaction_bitmap() {
        let mut ts = TransactionSet::new(130);
        ts.push(vec![0, 63, 64, 129]);
        let mut words = vec![0u64; 3];
        ts.bitmap_of(0, &mut words);
        assert_eq!(words[0], 1 | (1 << 63));
        assert_eq!(words[1], 1);
        assert_eq!(words[2], 1 << 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "bitmap_of: transaction 0 needs 3 words")]
    fn bitmap_of_rejects_undersized_scratch() {
        let mut ts = TransactionSet::new(130);
        ts.push(vec![0, 129]);
        let mut words = vec![0u64; 2];
        ts.bitmap_of(0, &mut words);
    }

    #[test]
    fn concat_preserves_order() {
        let mut a = TransactionSet::new(5);
        a.push(vec![0]);
        let mut b = TransactionSet::new(5);
        b.push(vec![1]);
        b.push(vec![2]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(2), &[2]);
        assert_eq!(c.avg_len(), 1.0);
    }
}
