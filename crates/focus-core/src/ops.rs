//! Structural and rank operators for exploratory analysis (Section 5).
//!
//! The paper equips FOCUS with a small algebra over sets of regions:
//!
//! * **structural union** `Γ1 ⊔ Γ2` — the GCR of the two structures;
//! * **structural intersection** `Γ1 ⊓ Γ2` — regions present in both
//!   (ordinary set intersection);
//! * **structural difference** — `(Γ1 ⊔ Γ2) − (Γ1 ⊓ Γ2)`;
//! * **predicate** — an explicit region from a predicate (see
//!   [`crate::region::BoxBuilder`]);
//! * **rank** — orders a set of regions by the "interestingness" of the
//!   change between the two datasets (a deviation score per region);
//! * **select** — `top`, `top-n`, `min`, `bottom-n` over a ranked list.
//!
//! The expressions of Section 5.1, e.g.
//! `SelectTop(Rank(Γ_T1 ⊔ Γ_T2, δ(f_a, g_sum)))`, compose directly from
//! these functions.

use crate::region::Itemset;

// ---------------------------------------------------------------------------
// Structural operators — itemset structures
// ---------------------------------------------------------------------------

/// Structural union of two lits structures: their GCR, i.e. the union of the
/// itemset families.
pub fn lits_union(a: &[Itemset], b: &[Itemset]) -> Vec<Itemset> {
    crate::gcr::gcr_lits(a, b)
}

/// Structural intersection: itemsets present in both structures.
pub fn lits_intersection(a: &[Itemset], b: &[Itemset]) -> Vec<Itemset> {
    let bset: std::collections::HashSet<&Itemset> = b.iter().collect();
    let mut out: Vec<Itemset> = a.iter().filter(|s| bset.contains(s)).cloned().collect();
    out.sort();
    out
}

/// Structural difference: `(a ⊔ b) − (a ⊓ b)` — the regions where the two
/// structures disagree.
pub fn lits_difference(a: &[Itemset], b: &[Itemset]) -> Vec<Itemset> {
    let inter = lits_intersection(a, b);
    let iset: std::collections::HashSet<&Itemset> = inter.iter().collect();
    lits_union(a, b)
        .into_iter()
        .filter(|s| !iset.contains(s))
        .collect()
}

// ---------------------------------------------------------------------------
// Structural operators — box-partition structures
// ---------------------------------------------------------------------------

/// Structural union of two dt structures (leaf partitions): their GCR — the
/// overlay partition.
pub fn partition_union(
    a: &[crate::region::BoxRegion],
    b: &[crate::region::BoxRegion],
) -> Vec<crate::region::BoxRegion> {
    crate::gcr::gcr_partition(a, b)
        .into_iter()
        .map(|c| c.region)
        .collect()
}

/// Structural intersection of two box structures: regions appearing in both
/// (structural equality).
pub fn partition_intersection(
    a: &[crate::region::BoxRegion],
    b: &[crate::region::BoxRegion],
) -> Vec<crate::region::BoxRegion> {
    a.iter().filter(|r| b.contains(r)).cloned().collect()
}

/// Structural difference of two box structures:
/// `(a ⊔ b) − (a ⊓ b)`.
pub fn partition_difference(
    a: &[crate::region::BoxRegion],
    b: &[crate::region::BoxRegion],
) -> Vec<crate::region::BoxRegion> {
    let inter = partition_intersection(a, b);
    partition_union(a, b)
        .into_iter()
        .filter(|r| !inter.contains(r))
        .collect()
}

// ---------------------------------------------------------------------------
// Rank and select
// ---------------------------------------------------------------------------

/// A region paired with its deviation score, produced by [`rank`].
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked<R> {
    /// The region.
    pub region: R,
    /// Its deviation (interestingness) score.
    pub deviation: f64,
}

/// The rank operator: scores every region with `score` (a focussed
/// deviation, in the paper) and orders descending by score — "a list of
/// regions in the decreasing order of interestingness".
///
/// Ties keep their input order (stable sort), so results are deterministic.
pub fn rank<R, F>(regions: Vec<R>, mut score: F) -> Vec<Ranked<R>>
where
    F: FnMut(&R) -> f64,
{
    let mut out: Vec<Ranked<R>> = regions
        .into_iter()
        .map(|r| {
            let deviation = score(&r);
            Ranked {
                region: r,
                deviation,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.deviation
            .partial_cmp(&a.deviation)
            .expect("NaN deviation in rank")
    });
    out
}

/// `SelectTop`: the single most interesting region.
pub fn select_top<R>(ranked: &[Ranked<R>]) -> Option<&Ranked<R>> {
    ranked.first()
}

/// `SelectTopN`: the `n` most interesting regions.
pub fn select_top_n<R>(ranked: &[Ranked<R>], n: usize) -> &[Ranked<R>] {
    &ranked[..n.min(ranked.len())]
}

/// `SelectMin`: the least interesting region.
pub fn select_min<R>(ranked: &[Ranked<R>]) -> Option<&Ranked<R>> {
    ranked.last()
}

/// `SelectBottomN`: the `n` least interesting regions (still in descending
/// score order, mirroring the paper's list semantics).
pub fn select_bottom_n<R>(ranked: &[Ranked<R>], n: usize) -> &[Ranked<R>] {
    let n = n.min(ranked.len());
    &ranked[ranked.len() - n..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Schema;
    use crate::region::BoxBuilder;
    use std::sync::Arc;

    fn iset(items: &[u32]) -> Itemset {
        Itemset::from_slice(items)
    }

    #[test]
    fn lits_set_algebra() {
        let a = vec![iset(&[0]), iset(&[1]), iset(&[0, 1])];
        let b = vec![iset(&[1]), iset(&[2])];
        assert_eq!(lits_union(&a, &b).len(), 4);
        assert_eq!(lits_intersection(&a, &b), vec![iset(&[1])]);
        let diff = lits_difference(&a, &b);
        assert_eq!(diff.len(), 3);
        assert!(!diff.contains(&iset(&[1])));
    }

    #[test]
    fn lits_difference_of_identical_is_empty() {
        let a = vec![iset(&[0]), iset(&[1])];
        assert!(lits_difference(&a, &a).is_empty());
    }

    #[test]
    fn partition_algebra() {
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = vec![
            BoxBuilder::new(&s).lt("x", 10.0).build(),
            BoxBuilder::new(&s).ge("x", 10.0).build(),
        ];
        let b = vec![
            BoxBuilder::new(&s).lt("x", 10.0).build(),
            BoxBuilder::new(&s).range("x", 10.0, 20.0).build(),
            BoxBuilder::new(&s).ge("x", 20.0).build(),
        ];
        // Union (overlay): [<10), [10,20), [≥20) — 3 regions.
        assert_eq!(partition_union(&a, &b).len(), 3);
        // Intersection: only [<10) is common to both structures.
        let inter = partition_intersection(&a, &b);
        assert_eq!(inter.len(), 1);
        // Difference: overlay minus the shared region.
        assert_eq!(partition_difference(&a, &b).len(), 2);
    }

    #[test]
    fn rank_orders_descending_and_stable() {
        let regions = vec!["a", "b", "c", "d"];
        let scores = [(0.1), (0.9), (0.9), (0.5)];
        let ranked = rank(regions, |r| scores[(r.as_bytes()[0] - b'a') as usize]);
        let order: Vec<&str> = ranked.iter().map(|r| r.region).collect();
        // b before c: ties keep input order.
        assert_eq!(order, vec!["b", "c", "d", "a"]);
    }

    #[test]
    fn selects() {
        let ranked = rank(vec![1, 2, 3], |&x| x as f64);
        assert_eq!(select_top(&ranked).unwrap().region, 3);
        assert_eq!(select_min(&ranked).unwrap().region, 1);
        let top2: Vec<i32> = select_top_n(&ranked, 2).iter().map(|r| r.region).collect();
        assert_eq!(top2, vec![3, 2]);
        let bot2: Vec<i32> = select_bottom_n(&ranked, 2)
            .iter()
            .map(|r| r.region)
            .collect();
        assert_eq!(bot2, vec![2, 1]);
        // Overflow-safe.
        assert_eq!(select_top_n(&ranked, 10).len(), 3);
        assert!(select_top::<i32>(&[]).is_none());
    }
}
