//! Greatest common refinement (GCR) of structural components.
//!
//! The refinement relation `≼` (Definition 3.4) orders structural
//! components: `Γ1 ≼ Γ2` when every region of `Γ2` is exactly covered by a
//! set of regions of `Γ1` (measures add up for any dataset). The GCR of two
//! structures is their greatest lower bound under `≼`; extending both models
//! to the GCR is what makes two structurally different models comparable
//! (Definition 3.6).
//!
//! * **lits** (Section 4.1): structures are sets of itemsets ordered by `⊇`;
//!   the GCR is the union of the two families.
//! * **dt** (Section 4.2, Definition 4.2): structures are leaf partitions of
//!   the attribute space; the GCR is the overlay — all non-empty pairwise
//!   intersections of leaf cells ("anding all possible pairs of predicates").
//! * **cluster**: same overlay idea but the regions need not be exhaustive,
//!   so the GCR adds the *remainders* — the parts of each cluster not
//!   covered by the other model's clusters — decomposed into disjoint boxes.

use crate::region::{BoxRegion, Itemset};

/// GCR of two lits-model structures: the union of the itemset families,
/// deduplicated, in canonical order (Proposition 4.1 — the powerset with
/// `⊇` is a meet-semilattice and the meet is the union).
pub fn gcr_lits(a: &[Itemset], b: &[Itemset]) -> Vec<Itemset> {
    let mut out: Vec<Itemset> = a.iter().chain(b.iter()).cloned().collect();
    out.sort();
    out.dedup();
    out
}

/// A cell of a dt-model GCR: the intersection of leaf `i` of the first model
/// with leaf `j` of the second, remembering its parentage so measures can be
/// attributed back to the original leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayCell {
    /// The geometric cell.
    pub region: BoxRegion,
    /// Index of the first model's leaf this cell refines.
    pub left: usize,
    /// Index of the second model's leaf this cell refines.
    pub right: usize,
}

/// GCR of two exhaustive leaf partitions: all non-empty pairwise
/// intersections (Definition 4.2). Because both inputs partition the
/// attribute space, the output partitions it too and refines both inputs.
pub fn gcr_partition(a: &[BoxRegion], b: &[BoxRegion]) -> Vec<OverlayCell> {
    let mut cells = Vec::new();
    for (i, ra) in a.iter().enumerate() {
        for (j, rb) in b.iter().enumerate() {
            if let Some(region) = ra.intersect(rb) {
                cells.push(OverlayCell {
                    region,
                    left: i,
                    right: j,
                });
            }
        }
    }
    cells
}

/// GCR of two *non-exhaustive* box families (cluster-models).
///
/// Produces three groups of disjoint regions:
/// 1. pairwise intersections `aᵢ ∩ bⱼ`;
/// 2. remainders `aᵢ \ ∪ⱼ bⱼ` (parts of each left cluster the right model
///    does not cover);
/// 3. remainders `bⱼ \ ∪ᵢ aᵢ`.
///
/// Together these refine every input region: each `aᵢ` is exactly the union
/// of its intersections with the `b`s plus its remainder (and symmetrically),
/// so measures add up for any dataset — the Definition 3.4 condition.
pub fn gcr_boxes(a: &[BoxRegion], b: &[BoxRegion]) -> Vec<BoxRegion> {
    let mut out = Vec::new();
    for ra in a {
        for rb in b {
            if let Some(r) = ra.intersect(rb) {
                out.push(r);
            }
        }
    }
    out.extend(remainders(a, b));
    out.extend(remainders(b, a));
    out
}

/// For each region of `of`, the disjoint boxes covering its part not covered
/// by any region of `minus`. `pub(crate)` so [`crate::bound`] can replicate
/// the exact piece decomposition [`gcr_boxes`] produces, region by region.
pub(crate) fn remainders(of: &[BoxRegion], minus: &[BoxRegion]) -> Vec<BoxRegion> {
    let mut out = Vec::new();
    for r in of {
        let mut pieces = vec![r.clone()];
        for m in minus {
            let mut next = Vec::new();
            for p in pieces {
                next.extend(p.subtract(m));
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        out.extend(pieces);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::region::BoxBuilder;
    use std::sync::Arc;

    #[test]
    fn gcr_lits_is_sorted_union() {
        let a = vec![Itemset::from_slice(&[0]), Itemset::from_slice(&[0, 1])];
        let b = vec![Itemset::from_slice(&[1]), Itemset::from_slice(&[0])];
        let g = gcr_lits(&a, &b);
        assert_eq!(
            g,
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[0, 1]),
                Itemset::from_slice(&[1]),
            ]
        );
    }

    #[test]
    fn gcr_lits_paper_figure_6() {
        // L1 = {a, b, ab}, L2 = {b, c, bc} over items a=0, b=1, c=2.
        // GCR = {a, b, c, ab, bc} — five itemsets.
        let l1 = vec![
            Itemset::from_slice(&[0]),
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[0, 1]),
        ];
        let l2 = vec![
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[2]),
            Itemset::from_slice(&[1, 2]),
        ];
        assert_eq!(gcr_lits(&l1, &l2).len(), 5);
    }

    fn schema2d() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Schema::numeric("age"),
            Schema::numeric("salary"),
        ]))
    }

    #[test]
    fn gcr_partition_overlay_counts() {
        // T1 splits age at 30 (2 leaves); T2 splits salary at 80K (2 leaves).
        // The overlay is a 2×2 grid: 4 cells.
        let s = schema2d();
        let t1 = vec![
            BoxBuilder::new(&s).lt("age", 30.0).build(),
            BoxBuilder::new(&s).ge("age", 30.0).build(),
        ];
        let t2 = vec![
            BoxBuilder::new(&s).lt("salary", 80_000.0).build(),
            BoxBuilder::new(&s).ge("salary", 80_000.0).build(),
        ];
        let cells = gcr_partition(&t1, &t2);
        assert_eq!(cells.len(), 4);
        // Parentage covers every (left, right) pair exactly once here.
        let mut pairs: Vec<(usize, usize)> = cells.iter().map(|c| (c.left, c.right)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn gcr_partition_refines_both_inputs() {
        // Each input leaf must equal the union of its overlay cells:
        // verified pointwise on a grid of probe points.
        let s = schema2d();
        let t1 = vec![
            BoxBuilder::new(&s).lt("age", 30.0).build(),
            BoxBuilder::new(&s).range("age", 30.0, 50.0).build(),
            BoxBuilder::new(&s).ge("age", 50.0).build(),
        ];
        let t2 = vec![
            BoxBuilder::new(&s).lt("salary", 80_000.0).build(),
            BoxBuilder::new(&s).ge("salary", 80_000.0).build(),
        ];
        let cells = gcr_partition(&t1, &t2);
        for age in [10.0, 30.0, 40.0, 50.0, 90.0] {
            for salary in [10_000.0, 80_000.0, 200_000.0] {
                let row = [Value::Num(age), Value::Num(salary)];
                // Exactly one cell contains each point (it is a partition)…
                let hits: Vec<&OverlayCell> =
                    cells.iter().filter(|c| c.region.contains(&row)).collect();
                assert_eq!(hits.len(), 1, "point ({age},{salary})");
                // …and its parentage agrees with the original partitions.
                let c = hits[0];
                assert!(t1[c.left].contains(&row));
                assert!(t2[c.right].contains(&row));
            }
        }
    }

    #[test]
    fn gcr_partition_skips_empty_intersections() {
        let s = schema2d();
        let t1 = vec![
            BoxBuilder::new(&s).lt("age", 30.0).build(),
            BoxBuilder::new(&s).ge("age", 30.0).build(),
        ];
        // T2 also splits on age — half the pairwise intersections are empty.
        let t2 = vec![
            BoxBuilder::new(&s).lt("age", 30.0).build(),
            BoxBuilder::new(&s).ge("age", 30.0).build(),
        ];
        let cells = gcr_partition(&t1, &t2);
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn gcr_boxes_cluster_overlap() {
        // Two overlapping clusters on a line: a = [0,10), b = [5,15).
        // GCR: intersection [5,10), remainder of a [0,5), remainder of b
        // [10,15) — three disjoint pieces covering a ∪ b.
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = vec![BoxBuilder::new(&s).range("x", 0.0, 10.0).build()];
        let b = vec![BoxBuilder::new(&s).range("x", 5.0, 15.0).build()];
        let g = gcr_boxes(&a, &b);
        assert_eq!(g.len(), 3);
        for (i, p) in g.iter().enumerate() {
            for q in &g[i + 1..] {
                assert!(p.intersect(q).is_none(), "pieces must be disjoint");
            }
        }
        // Pointwise coverage of a: [0,10) must be exactly covered.
        for x in [0.0, 2.5, 5.0, 7.5, 9.9] {
            let row = [Value::Num(x)];
            let hits = g.iter().filter(|r| r.contains(&row)).count();
            assert_eq!(hits, 1, "x = {x}");
        }
    }

    #[test]
    fn gcr_boxes_disjoint_clusters_pass_through() {
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = vec![BoxBuilder::new(&s).range("x", 0.0, 1.0).build()];
        let b = vec![BoxBuilder::new(&s).range("x", 5.0, 6.0).build()];
        let g = gcr_boxes(&a, &b);
        // No intersections; each cluster survives as its own remainder.
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn gcr_boxes_identical_families_no_remainder() {
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = vec![BoxBuilder::new(&s).range("x", 0.0, 1.0).build()];
        let g = gcr_boxes(&a, &a);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0], a[0]);
    }

    #[test]
    fn remainders_subtract_union_not_pieces() {
        // One left cluster covered by the union of two right clusters: the
        // remainder must be empty even though neither right cluster alone
        // covers it.
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = vec![BoxBuilder::new(&s).range("x", 0.0, 10.0).build()];
        let b = vec![
            BoxBuilder::new(&s).range("x", 0.0, 6.0).build(),
            BoxBuilder::new(&s).range("x", 6.0, 10.0).build(),
        ];
        assert!(remainders(&a, &b).is_empty());
    }
}
