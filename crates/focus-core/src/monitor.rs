//! Change monitoring: misclassification error and the chi-squared statistic
//! as FOCUS special cases (Section 5.2).
//!
//! The monitoring question — "by how much does the old model misrepresent
//! the new data?" — keeps the *old* structural component and measures the
//! new dataset against it. Two classical answers fall out of FOCUS:
//!
//! * **Misclassification error** (Theorem 5.2):
//!   `ME_T(D2) = ½ · δ(f_a, g_sum)( ⟨Γ_T, σ(Γ_T, D2)⟩, ⟨Γ_T, σ(Γ_T, D2^T)⟩ )`
//!   where `D2^T` is `D2` with every class label replaced by the tree's
//!   prediction.
//! * **Chi-squared goodness of fit** (Proposition 5.1): the `X²` statistic
//!   with expected counts from `D1`'s measures and observed counts from
//!   `D2`, i.e. `δ(f_χ², g_sum)` over the old structure.

use crate::data::LabeledTable;
use crate::deviation::deviation_fixed;
use crate::diff::{AggFn, DiffFn};
use crate::model::{count_partition, count_partition_par, DtModel};
use focus_exec::{map_chunks, Parallelism};

/// Minimum rows per worker chunk for the prediction scans.
const SCAN_GRAIN: usize = focus_exec::DEFAULT_GRAIN;

/// The misclassification error of a dt-model on a dataset: the fraction of
/// rows whose true label differs from the model's majority-class
/// prediction. Runs at the process-wide default parallelism.
pub fn misclassification_error(model: &DtModel, data: &LabeledTable) -> f64 {
    misclassification_error_par(model, data, Parallelism::Global)
}

/// [`misclassification_error`] with the prediction scan fanned out over
/// `par` worker threads. Per-chunk error counts merge by `u64` addition,
/// so the rate is bit-identical to a sequential scan for any thread count.
pub fn misclassification_error_par(model: &DtModel, data: &LabeledTable, par: Parallelism) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let wrong: u64 = map_chunks(par, data.len(), SCAN_GRAIN, |range| {
        range
            .filter(|&r| model.predict(data.table.row(r)) != data.labels[r])
            .count() as u64
    })
    .into_iter()
    .sum();
    wrong as f64 / data.len() as f64
}

/// The *predicted dataset* `D2^T`: `D2` with every class label replaced by
/// the model's prediction (Section 5.2.1).
pub fn predicted_dataset(model: &DtModel, data: &LabeledTable) -> LabeledTable {
    let mut out = LabeledTable::new(std::sync::Arc::clone(data.table.schema()), data.n_classes);
    for (row, _) in data.rows() {
        out.push_row(row, model.predict(row));
    }
    out
}

/// Misclassification error computed *through the deviation measure*, per
/// Theorem 5.2. Numerically identical to [`misclassification_error`]; kept
/// as an executable witness of the theorem (and unit-tested as such).
pub fn me_via_deviation(model: &DtModel, data: &LabeledTable) -> f64 {
    let predicted = predicted_dataset(model, data);
    let k = model.n_classes();
    let counts_true = count_partition(data, model.leaves(), k);
    let counts_pred = count_partition(&predicted, model.leaves(), k);
    0.5 * deviation_fixed(
        &counts_true,
        &counts_pred,
        data.len() as u64,
        predicted.len() as u64,
        DiffFn::Absolute,
        AggFn::Sum,
    )
}

/// The chi-squared goodness-of-fit statistic of Proposition 5.1: cells are
/// the `(leaf, class)` regions of the tree built on `D1`; expected
/// selectivities come from the model's (D1-derived) measures; observed
/// counts from scanning `D2`. Cells with zero expected count contribute the
/// constant `c` (0.5 is the customary choice).
pub fn chi_squared_statistic(model: &DtModel, d2: &LabeledTable, c: f64) -> f64 {
    chi_squared_statistic_par(model, d2, c, Parallelism::Global)
}

/// [`chi_squared_statistic`] with the measure scan and the per-cell
/// aggregation fanned out over `par` worker threads. The per-cell `f_χ²`
/// values come back in cell order and are summed sequentially, so the
/// statistic is bit-identical to a sequential computation for any thread
/// count.
pub fn chi_squared_statistic_par(
    model: &DtModel,
    d2: &LabeledTable,
    c: f64,
    par: Parallelism,
) -> f64 {
    let k = model.n_classes();
    let observed = count_partition_par(d2, model.leaves(), k, par);
    let n1 = model.n_rows() as f64;
    let n2 = d2.len() as f64;
    let f = DiffFn::ChiSquared { c };
    let per_cell = crate::deviation::eval_regions_par(par, observed.len(), |i| {
        // Expected measure = model measure (selectivity w.r.t. D1) × n1.
        f.eval(model.measures()[i] * n1, observed[i] as f64, n1, n2)
    });
    per_cell.into_iter().sum()
}

/// Result of a chi-squared goodness-of-fit test against a dt-model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquaredFit {
    /// The statistic `X²`.
    pub statistic: f64,
    /// Degrees of freedom used for the asymptotic p-value
    /// (`cells − 1`, the classical choice for a fully specified model).
    pub dof: f64,
    /// Asymptotic p-value `P(χ²_dof > statistic)`. **Caveat** (Section
    /// 5.2.2): when many cells have expected counts below 5 this asymptotic
    /// value is unreliable — use the bootstrap in [`crate::qualify`] instead.
    pub p_value: f64,
}

/// Runs the chi-squared goodness-of-fit test with the asymptotic reference
/// distribution. See [`ChiSquaredFit::p_value`] for the applicability
/// caveat; the bootstrap path is in [`crate::qualify`].
pub fn chi_squared_test(model: &DtModel, d2: &LabeledTable, c: f64) -> ChiSquaredFit {
    let statistic = chi_squared_statistic(model, d2, c);
    let cells = model.leaves().len() * model.n_classes() as usize;
    let dof = (cells.max(2) - 1) as f64;
    let p_value = focus_stats::ChiSquared::new(dof).sf(statistic);
    ChiSquaredFit {
        statistic,
        dof,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use crate::model::induce_dt_measures;
    use crate::region::BoxBuilder;
    use std::sync::Arc;

    fn fixture() -> (Arc<Schema>, LabeledTable, LabeledTable, DtModel) {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("age")]));
        let mut d1 = LabeledTable::new(Arc::clone(&schema), 2);
        for i in 0..100 {
            let age = i as f64;
            d1.push_row(&[Value::Num(age)], u32::from(age < 30.0));
        }
        // D2's boundary moved to 50: rows aged 30..50 are now class 1, which
        // the D1 tree will misclassify.
        let mut d2 = LabeledTable::new(Arc::clone(&schema), 2);
        for i in 0..100 {
            let age = i as f64;
            d2.push_row(&[Value::Num(age)], u32::from(age < 50.0));
        }
        let t = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("age", 30.0).build(),
                BoxBuilder::new(&schema).ge("age", 30.0).build(),
            ],
            &d1,
        );
        (schema, d1, d2, t)
    }

    #[test]
    fn me_counts_misrouted_band() {
        let (_s, d1, d2, t) = fixture();
        assert_eq!(misclassification_error(&t, &d1), 0.0);
        // Exactly the 20 rows aged 30..50 are wrong in D2.
        assert!((misclassification_error(&t, &d2) - 0.20).abs() < 1e-12);
    }

    #[test]
    fn theorem_5_2_me_equals_half_deviation() {
        let (_s, d1, d2, t) = fixture();
        for data in [&d1, &d2] {
            let direct = misclassification_error(&t, data);
            let via = me_via_deviation(&t, data);
            assert!(
                (direct - via).abs() < 1e-12,
                "Theorem 5.2 violated: {direct} vs {via}"
            );
        }
    }

    #[test]
    fn predicted_dataset_labels_match_predictions() {
        let (_s, _d1, d2, t) = fixture();
        let pred = predicted_dataset(&t, &d2);
        assert_eq!(pred.len(), d2.len());
        for (row, label) in pred.rows() {
            assert_eq!(label, t.predict(row));
        }
        // ME of the model on its own predictions is zero.
        assert_eq!(misclassification_error(&t, &pred), 0.0);
    }

    #[test]
    fn chi_squared_zero_shift_small_statistic() {
        let (_s, d1, _d2, t) = fixture();
        // D2 = D1: observed selectivities equal expectations; the only
        // contributions are the c-cells for the two empty (leaf, class)
        // regions.
        let x2 = chi_squared_statistic(&t, &d1, 0.5);
        assert!((x2 - 1.0).abs() < 1e-9, "got {x2}");
    }

    #[test]
    fn chi_squared_grows_with_shift() {
        let (_s, d1, d2, t) = fixture();
        let same = chi_squared_statistic(&t, &d1, 0.5);
        let shifted = chi_squared_statistic(&t, &d2, 0.5);
        // Manual: the only populated drifting cell is (leaf ≥30, class 0),
        // whose expected selectivity is 0.7 but observed 0.5:
        // 100·(0.2)²/0.7 ≈ 5.714, plus the two 0.5 c-cells.
        assert!(
            (shifted - (0.5 + 0.5 + 100.0 * 0.04 / 0.7)).abs() < 1e-9,
            "got {shifted}"
        );
        assert!(shifted > same + 5.0);
    }

    #[test]
    fn chi_squared_test_p_values() {
        let (_s, d1, d2, t) = fixture();
        let fit_same = chi_squared_test(&t, &d1, 0.5);
        let fit_shift = chi_squared_test(&t, &d2, 0.5);
        assert!(fit_same.p_value > 0.3, "p = {}", fit_same.p_value);
        assert!(
            fit_shift.p_value < fit_same.p_value / 5.0,
            "p = {} vs {}",
            fit_shift.p_value,
            fit_same.p_value
        );
        assert_eq!(fit_same.dof, 3.0);
    }

    #[test]
    fn me_on_empty_dataset_is_zero() {
        let (s, _d1, _d2, t) = fixture();
        let empty = LabeledTable::new(s, 2);
        assert_eq!(misclassification_error(&t, &empty), 0.0);
    }
}
