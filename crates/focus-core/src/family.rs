//! The [`ModelFamily`] trait: what Section 3 of the paper treats uniformly
//! across lits-, dt- and cluster-models.
//!
//! FOCUS defines the deviation measure *once* — extend both models to the
//! greatest common refinement of their structural components, apply `f`
//! per region and `g` over all regions (Definitions 3.5/3.6). Only four
//! ingredients vary by model class:
//!
//! 1. **GCR construction** — union of itemset families, partition overlay,
//!    or box overlay with remainders ([`crate::gcr`]);
//! 2. **measure extension** — one scan of a dataset producing the measure
//!    of every GCR region w.r.t. that dataset;
//! 3. **focussing** — how a region list is intersected with ρ
//!    (Definition 5.2);
//! 4. **the model-only upper bound** — δ* of Definition 4.1 for lits,
//!    with the dt and cluster analogues derived in [`crate::bound`]; the
//!    lits and dt bounds are additionally pseudo-metrics
//!    ([`ModelFamily::BOUND_IS_METRIC`]), which unlocks δ*-space embedding
//!    and triangle-inequality pruning downstream.
//!
//! The trait captures exactly those four, so the generic engine in
//! [`crate::deviation`] (`deviate`, `deviate_par`, `deviate_focussed`,
//! `deviate_over`) and the batch matrix engine in `focus-registry` are
//! written once and instantiated per family. All implementations preserve
//! the workspace determinism contract: measures and per-region values are
//! bit-identical for every worker-thread count.

use crate::data::{LabeledTable, Table, TransactionSet};
use crate::diff::{AggFn, DiffFn};
use crate::gcr::{gcr_boxes, gcr_lits, gcr_partition, OverlayCell};
use crate::model::{count_boxes_par, ClusterModel, DtModel, LitsModel};
use crate::region::{BoxRegion, Itemset};
use crate::source::CountSource;
use focus_exec::{map_chunks, merge_counts, Parallelism};
use std::collections::HashMap;

/// Which side of a deviation pair a dataset belongs to. Measure extension
/// needs this because some families treat the two sides asymmetrically:
/// lits reuses the supports recorded in *that side's* model, and dt routes
/// rows through `(m1 leaf, m2 leaf)` pairs in pair order regardless of
/// which dataset is being scanned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The dataset that induced the pair's first model.
    Left,
    /// The dataset that induced the pair's second model.
    Right,
}

/// A model class that plugs into the FOCUS framework: the 2-component and
/// meet-semilattice properties of Section 3, plus the optional scan-free
/// upper bound of Section 4.1.1.
pub trait ModelFamily {
    /// The model type `⟨Γ, Σ⟩` (`Sync` so batch engines can share models
    /// across worker threads).
    type Model: Sync;
    /// The dataset type the family's models are induced from (`Sync` for
    /// the same reason).
    type Dataset: Sync;
    /// The GCR of two structural components, including any routing state
    /// the measure scans need (e.g. the dt overlay's leaf-pair index).
    /// `Sync` because the per-region difference loop fans out over it.
    type Gcr: Sync;
    /// The focussing-region type ρ of Definition 5.2 (a sorted item
    /// universe for lits, a box for dt/cluster).
    type Focus: ?Sized;
    /// The per-dataset access handle the measure scans read through
    /// (`Sync` so one handle is shared across a batch run's worker
    /// threads). Lits uses a [`CountSource`] — a counting handle that
    /// caches its vertical index and picks a backend per workload via the
    /// deterministic cost model — so repeated scans of one snapshot build
    /// the index at most once; dt and cluster scan their tables directly.
    type Source<'a>: Sync
    where
        Self: 'a;

    /// Human-readable family name (`lits`, `dt`, `cluster`).
    const NAME: &'static str;

    /// True when the family defines a model-only upper bound
    /// ([`ModelFamily::upper_bound`] returns `Some` for every pair).
    const HAS_BOUND: bool = false;

    /// True when the family's δ* is a *pseudo-metric* on models —
    /// symmetric, `δ*(M, M) = 0`, triangle inequality (Theorem 4.2 (2)) —
    /// so a collection's bound grid is a valid distance matrix for MDS
    /// embedding and supports triangle-inequality pruning. `false` for
    /// families without a bound, and for cluster-models, whose bound
    /// violates `δ*(M, M) = 0` when clusters overlap.
    const BOUND_IS_METRIC: bool = false;

    /// The GCR of the two structural components (Definition 3.4).
    fn gcr(m1: &Self::Model, m2: &Self::Model) -> Self::Gcr;

    /// Intersects every GCR region with the focussing region ρ; regions
    /// that miss ρ drop out (Definition 5.2).
    fn restrict(gcr: Self::Gcr, focus: &Self::Focus) -> Self::Gcr;

    /// Number of evaluation regions: the units `f` is applied to. For dt
    /// this is `cells × classes`, not the cell count alone.
    fn n_regions(gcr: &Self::Gcr) -> usize;

    /// Wraps a dataset in the family's access handle. Constructing a
    /// source is cheap (no index build, no copy); the expensive structures
    /// are built lazily inside the handle, at most once per handle.
    fn source(data: &Self::Dataset) -> Self::Source<'_>;

    /// Number of rows/transactions behind an access handle.
    fn source_len(source: &Self::Source<'_>) -> u64;

    /// The canonical measure of every evaluation region w.r.t. the
    /// dataset behind `source` (one scan, fanned out over `par`,
    /// bit-identical for any thread count). `m1`/`m2` are the pair's
    /// models in pair order; `side` says which of the two datasets is
    /// being scanned. Lits returns support *fractions* (reusing the
    /// side's model where possible); dt and cluster return absolute
    /// counts as `f64`.
    fn measures(
        gcr: &Self::Gcr,
        m1: &Self::Model,
        m2: &Self::Model,
        source: &Self::Source<'_>,
        side: Side,
        par: Parallelism,
    ) -> Vec<f64>;

    /// Converts one canonical measure to the *absolute* measure `v` that
    /// [`DiffFn::eval`] expects (`fraction × n` for lits, identity for the
    /// count-based families).
    fn abs_measure(raw: f64, n: u64) -> f64;

    /// Whether evaluation region `i` participates in the aggregate `g`.
    /// Non-participating regions (a class-focussed dt cell's other
    /// classes) report `0` in `per_region` and are excluded from the fold.
    fn participates(gcr: &Self::Gcr, i: usize) -> bool {
        let _ = (gcr, i);
        true
    }

    /// Number of rows/transactions in a dataset.
    fn data_len(data: &Self::Dataset) -> u64;

    /// The model-only upper bound on `δ(f_a, g)` (δ* of Definition 4.1),
    /// when the family defines one. `None` means no bound exists and any
    /// screening built on it must fall back to exact scans.
    fn upper_bound(m1: &Self::Model, m2: &Self::Model, g: AggFn) -> Option<f64> {
        let _ = (m1, m2, g);
        None
    }

    /// True when the bound *dominates* `δ(diff, g)` for this specific
    /// pair, i.e. pruning on `upper_bound` is sound (Theorem 4.2 (1)).
    /// Families without a bound, non-`f_a` difference functions, and
    /// mixed-minsup lits pairs all answer `false`.
    fn bound_dominates(diff: DiffFn, m1: &Self::Model, m2: &Self::Model) -> bool {
        let _ = (diff, m1, m2);
        false
    }
}

// ---------------------------------------------------------------------------
// lits
// ---------------------------------------------------------------------------

/// Frequent-itemset models over transaction data (Section 4.1).
#[derive(Debug, Clone, Copy)]
pub struct LitsFamily;

impl ModelFamily for LitsFamily {
    type Model = LitsModel;
    type Dataset = TransactionSet;
    type Gcr = Vec<Itemset>;
    type Focus = [u32];
    type Source<'a>
        = CountSource<'a>
    where
        Self: 'a;

    const NAME: &'static str = "lits";
    const HAS_BOUND: bool = true;
    const BOUND_IS_METRIC: bool = true;

    fn gcr(m1: &LitsModel, m2: &LitsModel) -> Vec<Itemset> {
        gcr_lits(m1.itemsets(), m2.itemsets())
    }

    fn source(data: &TransactionSet) -> CountSource<'_> {
        CountSource::borrowed(data)
    }

    fn source_len(source: &CountSource<'_>) -> u64 {
        source.len() as u64
    }

    fn restrict(gcr: Vec<Itemset>, universe: &[u32]) -> Vec<Itemset> {
        debug_assert!(universe.windows(2).all(|w| w[0] < w[1]), "sorted universe");
        gcr.into_iter()
            .filter(|s| s.within_universe(universe))
            .collect()
    }

    fn n_regions(gcr: &Vec<Itemset>) -> usize {
        gcr.len()
    }

    fn measures(
        gcr: &Vec<Itemset>,
        m1: &LitsModel,
        m2: &LitsModel,
        source: &CountSource<'_>,
        side: Side,
        par: Parallelism,
    ) -> Vec<f64> {
        let own = match side {
            Side::Left => m1,
            Side::Right => m2,
        };
        extend_supports(gcr, own, source, par)
    }

    fn abs_measure(raw: f64, n: u64) -> f64 {
        raw * n as f64
    }

    fn data_len(data: &TransactionSet) -> u64 {
        data.len() as u64
    }

    fn upper_bound(m1: &LitsModel, m2: &LitsModel, g: AggFn) -> Option<f64> {
        Some(crate::bound::lits_upper_bound(m1, m2, g))
    }

    fn bound_dominates(diff: DiffFn, m1: &LitsModel, m2: &LitsModel) -> bool {
        // Two conditions, both from Theorem 4.2 (1):
        // * the difference function is the *absolute* f_a — a scaled or χ²
        //   deviation can exceed the f_a bound arbitrarily;
        // * the two models share a minsup — the domination argument
        //   replaces an itemset's unknown support with 0 because
        //   "unknown < ms ≤ known"; with minsups 0.6 vs 0.01 an itemset
        //   known at 0.05 in one model may have true support 0.55 in the
        //   other dataset, so the truth dwarfs the bound's contribution.
        matches!(diff, DiffFn::Absolute) && m1.minsup() == m2.minsup()
    }
}

/// The measure-extension step: supports of `regions` w.r.t. the dataset
/// behind `source`, reusing the supports recorded in `model` where
/// available so only the itemsets missing from the model's structure
/// trigger counting work.
pub(crate) fn extend_supports(
    regions: &[Itemset],
    model: &LitsModel,
    source: &CountSource<'_>,
    par: Parallelism,
) -> Vec<f64> {
    let mut supports = vec![0.0f64; regions.len()];
    let mut missing: Vec<usize> = Vec::new();
    for (i, s) in regions.iter().enumerate() {
        match model.support_of(s) {
            Some(sup) => supports[i] = sup,
            None => missing.push(i),
        }
    }
    if !missing.is_empty() {
        let to_count: Vec<Itemset> = missing.iter().map(|&i| regions[i].clone()).collect();
        // Cost-model dispatched: large workloads count through the
        // source's cached vertical tid-bitset index (diffset-adaptive on
        // dense data) instead of re-walking every transaction per
        // itemset, and the vertical path batches the missing itemsets by
        // shared (k−1)-prefix runs — one cached intersection mask per
        // run, one masked popcount per sibling. Counts are identical
        // either way, so measures stay bit-identical to the horizontal
        // scan.
        let counts = source.counts(&to_count, par);
        let n = source.len().max(1) as f64;
        for (slot, &c) in missing.iter().zip(&counts) {
            supports[*slot] = c as f64 / n;
        }
    }
    supports
}

// ---------------------------------------------------------------------------
// dt
// ---------------------------------------------------------------------------

/// Decision-tree models over labelled tables (Section 4.2).
#[derive(Debug, Clone, Copy)]
pub struct DtFamily;

/// The GCR of two dt-models: the overlay cells plus the class count, so
/// evaluation regions are `(cell, class)` pairs in row-major order.
#[derive(Debug, Clone)]
pub struct DtGcr {
    /// The overlay cells (class-free; classes are the measure rows).
    pub cells: Vec<OverlayCell>,
    /// Number of classes `k` (shared by both models).
    pub n_classes: u32,
}

impl ModelFamily for DtFamily {
    type Model = DtModel;
    type Dataset = LabeledTable;
    type Gcr = DtGcr;
    type Focus = BoxRegion;
    type Source<'a>
        = &'a LabeledTable
    where
        Self: 'a;

    const NAME: &'static str = "dt";
    const HAS_BOUND: bool = true;
    const BOUND_IS_METRIC: bool = true;

    fn gcr(m1: &DtModel, m2: &DtModel) -> DtGcr {
        assert_eq!(m1.n_classes(), m2.n_classes(), "class sets must agree");
        DtGcr {
            cells: gcr_partition(m1.leaves(), m2.leaves()),
            n_classes: m1.n_classes(),
        }
    }

    fn source(data: &LabeledTable) -> &LabeledTable {
        data
    }

    fn source_len(source: &&LabeledTable) -> u64 {
        source.len() as u64
    }

    fn restrict(gcr: DtGcr, focus: &BoxRegion) -> DtGcr {
        DtGcr {
            cells: gcr
                .cells
                .into_iter()
                .filter_map(|c| {
                    c.region.intersect(focus).map(|region| OverlayCell {
                        region,
                        left: c.left,
                        right: c.right,
                    })
                })
                .collect(),
            n_classes: gcr.n_classes,
        }
    }

    fn n_regions(gcr: &DtGcr) -> usize {
        gcr.cells.len() * gcr.n_classes as usize
    }

    fn measures(
        gcr: &DtGcr,
        m1: &DtModel,
        m2: &DtModel,
        data: &&LabeledTable,
        _side: Side,
        par: Parallelism,
    ) -> Vec<f64> {
        count_cells(gcr, m1, m2, data, par)
            .into_iter()
            .map(|c| c as f64)
            .collect()
    }

    fn abs_measure(raw: f64, _n: u64) -> f64 {
        raw
    }

    fn participates(gcr: &DtGcr, i: usize) -> bool {
        // A cell whose region pins a class (a class-focussed ρ) contributes
        // only that class's region; for plain GCR cells `class` is `None`.
        let k = gcr.n_classes as usize;
        match gcr.cells[i / k].region.class {
            Some(only) => only as usize == i % k,
            None => true,
        }
    }

    fn data_len(data: &LabeledTable) -> u64 {
        data.len() as u64
    }

    fn upper_bound(m1: &DtModel, m2: &DtModel, g: AggFn) -> Option<f64> {
        Some(crate::bound::dt_upper_bound(m1, m2, g))
    }

    fn bound_dominates(diff: DiffFn, m1: &DtModel, m2: &DtModel) -> bool {
        // The leaf-mass dominance argument (see [`crate::bound::
        // dt_upper_bound`]) needs the absolute f_a and a shared class set —
        // with unequal class counts the exact engine cannot even build the
        // GCR, so the pair must be scanned (and fail loudly there) rather
        // than silently pruned.
        matches!(diff, DiffFn::Absolute) && m1.n_classes() == m2.n_classes()
    }
}

/// Routes each row of `data` through both original partitions to its GCR
/// cell and tallies per-class counts. `O(rows · (L1 + L2))` instead of
/// `O(rows · |GCR|)`. Row chunks fan out over `par` worker threads; the
/// per-chunk tallies merge by `u64` addition, bit-identical to a sequential
/// scan.
fn count_cells(
    gcr: &DtGcr,
    m1: &DtModel,
    m2: &DtModel,
    data: &LabeledTable,
    par: Parallelism,
) -> Vec<u64> {
    let cells = &gcr.cells;
    let k = gcr.n_classes as usize;
    // The per-(cell, class) tallies index `counts[idx * k + label]`: a
    // label at or beyond `k` (a hand-built `DtGcr` whose class count
    // disagrees with the data) would silently land in a *neighbouring
    // cell's* slot rather than out of bounds, so guard it up front.
    assert!(
        data.n_classes as usize <= k,
        "dataset has {} classes but the GCR was built for {}",
        data.n_classes,
        k
    );
    let mut by_pair: HashMap<(usize, usize), usize> = HashMap::with_capacity(cells.len());
    for (idx, c) in cells.iter().enumerate() {
        by_pair.insert((c.left, c.right), idx);
    }
    let by_pair = &by_pair;
    let parts = map_chunks(par, data.len(), crate::model::SCAN_GRAIN, |range| {
        let mut counts = vec![0u64; cells.len() * k];
        for r in range {
            let row = data.table.row(r);
            let label = data.labels[r];
            let (Some(i), Some(j)) = (m1.locate(row), m2.locate(row)) else {
                continue;
            };
            if let Some(&idx) = by_pair.get(&(i, j)) {
                // Focussed cells may be smaller than leaf ∩ leaf (they were
                // intersected with ρ), so re-check geometric membership; for
                // plain GCR cells this check is trivially true.
                if cells[idx].region.contains_labeled(row, label) {
                    counts[idx * k + label as usize] += 1;
                }
            }
        }
        counts
    });
    if parts.is_empty() {
        return vec![0u64; cells.len() * k];
    }
    merge_counts(parts)
}

// ---------------------------------------------------------------------------
// cluster
// ---------------------------------------------------------------------------

/// Cluster models (non-exhaustive box families) over plain tables.
#[derive(Debug, Clone, Copy)]
pub struct ClusterFamily;

impl ModelFamily for ClusterFamily {
    type Model = ClusterModel;
    type Dataset = Table;
    type Gcr = Vec<BoxRegion>;
    type Focus = BoxRegion;
    type Source<'a>
        = &'a Table
    where
        Self: 'a;

    const NAME: &'static str = "cluster";
    const HAS_BOUND: bool = true;
    // Explicitly NOT a metric: δ*(C, C) > 0 for overlapping clusters, so
    // the bound grid must never be fed to MDS or triangle pruning.
    const BOUND_IS_METRIC: bool = false;

    fn gcr(m1: &ClusterModel, m2: &ClusterModel) -> Vec<BoxRegion> {
        gcr_boxes(m1.clusters(), m2.clusters())
    }

    fn source(data: &Table) -> &Table {
        data
    }

    fn source_len(source: &&Table) -> u64 {
        source.len() as u64
    }

    fn restrict(gcr: Vec<BoxRegion>, focus: &BoxRegion) -> Vec<BoxRegion> {
        gcr.into_iter().filter_map(|r| r.intersect(focus)).collect()
    }

    fn n_regions(gcr: &Vec<BoxRegion>) -> usize {
        gcr.len()
    }

    fn measures(
        gcr: &Vec<BoxRegion>,
        _m1: &ClusterModel,
        _m2: &ClusterModel,
        data: &&Table,
        _side: Side,
        par: Parallelism,
    ) -> Vec<f64> {
        count_boxes_par(data, gcr, par)
            .into_iter()
            .map(|c| c as f64)
            .collect()
    }

    fn abs_measure(raw: f64, _n: u64) -> f64 {
        raw
    }

    fn data_len(data: &Table) -> u64 {
        data.len() as u64
    }

    fn upper_bound(m1: &ClusterModel, m2: &ClusterModel, g: AggFn) -> Option<f64> {
        Some(crate::bound::cluster_upper_bound(m1, m2, g))
    }

    fn bound_dominates(diff: DiffFn, _m1: &ClusterModel, _m2: &ClusterModel) -> bool {
        // The per-piece dominance argument (see [`crate::bound::
        // cluster_upper_bound`]) needs the absolute f_a and the FOCUS
        // contract that measures are the cluster boxes' selectivities in
        // the paired dataset — the latter is a modelling convention the
        // models cannot witness, exactly like the lits supports contract.
        matches!(diff, DiffFn::Absolute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_and_bound_presence() {
        assert_eq!(LitsFamily::NAME, "lits");
        assert_eq!(DtFamily::NAME, "dt");
        assert_eq!(ClusterFamily::NAME, "cluster");
        // Compile-time contract: every family carries a model-only bound,
        // but only the lits/dt bounds are pseudo-metrics.
        const {
            assert!(LitsFamily::HAS_BOUND);
            assert!(DtFamily::HAS_BOUND);
            assert!(ClusterFamily::HAS_BOUND);
            assert!(LitsFamily::BOUND_IS_METRIC);
            assert!(DtFamily::BOUND_IS_METRIC);
            assert!(!ClusterFamily::BOUND_IS_METRIC);
        }
    }

    #[test]
    fn lits_bound_dominates_only_fa_same_minsup() {
        let m = |ms: f64| LitsModel::new(Vec::new(), Vec::new(), ms, 10);
        assert!(LitsFamily::bound_dominates(
            DiffFn::Absolute,
            &m(0.1),
            &m(0.1)
        ));
        assert!(!LitsFamily::bound_dominates(
            DiffFn::Scaled,
            &m(0.1),
            &m(0.1)
        ));
        assert!(!LitsFamily::bound_dominates(
            DiffFn::Absolute,
            &m(0.1),
            &m(0.2)
        ));
    }

    #[test]
    fn dt_bound_dominates_only_fa_same_classes() {
        let m = |k: u32| DtModel::new(Vec::new(), k, Vec::new(), 10);
        assert!(DtFamily::bound_dominates(DiffFn::Absolute, &m(2), &m(2)));
        assert!(!DtFamily::bound_dominates(DiffFn::Scaled, &m(2), &m(2)));
        assert!(!DtFamily::bound_dominates(DiffFn::Absolute, &m(2), &m(3)));
        assert!(DtFamily::upper_bound(&m(2), &m(3), AggFn::Sum).is_some());
    }

    #[test]
    fn cluster_bound_dominates_only_fa() {
        let c = ClusterModel::new(Vec::new(), Vec::new(), 0);
        assert!(ClusterFamily::bound_dominates(DiffFn::Absolute, &c, &c));
        assert!(!ClusterFamily::bound_dominates(DiffFn::Scaled, &c, &c));
        assert_eq!(ClusterFamily::upper_bound(&c, &c, AggFn::Sum), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "dataset has 3 classes but the GCR was built for 2")]
    fn dt_measures_reject_class_count_mismatch() {
        // A hand-built DtGcr whose class count understates the data's
        // would tally labels into a neighbouring cell's slot; the scan
        // must refuse instead.
        use crate::data::{LabeledTable, Schema, Value};
        use crate::model::induce_dt_measures;
        use crate::region::BoxBuilder;
        use std::sync::Arc;
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut wide = LabeledTable::new(Arc::clone(&schema), 3);
        for (x, c) in [(0.0, 0), (1.0, 1), (2.0, 2)] {
            wide.push_row(&[Value::Num(x)], c);
        }
        let mut narrow = LabeledTable::new(Arc::clone(&schema), 2);
        for (x, c) in [(0.0, 0), (2.0, 1)] {
            narrow.push_row(&[Value::Num(x)], c);
        }
        let leaves = vec![
            BoxBuilder::new(&schema).lt("x", 1.5).build(),
            BoxBuilder::new(&schema).ge("x", 1.5).build(),
        ];
        let model = induce_dt_measures(leaves, &narrow);
        let gcr = DtFamily::gcr(&model, &model);
        DtFamily::measures(
            &gcr,
            &model,
            &model,
            &&wide,
            Side::Left,
            Parallelism::Sequential,
        );
    }

    #[test]
    fn dt_participation_follows_pinned_class() {
        use crate::data::Schema;
        use crate::region::BoxBuilder;
        use std::sync::Arc;
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let plain = BoxBuilder::new(&schema).lt("x", 1.0).build();
        let pinned = BoxBuilder::new(&schema).ge("x", 1.0).class(1).build();
        let gcr = DtGcr {
            cells: vec![
                OverlayCell {
                    region: plain,
                    left: 0,
                    right: 0,
                },
                OverlayCell {
                    region: pinned,
                    left: 1,
                    right: 1,
                },
            ],
            n_classes: 2,
        };
        assert!(DtFamily::participates(&gcr, 0));
        assert!(DtFamily::participates(&gcr, 1));
        assert!(
            !DtFamily::participates(&gcr, 2),
            "class 0 of a pinned-1 cell"
        );
        assert!(DtFamily::participates(&gcr, 3));
    }
}
