//! Model persistence: plain-text serialization of lits- and dt-models.
//!
//! A mined model is a first-class artifact in FOCUS workflows — the δ*
//! screening of Section 4.1.1 operates on models *without* their datasets,
//! so models need to outlive the mining run. The format is line-oriented
//! and diff-friendly:
//!
//! ```text
//! #lits-model minsup 0.01 n 100000
//! 3 7 19 | 0.0421            (itemset items | support)
//! ```
//!
//! dt-models serialize their schema, leaf boxes (one constraint per
//! attribute) and the per-(leaf, class) measures. Floats round-trip exactly
//! via Rust's shortest representation.

use crate::data::{AttrType, Schema, Value};
use crate::model::{DtModel, LitsModel};
use crate::region::{AttrConstraint, BoxRegion, CatMask, Itemset};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Writes a lits-model.
pub fn write_lits_model<W: Write>(model: &LitsModel, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "#lits-model minsup {} n {}",
        model.minsup(),
        model.n_transactions()
    )?;
    for (s, sup) in model.itemsets().iter().zip(model.supports()) {
        for (i, item) in s.items().iter().enumerate() {
            if i > 0 {
                write!(w, " ")?;
            }
            write!(w, "{item}")?;
        }
        writeln!(w, " | {sup}")?;
    }
    w.flush()
}

/// Reads a lits-model written by [`write_lits_model`].
pub fn read_lits_model<R: Read>(r: R) -> std::io::Result<LitsModel> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| bad("empty model file"))??;
    let rest = header
        .strip_prefix("#lits-model minsup ")
        .ok_or_else(|| bad("missing lits-model header"))?;
    let mut parts = rest.split(" n ");
    let minsup: f64 = parts
        .next()
        .ok_or_else(|| bad("missing minsup"))?
        .trim()
        .parse()
        .map_err(|e| bad(&format!("bad minsup: {e}")))?;
    let n: u64 = parts
        .next()
        .ok_or_else(|| bad("missing n"))?
        .trim()
        .parse()
        .map_err(|e| bad(&format!("bad n: {e}")))?;
    let mut itemsets = Vec::new();
    let mut supports = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (items_part, sup_part) = line
            .split_once('|')
            .ok_or_else(|| bad("itemset line missing '|'"))?;
        let items: Vec<u32> = items_part
            .split_whitespace()
            .map(|t| t.parse().map_err(|e| bad(&format!("bad item: {e}"))))
            .collect::<Result<_, _>>()?;
        let sup: f64 = sup_part
            .trim()
            .parse()
            .map_err(|e| bad(&format!("bad support: {e}")))?;
        itemsets.push(Itemset::new(items));
        supports.push(sup);
    }
    Ok(LitsModel::new(itemsets, supports, minsup, n))
}

/// Writes a dt-model (schema + leaf boxes + measures).
pub fn write_dt_model<W: Write>(model: &DtModel, schema: &Schema, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "#dt-model classes {} n {} leaves {}",
        model.n_classes(),
        model.n_rows(),
        model.leaves().len()
    )?;
    for a in schema.attrs() {
        match &a.ty {
            AttrType::Numeric => writeln!(w, "#num {}", a.name)?,
            AttrType::Categorical { cardinality } => {
                writeln!(w, "#cat {} {}", a.name, cardinality)?
            }
        }
    }
    for (li, leaf) in model.leaves().iter().enumerate() {
        write!(w, "leaf")?;
        for c in &leaf.constraints {
            match c {
                AttrConstraint::Interval { lo, hi } => write!(w, " I {lo} {hi}")?,
                AttrConstraint::Cats(m) => {
                    write!(w, " C {}", m.cardinality())?;
                    if m.is_empty() {
                        // An empty mask would otherwise emit zero tokens
                        // and the reader would see the next field instead;
                        // an explicit sentinel keeps the grammar LL(1).
                        write!(w, " -")?;
                    } else {
                        let codes: Vec<String> = m.iter().map(|x| x.to_string()).collect();
                        write!(w, " {}", codes.join(","))?;
                    }
                }
            }
        }
        write!(w, " |")?;
        for c in 0..model.n_classes() {
            write!(w, " {}", model.measure(li, c))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a dt-model written by [`write_dt_model`]; returns the model and
/// its schema.
pub fn read_dt_model<R: Read>(r: R) -> std::io::Result<(DtModel, Arc<Schema>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| bad("empty model file"))??;
    let rest = header
        .strip_prefix("#dt-model classes ")
        .ok_or_else(|| bad("missing dt-model header"))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // classes <k> n <rows> leaves <l>  →  [k, "n", rows, "leaves", l]
    if fields.len() != 5 || fields[1] != "n" || fields[3] != "leaves" {
        return Err(bad("malformed dt-model header"));
    }
    let k: u32 = fields[0]
        .parse()
        .map_err(|e| bad(&format!("bad classes: {e}")))?;
    let n_rows: u64 = fields[2].parse().map_err(|e| bad(&format!("bad n: {e}")))?;

    let mut attrs = Vec::new();
    let mut leaf_lines: Vec<String> = Vec::new();
    for line in lines {
        let line = line?;
        if let Some(rest) = line.strip_prefix("#num ") {
            attrs.push(Schema::numeric(rest.trim()));
        } else if let Some(rest) = line.strip_prefix("#cat ") {
            let mut p = rest.split_whitespace();
            let name = p.next().ok_or_else(|| bad("missing #cat name"))?;
            let card: u32 = p
                .next()
                .ok_or_else(|| bad("missing cardinality"))?
                .parse()
                .map_err(|e| bad(&format!("bad cardinality: {e}")))?;
            attrs.push(Schema::categorical(name, card));
        } else if line.starts_with("leaf") {
            leaf_lines.push(line);
        }
    }
    let schema = Arc::new(Schema::new(attrs));

    let mut leaves = Vec::new();
    let mut measures = Vec::new();
    for line in leaf_lines {
        let (geom, meas) = line
            .split_once('|')
            .ok_or_else(|| bad("leaf line missing '|'"))?;
        let mut toks = geom.split_whitespace();
        toks.next(); // "leaf"
        let mut constraints = Vec::with_capacity(schema.len());
        while let Some(kind) = toks.next() {
            match kind {
                "I" => {
                    let lo: f64 = parse_tok(&mut toks, "interval lo")?;
                    let hi: f64 = parse_tok(&mut toks, "interval hi")?;
                    constraints.push(AttrConstraint::Interval { lo, hi });
                }
                "C" => {
                    let card: u32 = parse_tok(&mut toks, "cardinality")?;
                    let codes_tok = toks.next().ok_or_else(|| bad("missing codes"))?;
                    // `-` is the empty-mask sentinel: `split_whitespace`
                    // never yields an empty token, so an empty mask must be
                    // spelled explicitly to round-trip.
                    let codes: Vec<u32> = if codes_tok == "-" {
                        Vec::new()
                    } else {
                        codes_tok
                            .split(',')
                            .map(|t| t.parse().map_err(|e| bad(&format!("bad code: {e}"))))
                            .collect::<Result<_, _>>()?
                    };
                    // Range-check before `CatMask::of`, whose insert is an
                    // assert (programmer-error guard) — a malformed file
                    // must fail with `InvalidData`, not a panic.
                    if let Some(&code) = codes.iter().find(|&&c| c >= card) {
                        return Err(bad(&format!("category code {code} out of range 0..{card}")));
                    }
                    constraints.push(AttrConstraint::Cats(CatMask::of(card, &codes)));
                }
                other => return Err(bad(&format!("unknown constraint kind {other:?}"))),
            }
        }
        if constraints.len() != schema.len() {
            return Err(bad("leaf constraint count does not match schema"));
        }
        leaves.push(BoxRegion {
            constraints,
            class: None,
        });
        for tok in meas.split_whitespace() {
            measures.push(
                tok.parse::<f64>()
                    .map_err(|e| bad(&format!("bad measure: {e}")))?,
            );
        }
    }
    if measures.len() != leaves.len() * k as usize {
        return Err(bad("measure count does not match leaves × classes"));
    }
    Ok((DtModel::new(leaves, k, measures, n_rows), schema))
}

fn parse_tok<'a, T: std::str::FromStr>(
    toks: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> std::io::Result<T>
where
    T::Err: std::fmt::Display,
{
    toks.next()
        .ok_or_else(|| bad(&format!("missing {what}")))?
        .parse()
        .map_err(|e| bad(&format!("bad {what}: {e}")))
}

/// A row used by persisted-model round-trip tests (exported for reuse).
pub fn probe_row(schema: &Schema, seed: u64) -> Vec<Value> {
    schema
        .attrs()
        .iter()
        .enumerate()
        .map(|(i, a)| match &a.ty {
            AttrType::Numeric => Value::Num(((seed + i as u64 * 7) % 100) as f64),
            AttrType::Categorical { cardinality } => {
                Value::Cat(((seed + i as u64) % *cardinality as u64) as u32)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LabeledTable;
    use crate::model::induce_dt_measures;
    use crate::region::BoxBuilder;

    #[test]
    fn lits_model_round_trip() {
        let model = LitsModel::new(
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[2, 5]),
                Itemset::from_slice(&[1, 2, 9]),
            ],
            vec![0.5, 1.0 / 3.0, 0.125],
            0.01,
            12_345,
        );
        let mut buf = Vec::new();
        write_lits_model(&model, &mut buf).unwrap();
        let back = read_lits_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn empty_lits_model_round_trip() {
        let model = LitsModel::new(Vec::new(), Vec::new(), 0.05, 0);
        let mut buf = Vec::new();
        write_lits_model(&model, &mut buf).unwrap();
        assert_eq!(read_lits_model(buf.as_slice()).unwrap(), model);
    }

    #[test]
    fn dt_model_round_trip_mixed_schema() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("age"),
            Schema::categorical("elevel", 5),
        ]));
        let mut data = LabeledTable::new(Arc::clone(&schema), 2);
        for i in 0..100 {
            data.push_row(
                &[Value::Num(i as f64), Value::Cat((i % 5) as u32)],
                (i % 2) as u32,
            );
        }
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema)
                    .lt("age", 50.0)
                    .cats("elevel", &[0, 1])
                    .build(),
                BoxBuilder::new(&schema)
                    .lt("age", 50.0)
                    .cats("elevel", &[2, 3, 4])
                    .build(),
                BoxBuilder::new(&schema).ge("age", 50.0).build(),
            ],
            &data,
        );
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
        // Behavioral equivalence on probe rows.
        for seed in 0..20u64 {
            let row = probe_row(&schema, seed);
            assert_eq!(model.locate(&row), back.locate(&row));
            assert_eq!(model.predict(&row), back.predict(&row));
        }
    }

    #[test]
    fn infinite_bounds_round_trip() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut data = LabeledTable::new(Arc::clone(&schema), 2);
        data.push_row(&[Value::Num(1.0)], 0);
        data.push_row(&[Value::Num(5.0)], 1);
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("x", 3.0).build(),
                BoxBuilder::new(&schema).ge("x", 3.0).build(),
            ],
            &data,
        );
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let (back, _) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back, "±inf endpoints must survive");
    }

    #[test]
    fn empty_cat_mask_round_trips() {
        // Regression: an empty `Cats` mask used to emit zero code tokens,
        // so the reader consumed the *next* field as the code list and
        // failed with "missing codes". The `-` sentinel fixes that.
        let schema = Arc::new(Schema::new(vec![
            Schema::categorical("color", 4),
            Schema::numeric("x"),
        ]));
        let leaves = vec![
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Cats(CatMask::empty(4)),
                    AttrConstraint::Interval {
                        lo: f64::NEG_INFINITY,
                        hi: 1.0,
                    },
                ],
                class: None,
            },
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Cats(CatMask::full(4)),
                    AttrConstraint::Interval {
                        lo: 1.0,
                        hi: f64::INFINITY,
                    },
                ],
                class: None,
            },
        ];
        let model = DtModel::new(leaves, 2, vec![0.0, 0.0, 0.25, 0.75], 40);
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains(" C 4 -"), "sentinel missing:\n{text}");
        let (back, back_schema) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_lits_model("nonsense".as_bytes()).is_err());
        assert!(read_dt_model("#dt-model classes x".as_bytes()).is_err());
        assert!(
            read_lits_model("#lits-model minsup 0.1 n 10\n1 2 0.5\n".as_bytes()).is_err(),
            "missing '|' separator must fail"
        );
    }

    #[test]
    fn rejects_out_of_range_category_code_without_panicking() {
        // Code 5 exceeds the declared cardinality 3: must be InvalidData,
        // not the assert inside CatMask::insert.
        let text = "#dt-model classes 2 n 10 leaves 1\n#cat color 3\nleaf C 3 0,5 | 0.5 0.5\n";
        let err = read_dt_model(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("code 5"), "{err}");
    }
}
