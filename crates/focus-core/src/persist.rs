//! Model persistence: plain-text serialization of lits-, dt- and
//! cluster-models.
//!
//! A mined model is a first-class artifact in FOCUS workflows — the δ*
//! screening of Section 4.1.1 operates on models *without* their datasets,
//! so models need to outlive the mining run. The format is line-oriented
//! and diff-friendly:
//!
//! ```text
//! #lits-model minsup 0.01 n 100000
//! 3 7 19 | 0.0421            (itemset items | support)
//! ```
//!
//! dt-models serialize their schema, leaf boxes (one constraint per
//! attribute) and the per-(leaf, class) measures; cluster-models use the
//! same schema and box-constraint grammar with one selectivity per
//! cluster. Floats round-trip exactly via Rust's shortest representation.

use crate::data::{AttrType, Schema, Value};
use crate::model::{ClusterModel, DtModel, LitsModel};
use crate::region::{AttrConstraint, BoxRegion, CatMask, Itemset};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Writes a lits-model.
pub fn write_lits_model<W: Write>(model: &LitsModel, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "#lits-model minsup {} n {}",
        model.minsup(),
        model.n_transactions()
    )?;
    for (s, sup) in model.itemsets().iter().zip(model.supports()) {
        for (i, item) in s.items().iter().enumerate() {
            if i > 0 {
                write!(w, " ")?;
            }
            write!(w, "{item}")?;
        }
        writeln!(w, " | {sup}")?;
    }
    w.flush()
}

/// Reads a lits-model written by [`write_lits_model`].
pub fn read_lits_model<R: Read>(r: R) -> std::io::Result<LitsModel> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| bad("empty model file"))??;
    let rest = header
        .strip_prefix("#lits-model minsup ")
        .ok_or_else(|| bad("missing lits-model header"))?;
    let mut parts = rest.split(" n ");
    let minsup: f64 = parts
        .next()
        .ok_or_else(|| bad("missing minsup"))?
        .trim()
        .parse()
        .map_err(|e| bad(&format!("bad minsup: {e}")))?;
    let n: u64 = parts
        .next()
        .ok_or_else(|| bad("missing n"))?
        .trim()
        .parse()
        .map_err(|e| bad(&format!("bad n: {e}")))?;
    let mut itemsets = Vec::new();
    let mut supports = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (items_part, sup_part) = line
            .split_once('|')
            .ok_or_else(|| bad("itemset line missing '|'"))?;
        let items: Vec<u32> = items_part
            .split_whitespace()
            .map(|t| t.parse().map_err(|e| bad(&format!("bad item: {e}"))))
            .collect::<Result<_, _>>()?;
        let sup: f64 = sup_part
            .trim()
            .parse()
            .map_err(|e| bad(&format!("bad support: {e}")))?;
        itemsets.push(Itemset::new(items));
        supports.push(sup);
    }
    Ok(LitsModel::new(itemsets, supports, minsup, n))
}

/// Writes a dt-model (schema + leaf boxes + measures).
pub fn write_dt_model<W: Write>(model: &DtModel, schema: &Schema, w: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "#dt-model classes {} n {} leaves {}",
        model.n_classes(),
        model.n_rows(),
        model.leaves().len()
    )?;
    for a in schema.attrs() {
        match &a.ty {
            AttrType::Numeric => writeln!(w, "#num {}", a.name)?,
            AttrType::Categorical { cardinality } => {
                writeln!(w, "#cat {} {}", a.name, cardinality)?
            }
        }
    }
    for (li, leaf) in model.leaves().iter().enumerate() {
        write!(w, "leaf")?;
        write_constraints(&mut w, &leaf.constraints)?;
        write!(w, " |")?;
        for c in 0..model.n_classes() {
            write!(w, " {}", model.measure(li, c))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a dt-model written by [`write_dt_model`]; returns the model and
/// its schema.
pub fn read_dt_model<R: Read>(r: R) -> std::io::Result<(DtModel, Arc<Schema>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| bad("empty model file"))??;
    let rest = header
        .strip_prefix("#dt-model classes ")
        .ok_or_else(|| bad("missing dt-model header"))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // classes <k> n <rows> leaves <l>  →  [k, "n", rows, "leaves", l]
    if fields.len() != 5 || fields[1] != "n" || fields[3] != "leaves" {
        return Err(bad("malformed dt-model header"));
    }
    let k: u32 = fields[0]
        .parse()
        .map_err(|e| bad(&format!("bad classes: {e}")))?;
    let n_rows: u64 = fields[2].parse().map_err(|e| bad(&format!("bad n: {e}")))?;

    let (schema, region_lines) = read_schema_and_regions(lines, "leaf")?;

    let mut leaves = Vec::new();
    let mut measures = Vec::new();
    for line in region_lines {
        let (region, meas) = read_region_line(&line, "leaf", &schema)?;
        leaves.push(region);
        measures.extend(meas);
    }
    if measures.len() != leaves.len() * k as usize {
        return Err(bad("measure count does not match leaves × classes"));
    }
    Ok((DtModel::new(leaves, k, measures, n_rows), schema))
}

/// Writes one box's constraints in the shared `I lo hi` / `C card codes`
/// grammar (used by both dt leaves and cluster regions).
fn write_constraints<W: Write>(w: &mut W, constraints: &[AttrConstraint]) -> std::io::Result<()> {
    for c in constraints {
        match c {
            AttrConstraint::Interval { lo, hi } => write!(w, " I {lo} {hi}")?,
            AttrConstraint::Cats(m) => {
                write!(w, " C {}", m.cardinality())?;
                if m.is_empty() {
                    // An empty mask would otherwise emit zero tokens
                    // and the reader would see the next field instead;
                    // an explicit sentinel keeps the grammar LL(1).
                    write!(w, " -")?;
                } else {
                    let codes: Vec<String> = m.iter().map(|x| x.to_string()).collect();
                    write!(w, " {}", codes.join(","))?;
                }
            }
        }
    }
    Ok(())
}

/// Splits a model file's remaining lines into schema attribute headers and
/// the region lines starting with `region_kw`.
fn read_schema_and_regions(
    lines: impl Iterator<Item = std::io::Result<String>>,
    region_kw: &str,
) -> std::io::Result<(Arc<Schema>, Vec<String>)> {
    let mut attrs = Vec::new();
    let mut region_lines: Vec<String> = Vec::new();
    for line in lines {
        let line = line?;
        if let Some(rest) = line.strip_prefix("#num ") {
            attrs.push(Schema::numeric(rest.trim()));
        } else if let Some(rest) = line.strip_prefix("#cat ") {
            let mut p = rest.split_whitespace();
            let name = p.next().ok_or_else(|| bad("missing #cat name"))?;
            let card: u32 = p
                .next()
                .ok_or_else(|| bad("missing cardinality"))?
                .parse()
                .map_err(|e| bad(&format!("bad cardinality: {e}")))?;
            attrs.push(Schema::categorical(name, card));
        } else if line.starts_with(region_kw) {
            region_lines.push(line);
        }
    }
    Ok((Arc::new(Schema::new(attrs)), region_lines))
}

/// Parses one `<kw> <constraints> | <floats>` region line against `schema`,
/// returning the (class-free) box and the float list after the separator.
fn read_region_line(
    line: &str,
    region_kw: &str,
    schema: &Schema,
) -> std::io::Result<(BoxRegion, Vec<f64>)> {
    let (geom, meas) = line
        .split_once('|')
        .ok_or_else(|| bad(&format!("{region_kw} line missing '|'")))?;
    let mut toks = geom.split_whitespace();
    toks.next(); // the region keyword itself
    let mut constraints = Vec::with_capacity(schema.len());
    while let Some(kind) = toks.next() {
        match kind {
            "I" => {
                let lo: f64 = parse_tok(&mut toks, "interval lo")?;
                let hi: f64 = parse_tok(&mut toks, "interval hi")?;
                constraints.push(AttrConstraint::Interval { lo, hi });
            }
            "C" => {
                let card: u32 = parse_tok(&mut toks, "cardinality")?;
                let codes_tok = toks.next().ok_or_else(|| bad("missing codes"))?;
                // `-` is the empty-mask sentinel: `split_whitespace`
                // never yields an empty token, so an empty mask must be
                // spelled explicitly to round-trip.
                let codes: Vec<u32> = if codes_tok == "-" {
                    Vec::new()
                } else {
                    codes_tok
                        .split(',')
                        .map(|t| t.parse().map_err(|e| bad(&format!("bad code: {e}"))))
                        .collect::<Result<_, _>>()?
                };
                // Range-check before `CatMask::of`, whose insert is an
                // assert (programmer-error guard) — a malformed file
                // must fail with `InvalidData`, not a panic.
                if let Some(&code) = codes.iter().find(|&&c| c >= card) {
                    return Err(bad(&format!("category code {code} out of range 0..{card}")));
                }
                constraints.push(AttrConstraint::Cats(CatMask::of(card, &codes)));
            }
            other => return Err(bad(&format!("unknown constraint kind {other:?}"))),
        }
    }
    if constraints.len() != schema.len() {
        return Err(bad(&format!(
            "{region_kw} constraint count does not match schema"
        )));
    }
    let floats = meas
        .split_whitespace()
        .map(|tok| {
            tok.parse::<f64>()
                .map_err(|e| bad(&format!("bad measure: {e}")))
        })
        .collect::<Result<Vec<f64>, _>>()?;
    Ok((
        BoxRegion {
            constraints,
            class: None,
        },
        floats,
    ))
}

/// Checks that a cluster-model is persistable: its regions must be
/// class-free, because neither the text nor the binary snapshot format
/// records a region class — persisting one would silently drop it. Both
/// writers call this, so they reject the same models with `InvalidInput`.
pub fn check_cluster_model_persistable(model: &ClusterModel) -> std::io::Result<()> {
    if model.clusters().iter().any(|c| c.class.is_some()) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cluster regions must be class-free to persist",
        ));
    }
    Ok(())
}

/// Writes a cluster-model (schema + cluster boxes + one selectivity per
/// cluster). Cluster regions must be class-free — a class-carrying region
/// is rejected with `InvalidInput` rather than silently dropped.
pub fn write_cluster_model<W: Write>(
    model: &ClusterModel,
    schema: &Schema,
    w: W,
) -> std::io::Result<()> {
    check_cluster_model_persistable(model)?;
    let mut w = BufWriter::new(w);
    writeln!(
        w,
        "#cluster-model n {} clusters {}",
        model.n_rows(),
        model.clusters().len()
    )?;
    for a in schema.attrs() {
        match &a.ty {
            AttrType::Numeric => writeln!(w, "#num {}", a.name)?,
            AttrType::Categorical { cardinality } => {
                writeln!(w, "#cat {} {}", a.name, cardinality)?
            }
        }
    }
    for (ci, cluster) in model.clusters().iter().enumerate() {
        write!(w, "cluster")?;
        write_constraints(&mut w, &cluster.constraints)?;
        writeln!(w, " | {}", model.measures()[ci])?;
    }
    w.flush()
}

/// Reads a cluster-model written by [`write_cluster_model`]; returns the
/// model and its schema.
pub fn read_cluster_model<R: Read>(r: R) -> std::io::Result<(ClusterModel, Arc<Schema>)> {
    let mut lines = BufReader::new(r).lines();
    let header = lines.next().ok_or_else(|| bad("empty model file"))??;
    let rest = header
        .strip_prefix("#cluster-model n ")
        .ok_or_else(|| bad("missing cluster-model header"))?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // n <rows> clusters <c>  →  [rows, "clusters", c]
    if fields.len() != 3 || fields[1] != "clusters" {
        return Err(bad("malformed cluster-model header"));
    }
    let n_rows: u64 = fields[0].parse().map_err(|e| bad(&format!("bad n: {e}")))?;
    let n_clusters: u64 = fields[2]
        .parse()
        .map_err(|e| bad(&format!("bad cluster count: {e}")))?;

    let (schema, region_lines) = read_schema_and_regions(lines, "cluster")?;
    let mut clusters = Vec::new();
    let mut measures = Vec::new();
    for line in region_lines {
        let (region, meas) = read_region_line(&line, "cluster", &schema)?;
        if meas.len() != 1 {
            return Err(bad("cluster line must carry exactly one selectivity"));
        }
        clusters.push(region);
        measures.push(meas[0]);
    }
    if clusters.len() as u64 != n_clusters {
        return Err(bad("cluster count does not match header"));
    }
    Ok((ClusterModel::new(clusters, measures, n_rows), schema))
}

fn parse_tok<'a, T: std::str::FromStr>(
    toks: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> std::io::Result<T>
where
    T::Err: std::fmt::Display,
{
    toks.next()
        .ok_or_else(|| bad(&format!("missing {what}")))?
        .parse()
        .map_err(|e| bad(&format!("bad {what}: {e}")))
}

/// A row used by persisted-model round-trip tests (exported for reuse).
pub fn probe_row(schema: &Schema, seed: u64) -> Vec<Value> {
    schema
        .attrs()
        .iter()
        .enumerate()
        .map(|(i, a)| match &a.ty {
            AttrType::Numeric => Value::Num(((seed + i as u64 * 7) % 100) as f64),
            AttrType::Categorical { cardinality } => {
                Value::Cat(((seed + i as u64) % *cardinality as u64) as u32)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LabeledTable;
    use crate::model::induce_dt_measures;
    use crate::region::BoxBuilder;

    #[test]
    fn lits_model_round_trip() {
        let model = LitsModel::new(
            vec![
                Itemset::from_slice(&[0]),
                Itemset::from_slice(&[2, 5]),
                Itemset::from_slice(&[1, 2, 9]),
            ],
            vec![0.5, 1.0 / 3.0, 0.125],
            0.01,
            12_345,
        );
        let mut buf = Vec::new();
        write_lits_model(&model, &mut buf).unwrap();
        let back = read_lits_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn empty_lits_model_round_trip() {
        let model = LitsModel::new(Vec::new(), Vec::new(), 0.05, 0);
        let mut buf = Vec::new();
        write_lits_model(&model, &mut buf).unwrap();
        assert_eq!(read_lits_model(buf.as_slice()).unwrap(), model);
    }

    #[test]
    fn dt_model_round_trip_mixed_schema() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("age"),
            Schema::categorical("elevel", 5),
        ]));
        let mut data = LabeledTable::new(Arc::clone(&schema), 2);
        for i in 0..100 {
            data.push_row(
                &[Value::Num(i as f64), Value::Cat((i % 5) as u32)],
                (i % 2) as u32,
            );
        }
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema)
                    .lt("age", 50.0)
                    .cats("elevel", &[0, 1])
                    .build(),
                BoxBuilder::new(&schema)
                    .lt("age", 50.0)
                    .cats("elevel", &[2, 3, 4])
                    .build(),
                BoxBuilder::new(&schema).ge("age", 50.0).build(),
            ],
            &data,
        );
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
        // Behavioral equivalence on probe rows.
        for seed in 0..20u64 {
            let row = probe_row(&schema, seed);
            assert_eq!(model.locate(&row), back.locate(&row));
            assert_eq!(model.predict(&row), back.predict(&row));
        }
    }

    #[test]
    fn infinite_bounds_round_trip() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let mut data = LabeledTable::new(Arc::clone(&schema), 2);
        data.push_row(&[Value::Num(1.0)], 0);
        data.push_row(&[Value::Num(5.0)], 1);
        let model = induce_dt_measures(
            vec![
                BoxBuilder::new(&schema).lt("x", 3.0).build(),
                BoxBuilder::new(&schema).ge("x", 3.0).build(),
            ],
            &data,
        );
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let (back, _) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back, "±inf endpoints must survive");
    }

    #[test]
    fn empty_cat_mask_round_trips() {
        // Regression: an empty `Cats` mask used to emit zero code tokens,
        // so the reader consumed the *next* field as the code list and
        // failed with "missing codes". The `-` sentinel fixes that.
        let schema = Arc::new(Schema::new(vec![
            Schema::categorical("color", 4),
            Schema::numeric("x"),
        ]));
        let leaves = vec![
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Cats(CatMask::empty(4)),
                    AttrConstraint::Interval {
                        lo: f64::NEG_INFINITY,
                        hi: 1.0,
                    },
                ],
                class: None,
            },
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Cats(CatMask::full(4)),
                    AttrConstraint::Interval {
                        lo: 1.0,
                        hi: f64::INFINITY,
                    },
                ],
                class: None,
            },
        ];
        let model = DtModel::new(leaves, 2, vec![0.0, 0.0, 0.25, 0.75], 40);
        let mut buf = Vec::new();
        write_dt_model(&model, &schema, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains(" C 4 -"), "sentinel missing:\n{text}");
        let (back, back_schema) = read_dt_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
    }

    #[test]
    fn cluster_model_round_trip_mixed_schema() {
        let schema = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::categorical("color", 4),
        ]));
        let clusters = vec![
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Interval {
                        lo: f64::NEG_INFINITY,
                        hi: 2.5,
                    },
                    AttrConstraint::Cats(CatMask::of(4, &[0, 3])),
                ],
                class: None,
            },
            BoxRegion {
                constraints: vec![
                    AttrConstraint::Interval { lo: 2.5, hi: 2.5 },
                    AttrConstraint::Cats(CatMask::empty(4)),
                ],
                class: None,
            },
        ];
        let model = ClusterModel::new(clusters, vec![0.75, 0.0], 120);
        let mut buf = Vec::new();
        write_cluster_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_cluster_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
    }

    #[test]
    fn empty_cluster_model_round_trips() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let model = ClusterModel::new(Vec::new(), Vec::new(), 0);
        let mut buf = Vec::new();
        write_cluster_model(&model, &schema, &mut buf).unwrap();
        let (back, back_schema) = read_cluster_model(buf.as_slice()).unwrap();
        assert_eq!(model, back);
        assert_eq!(*back_schema, *schema);
    }

    #[test]
    fn cluster_model_rejects_classful_regions() {
        let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let region = BoxBuilder::new(&schema).lt("x", 1.0).class(0).build();
        let model = ClusterModel::new(vec![region], vec![1.0], 10);
        let err = write_cluster_model(&model, &schema, Vec::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn cluster_model_rejects_garbage() {
        assert!(read_cluster_model("nonsense".as_bytes()).is_err());
        assert!(read_cluster_model("#cluster-model n 5 clusters x".as_bytes()).is_err());
        // Header/body cluster-count mismatch.
        let text = "#cluster-model n 5 clusters 2\n#num x\ncluster I 0 1 | 0.5\n";
        assert!(read_cluster_model(text.as_bytes()).is_err());
        // Two selectivities on one cluster line.
        let text = "#cluster-model n 5 clusters 1\n#num x\ncluster I 0 1 | 0.5 0.5\n";
        assert!(read_cluster_model(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_lits_model("nonsense".as_bytes()).is_err());
        assert!(read_dt_model("#dt-model classes x".as_bytes()).is_err());
        assert!(
            read_lits_model("#lits-model minsup 0.1 n 10\n1 2 0.5\n".as_bytes()).is_err(),
            "missing '|' separator must fail"
        );
    }

    #[test]
    fn rejects_out_of_range_category_code_without_panicking() {
        // Code 5 exceeds the declared cardinality 3: must be InvalidData,
        // not the assert inside CatMask::insert.
        let text = "#dt-model classes 2 n 10 leaves 1\n#cat color 3\nleaf C 3 0,5 | 0.5 0.5\n";
        let err = read_dt_model(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("code 5"), "{err}");
    }
}
