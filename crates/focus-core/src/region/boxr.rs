//! Axis-parallel box regions with optional class labels.
//!
//! A [`BoxRegion`] is a conjunction of one constraint per attribute —
//! a half-open interval `[lo, hi)` for numeric attributes, a category bitset
//! for categorical ones — plus an optional class label. Decision-tree leaf
//! regions (Section 2.1: each leaf of a tree over `k` classes contributes
//! `k` regions that differ only in the class label) and cluster regions are
//! boxes. The dt-model GCR (Definition 4.2) is computed by intersecting
//! boxes, and the cluster remainder decomposition uses box subtraction.

use crate::data::{AttrType, Schema, Value};
use std::fmt;

/// A bitset over the codes of one categorical attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatMask {
    bits: Vec<u64>,
    cardinality: u32,
}

impl CatMask {
    /// The full mask: every code `0..cardinality` present.
    pub fn full(cardinality: u32) -> Self {
        let n_words = cardinality.div_ceil(64) as usize;
        let mut bits = vec![u64::MAX; n_words];
        let rem = cardinality % 64;
        if rem != 0 {
            if let Some(last) = bits.last_mut() {
                *last = (1u64 << rem) - 1;
            }
        }
        if cardinality == 0 {
            bits.clear();
        }
        Self { bits, cardinality }
    }

    /// The empty mask.
    pub fn empty(cardinality: u32) -> Self {
        Self {
            bits: vec![0; cardinality.div_ceil(64) as usize],
            cardinality,
        }
    }

    /// A mask containing exactly the given codes.
    pub fn of(cardinality: u32, codes: &[u32]) -> Self {
        let mut m = Self::empty(cardinality);
        for &c in codes {
            m.insert(c);
        }
        m
    }

    /// Number of category codes in the attribute domain.
    pub fn cardinality(&self) -> u32 {
        self.cardinality
    }

    /// Inserts a code.
    pub fn insert(&mut self, code: u32) {
        assert!(code < self.cardinality, "code {code} out of range");
        self.bits[(code / 64) as usize] |= 1 << (code % 64);
    }

    /// True if the mask contains `code`.
    pub fn contains(&self, code: u32) -> bool {
        if code >= self.cardinality {
            return false;
        }
        self.bits[(code / 64) as usize] & (1 << (code % 64)) != 0
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CatMask) -> CatMask {
        assert_eq!(self.cardinality, other.cardinality);
        CatMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
            cardinality: self.cardinality,
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &CatMask) -> CatMask {
        assert_eq!(self.cardinality, other.cardinality);
        CatMask {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & !b)
                .collect(),
            cardinality: self.cardinality,
        }
    }

    /// True if no codes are present.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Number of codes present.
    pub fn count(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates over the codes present, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.cardinality).filter(move |&c| self.contains(c))
    }
}

/// The constraint a box places on a single attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrConstraint {
    /// Numeric half-open interval `[lo, hi)`. The unconstrained interval is
    /// `(-∞, +∞)` represented with infinite endpoints.
    Interval {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Categorical membership constraint.
    Cats(CatMask),
}

impl AttrConstraint {
    /// The unconstrained constraint for an attribute type.
    pub fn full(ty: &AttrType) -> Self {
        match ty {
            AttrType::Numeric => AttrConstraint::Interval {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
            },
            AttrType::Categorical { cardinality } => {
                AttrConstraint::Cats(CatMask::full(*cardinality))
            }
        }
    }

    /// True if the constraint admits `value`.
    pub fn contains(&self, value: &Value) -> bool {
        match (self, value) {
            (AttrConstraint::Interval { lo, hi }, Value::Num(x)) => *lo <= *x && *x < *hi,
            (AttrConstraint::Cats(mask), Value::Cat(c)) => mask.contains(*c),
            _ => panic!("constraint kind does not match value kind"),
        }
    }

    /// Intersection; `None` if the result is certainly empty.
    pub fn intersect(&self, other: &AttrConstraint) -> Option<AttrConstraint> {
        match (self, other) {
            (
                AttrConstraint::Interval { lo: a, hi: b },
                AttrConstraint::Interval { lo: c, hi: d },
            ) => {
                let lo = a.max(*c);
                let hi = b.min(*d);
                if lo < hi {
                    Some(AttrConstraint::Interval { lo, hi })
                } else {
                    None
                }
            }
            (AttrConstraint::Cats(m1), AttrConstraint::Cats(m2)) => {
                let m = m1.intersect(m2);
                if m.is_empty() {
                    None
                } else {
                    Some(AttrConstraint::Cats(m))
                }
            }
            _ => panic!("cannot intersect interval with category constraint"),
        }
    }

    /// True if this constraint is the full domain (used by pretty-printing).
    pub fn is_full(&self) -> bool {
        match self {
            AttrConstraint::Interval { lo, hi } => {
                lo.is_infinite() && *lo < 0.0 && hi.is_infinite() && *hi > 0.0
            }
            AttrConstraint::Cats(m) => m.count() == m.cardinality(),
        }
    }
}

/// An axis-parallel box region with an optional class label.
///
/// The class label acts as one more (exact-match) dimension: two boxes with
/// different concrete labels have an empty intersection. Boxes with
/// `class: None` constrain only the attribute part — these are the leaf
/// *cells* of a decision tree before being split per class.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxRegion {
    /// One constraint per schema attribute, in schema order.
    pub constraints: Vec<AttrConstraint>,
    /// Optional class label refinement.
    pub class: Option<u32>,
}

impl BoxRegion {
    /// The full attribute space for `schema` (no class restriction).
    pub fn full(schema: &Schema) -> Self {
        BoxRegion {
            constraints: schema
                .attrs()
                .iter()
                .map(|a| AttrConstraint::full(&a.ty))
                .collect(),
            class: None,
        }
    }

    /// True if the box admits the (unlabelled) row.
    pub fn contains(&self, row: &[Value]) -> bool {
        debug_assert_eq!(row.len(), self.constraints.len());
        self.constraints.iter().zip(row).all(|(c, v)| c.contains(v))
    }

    /// True if the box admits the labelled row (class must match when the
    /// box specifies one).
    pub fn contains_labeled(&self, row: &[Value], label: u32) -> bool {
        match self.class {
            Some(c) if c != label => false,
            _ => self.contains(row),
        }
    }

    /// Intersection of two boxes; `None` if certainly empty (disjoint on a
    /// dimension or conflicting class labels).
    pub fn intersect(&self, other: &BoxRegion) -> Option<BoxRegion> {
        assert_eq!(
            self.constraints.len(),
            other.constraints.len(),
            "boxes over different schemas"
        );
        let class = match (self.class, other.class) {
            (Some(a), Some(b)) if a != b => return None,
            (Some(a), _) => Some(a),
            (None, b) => b,
        };
        let mut constraints = Vec::with_capacity(self.constraints.len());
        for (a, b) in self.constraints.iter().zip(&other.constraints) {
            constraints.push(a.intersect(b)?);
        }
        Some(BoxRegion { constraints, class })
    }

    /// A copy of this box restricted to class `c`.
    pub fn with_class(&self, c: u32) -> BoxRegion {
        BoxRegion {
            constraints: self.constraints.clone(),
            class: Some(c),
        }
    }

    /// Box difference `self \ other`, decomposed into disjoint boxes.
    ///
    /// Standard coordinate sweep: for each dimension in turn, emit the parts
    /// of `self` outside `other` on that dimension (with all previous
    /// dimensions clipped to the overlap). Returns `[self.clone()]` when the
    /// boxes do not intersect. Class labels: if `other` has a class and
    /// `self` does not (or they differ), nothing is removed.
    pub fn subtract(&self, other: &BoxRegion) -> Vec<BoxRegion> {
        if self.intersect(other).is_none() {
            return vec![self.clone()];
        }
        // Class semantics: subtraction of a class-specific box from a
        // class-free box would split the class dimension; FOCUS only needs
        // subtraction between class-free cluster boxes, so we require
        // compatible labels here (the intersect() check above admits
        // (None, Some) pairs, which we reject for subtraction).
        assert!(
            self.class == other.class || other.class.is_none(),
            "subtract requires other's class to cover self's"
        );
        let mut pieces = Vec::new();
        let mut clipped = self.clone();
        for (dim, (a, b)) in self.constraints.iter().zip(&other.constraints).enumerate() {
            match (a, b) {
                (
                    AttrConstraint::Interval { lo: alo, hi: ahi },
                    AttrConstraint::Interval { lo: blo, hi: bhi },
                ) => {
                    if alo < blo {
                        let mut p = clipped.clone();
                        p.constraints[dim] = AttrConstraint::Interval { lo: *alo, hi: *blo };
                        pieces.push(p);
                    }
                    if bhi < ahi {
                        let mut p = clipped.clone();
                        p.constraints[dim] = AttrConstraint::Interval { lo: *bhi, hi: *ahi };
                        pieces.push(p);
                    }
                    // Clip this dimension to the overlap for later dims.
                    clipped.constraints[dim] = AttrConstraint::Interval {
                        lo: alo.max(*blo),
                        hi: ahi.min(*bhi),
                    };
                }
                (AttrConstraint::Cats(ma), AttrConstraint::Cats(mb)) => {
                    let outside = ma.difference(mb);
                    if !outside.is_empty() {
                        let mut p = clipped.clone();
                        p.constraints[dim] = AttrConstraint::Cats(outside);
                        pieces.push(p);
                    }
                    clipped.constraints[dim] = AttrConstraint::Cats(ma.intersect(mb));
                }
                _ => panic!("mismatched constraint kinds in subtract"),
            }
        }
        pieces
    }

    /// Renders the region's predicate over a schema, e.g.
    /// `age ∈ [30, ∞) ∧ elevel ∈ {0,1} ∧ class = 1`.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, c) in self.constraints.iter().enumerate() {
            if c.is_full() {
                continue;
            }
            let name = &schema.attr(i).name;
            match c {
                AttrConstraint::Interval { lo, hi } => {
                    parts.push(format!("{name} ∈ [{lo}, {hi})"));
                }
                AttrConstraint::Cats(m) => {
                    let codes: Vec<String> = m.iter().map(|c| c.to_string()).collect();
                    parts.push(format!("{name} ∈ {{{}}}", codes.join(",")));
                }
            }
        }
        if let Some(c) = self.class {
            parts.push(format!("class = {c}"));
        }
        if parts.is_empty() {
            "⊤".to_string()
        } else {
            parts.join(" ∧ ")
        }
    }
}

impl fmt::Display for BoxRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            match c {
                AttrConstraint::Interval { lo, hi } => write!(f, "x{i} ∈ [{lo}, {hi})")?,
                AttrConstraint::Cats(m) => {
                    write!(f, "x{i} ∈ {{")?;
                    for (j, code) in m.iter().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{code}")?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        if let Some(c) = self.class {
            write!(f, " ∧ class = {c}")?;
        }
        Ok(())
    }
}

/// Fluent builder for predicate regions (the `Predicate` operator of
/// Section 5: "the predicate region is a subset of the attribute space
/// identified by p").
///
/// # Example
///
/// ```
/// use focus_core::data::Schema;
/// use focus_core::region::BoxBuilder;
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::new(vec![
///     Schema::numeric("age"),
///     Schema::categorical("elevel", 5),
/// ]));
/// // The focussing region of the paper's Section 2.3 example: age < 30.
/// let region = BoxBuilder::new(&schema).lt("age", 30.0).build();
/// assert_eq!(region.describe(&schema), "age ∈ [-inf, 30)");
/// ```
#[derive(Debug, Clone)]
pub struct BoxBuilder {
    schema: std::sync::Arc<Schema>,
    region: BoxRegion,
}

impl BoxBuilder {
    /// Starts from the full attribute space.
    pub fn new(schema: &std::sync::Arc<Schema>) -> Self {
        Self {
            schema: std::sync::Arc::clone(schema),
            region: BoxRegion::full(schema),
        }
    }

    fn attr_index(&self, name: &str) -> usize {
        self.schema
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown attribute {name:?}"))
    }

    /// Constrains a numeric attribute to `[lo, hi)`.
    pub fn range(mut self, attr: &str, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        let i = self.attr_index(attr);
        self.region.constraints[i] = AttrConstraint::Interval { lo, hi };
        self
    }

    /// Constrains a numeric attribute to `(-∞, hi)`.
    pub fn lt(self, attr: &str, hi: f64) -> Self {
        self.range(attr, f64::NEG_INFINITY, hi)
    }

    /// Constrains a numeric attribute to `[lo, ∞)`.
    pub fn ge(self, attr: &str, lo: f64) -> Self {
        self.range(attr, lo, f64::INFINITY)
    }

    /// Constrains a categorical attribute to the given codes.
    pub fn cats(mut self, attr: &str, codes: &[u32]) -> Self {
        let i = self.attr_index(attr);
        let card = match &self.schema.attr(i).ty {
            AttrType::Categorical { cardinality } => *cardinality,
            AttrType::Numeric => panic!("attribute {attr:?} is numeric, not categorical"),
        };
        self.region.constraints[i] = AttrConstraint::Cats(CatMask::of(card, codes));
        self
    }

    /// Restricts to a class label.
    pub fn class(mut self, c: u32) -> Self {
        self.region.class = Some(c);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> BoxRegion {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Schema::numeric("age"),
            Schema::numeric("salary"),
            Schema::categorical("elevel", 5),
        ]))
    }

    #[test]
    fn catmask_full_and_partial_words() {
        let m = CatMask::full(5);
        assert_eq!(m.count(), 5);
        assert!(m.contains(4));
        assert!(!m.contains(5));
        let big = CatMask::full(130);
        assert_eq!(big.count(), 130);
        assert!(big.contains(129));
    }

    #[test]
    fn catmask_ops() {
        let a = CatMask::of(10, &[1, 2, 3]);
        let b = CatMask::of(10, &[3, 4]);
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(a.intersect(&CatMask::empty(10)).is_empty());
    }

    #[test]
    fn interval_intersection() {
        let a = AttrConstraint::Interval { lo: 0.0, hi: 10.0 };
        let b = AttrConstraint::Interval { lo: 5.0, hi: 20.0 };
        match a.intersect(&b) {
            Some(AttrConstraint::Interval { lo, hi }) => {
                assert_eq!((lo, hi), (5.0, 10.0));
            }
            _ => panic!("expected interval"),
        }
        let c = AttrConstraint::Interval { lo: 10.0, hi: 20.0 };
        assert!(a.intersect(&c).is_none(), "half-open: [0,10) ∩ [10,20) = ∅");
    }

    #[test]
    fn box_contains_and_class() {
        let s = schema();
        let r = BoxBuilder::new(&s)
            .lt("age", 30.0)
            .ge("salary", 100_000.0)
            .cats("elevel", &[0, 1])
            .build();
        let row = [Value::Num(25.0), Value::Num(120_000.0), Value::Cat(1)];
        assert!(r.contains(&row));
        let row2 = [Value::Num(35.0), Value::Num(120_000.0), Value::Cat(1)];
        assert!(!r.contains(&row2));
        let rc = r.with_class(1);
        assert!(rc.contains_labeled(&row, 1));
        assert!(!rc.contains_labeled(&row, 0));
        // A class-free box admits any label.
        assert!(r.contains_labeled(&row, 0));
    }

    #[test]
    fn box_intersection_with_classes() {
        let s = schema();
        let a = BoxBuilder::new(&s).lt("age", 50.0).class(0).build();
        let b = BoxBuilder::new(&s).ge("age", 30.0).class(0).build();
        let c = a.intersect(&b).expect("non-empty");
        assert_eq!(c.class, Some(0));
        assert!(c.contains(&[Value::Num(40.0), Value::Num(0.0), Value::Cat(0)]));
        assert!(!c.contains(&[Value::Num(20.0), Value::Num(0.0), Value::Cat(0)]));
        let d = BoxBuilder::new(&s).class(1).build();
        assert!(a.intersect(&d).is_none(), "conflicting classes are empty");
    }

    #[test]
    fn box_subtract_1d() {
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = BoxBuilder::new(&s).range("x", 0.0, 10.0).build();
        let b = BoxBuilder::new(&s).range("x", 3.0, 7.0).build();
        let pieces = a.subtract(&b);
        assert_eq!(pieces.len(), 2);
        // Pieces are [0,3) and [7,10); disjoint from b and from each other.
        for p in &pieces {
            assert!(p.intersect(&b).is_none());
        }
        assert!(pieces[0].intersect(&pieces[1]).is_none());
    }

    #[test]
    fn box_subtract_2d_cross() {
        let s = Arc::new(Schema::new(vec![
            Schema::numeric("x"),
            Schema::numeric("y"),
        ]));
        let a = BoxBuilder::new(&s)
            .range("x", 0.0, 10.0)
            .range("y", 0.0, 10.0)
            .build();
        let b = BoxBuilder::new(&s)
            .range("x", 4.0, 6.0)
            .range("y", 4.0, 6.0)
            .build();
        let pieces = a.subtract(&b);
        assert_eq!(pieces.len(), 4);
        // All pieces disjoint from b and pairwise disjoint.
        for (i, p) in pieces.iter().enumerate() {
            assert!(p.intersect(&b).is_none());
            for q in &pieces[i + 1..] {
                assert!(p.intersect(q).is_none());
            }
        }
        // The hole's corners are not covered, its outside is.
        let covered = |x: f64, y: f64| {
            pieces
                .iter()
                .any(|p| p.contains(&[Value::Num(x), Value::Num(y)]))
        };
        assert!(covered(1.0, 1.0));
        assert!(covered(5.0, 1.0));
        assert!(!covered(5.0, 5.0));
    }

    #[test]
    fn box_subtract_disjoint_returns_self() {
        let s = Arc::new(Schema::new(vec![Schema::numeric("x")]));
        let a = BoxBuilder::new(&s).range("x", 0.0, 1.0).build();
        let b = BoxBuilder::new(&s).range("x", 5.0, 6.0).build();
        assert_eq!(a.subtract(&b), vec![a.clone()]);
    }

    #[test]
    fn box_subtract_categorical() {
        let s = Arc::new(Schema::new(vec![Schema::categorical("c", 4)]));
        let a = BoxBuilder::new(&s).cats("c", &[0, 1, 2]).build();
        let b = BoxBuilder::new(&s).cats("c", &[1]).build();
        let pieces = a.subtract(&b);
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].contains(&[Value::Cat(0)]));
        assert!(pieces[0].contains(&[Value::Cat(2)]));
        assert!(!pieces[0].contains(&[Value::Cat(1)]));
    }

    #[test]
    fn describe_pretty_prints() {
        let s = schema();
        let r = BoxBuilder::new(&s).lt("age", 30.0).class(1).build();
        assert_eq!(r.describe(&s), "age ∈ [-inf, 30) ∧ class = 1");
        assert_eq!(BoxRegion::full(&s).describe(&s), "⊤");
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn builder_rejects_unknown_attribute() {
        BoxBuilder::new(&schema()).lt("wage", 1.0);
    }
}
