//! Itemset regions for lits-models.
//!
//! A frequent itemset `X ⊆ I` identifies the region of the transaction space
//! where every item of `X` is present; its measure is the support of `X`
//! (Section 2.2). Itemsets are stored as sorted, deduplicated item-id
//! vectors, which makes subset tests and the canonical ordering used by the
//! GCR cheap.

use std::fmt;

/// A sorted, deduplicated itemset over item codes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Itemset(Vec<u32>);

impl Itemset {
    /// Builds an itemset; the input is sorted and deduplicated.
    pub fn new(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self(items)
    }

    /// Builds from a slice.
    pub fn from_slice(items: &[u32]) -> Self {
        Self::new(items.to_vec())
    }

    /// The items, ascending.
    pub fn items(&self) -> &[u32] {
        &self.0
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty itemset.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if `item` is a member.
    pub fn contains(&self, item: u32) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Subset test against a *sorted* slice (e.g. a transaction): true if
    /// every item of `self` occurs in `sorted`. Two-pointer scan, `O(n+m)`.
    pub fn is_subset_of_sorted(&self, sorted: &[u32]) -> bool {
        let mut j = 0;
        'outer: for &x in &self.0 {
            while j < sorted.len() {
                match sorted[j].cmp(&x) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Subset test against a bitmap of item membership (words of 64 items).
    /// Items beyond the bitmap's range are absent by definition — a
    /// transaction over a smaller item universe cannot contain them — so
    /// they fail the test instead of indexing out of bounds.
    pub fn is_subset_of_bitmap(&self, words: &[u64]) -> bool {
        self.0.iter().all(|&it| {
            words
                .get((it / 64) as usize)
                .is_some_and(|w| w & (1 << (it % 64)) != 0)
        })
    }

    /// True if all of this itemset's items are drawn from `universe`
    /// (a sorted slice). Used by the focussing operator of Section 5.1,
    /// which restricts attention to itemsets over a department's items.
    pub fn within_universe(&self, universe: &[u32]) -> bool {
        self.is_subset_of_sorted(universe)
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Itemset::new(v)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Itemset) -> Itemset {
        let mut v = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    v.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Itemset(v)
    }

    /// All subsets of size `len − 1` (used by the Apriori prune step).
    pub fn proper_subsets(&self) -> Vec<Itemset> {
        (0..self.0.len())
            .map(|skip| {
                Itemset(
                    self.0
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, &x)| x)
                        .collect(),
                )
            })
            .collect()
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u32> for Itemset {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_dedups() {
        let s = Itemset::new(vec![5, 1, 3, 1]);
        assert_eq!(s.items(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn subset_of_sorted() {
        let s = Itemset::from_slice(&[2, 5]);
        assert!(s.is_subset_of_sorted(&[1, 2, 3, 5, 8]));
        assert!(!s.is_subset_of_sorted(&[1, 2, 3]));
        assert!(!s.is_subset_of_sorted(&[]));
        assert!(Itemset::new(vec![]).is_subset_of_sorted(&[]));
    }

    #[test]
    fn subset_of_bitmap() {
        let mut words = vec![0u64; 2];
        for &i in &[2u32, 65] {
            words[(i / 64) as usize] |= 1 << (i % 64);
        }
        assert!(Itemset::from_slice(&[2, 65]).is_subset_of_bitmap(&words));
        assert!(!Itemset::from_slice(&[2, 64]).is_subset_of_bitmap(&words));
    }

    #[test]
    fn subset_of_bitmap_out_of_range_items_are_absent() {
        // A 2-word bitmap covers items 0..128; items beyond that cannot be
        // present, so the test returns false instead of panicking.
        let mut words = vec![0u64; 2];
        words[0] |= 1 << 2;
        assert!(!Itemset::from_slice(&[128]).is_subset_of_bitmap(&words));
        assert!(!Itemset::from_slice(&[2, 1000]).is_subset_of_bitmap(&words));
        assert!(Itemset::new(vec![]).is_subset_of_bitmap(&[]));
        assert!(!Itemset::from_slice(&[0]).is_subset_of_bitmap(&[]));
    }

    #[test]
    fn union_intersection() {
        let a = Itemset::from_slice(&[1, 2, 3]);
        let b = Itemset::from_slice(&[3, 4]);
        assert_eq!(a.union(&b).items(), &[1, 2, 3, 4]);
        assert_eq!(a.intersection(&b).items(), &[3]);
        assert!(a.intersection(&Itemset::from_slice(&[9])).is_empty());
    }

    #[test]
    fn proper_subsets_of_triple() {
        let s = Itemset::from_slice(&[1, 2, 3]);
        let subs = s.proper_subsets();
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&Itemset::from_slice(&[2, 3])));
        assert!(subs.contains(&Itemset::from_slice(&[1, 3])));
        assert!(subs.contains(&Itemset::from_slice(&[1, 2])));
    }

    #[test]
    fn within_universe_matches_section_5_semantics() {
        // Department I1 sells items {0,1,2}; itemset {0,2} is within it,
        // itemset {2,3} is not.
        let universe = [0u32, 1, 2];
        assert!(Itemset::from_slice(&[0, 2]).within_universe(&universe));
        assert!(!Itemset::from_slice(&[2, 3]).within_universe(&universe));
    }

    #[test]
    fn display_format() {
        assert_eq!(Itemset::from_slice(&[3, 1]).to_string(), "{1,3}");
        assert_eq!(Itemset::new(vec![]).to_string(), "{}");
    }

    #[test]
    fn ordering_is_canonical() {
        let mut v = vec![
            Itemset::from_slice(&[2]),
            Itemset::from_slice(&[1, 2]),
            Itemset::from_slice(&[1]),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Itemset::from_slice(&[1]),
                Itemset::from_slice(&[1, 2]),
                Itemset::from_slice(&[2]),
            ]
        );
    }
}
