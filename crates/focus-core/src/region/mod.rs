//! Regions of the attribute space (Definition 3.1).
//!
//! A *region* is a subset of the attribute space `A(I)` identified by a
//! predicate. FOCUS works with two concrete region families:
//!
//! * [`BoxRegion`] — axis-parallel boxes (conjunctions of per-attribute
//!   interval / category-set constraints), optionally refined by a class
//!   label. Decision-tree leaves and clusters are boxes, and the overlay
//!   that forms the dt-GCR is box intersection.
//! * [`Itemset`] — a frequent itemset `X`, which identifies the region of
//!   all transactions containing `X`; its measure is the support of `X`.

mod boxr;
mod itemset;

pub use boxr::{AttrConstraint, BoxBuilder, BoxRegion, CatMask};
pub use itemset::Itemset;
