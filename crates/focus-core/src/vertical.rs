//! Eclat-style vertical tid-bitset counting (Zaki, KDD '97 lineage), with
//! a density-adaptive **diffset** (dEclat) row representation.
//!
//! The horizontal scans in [`crate::model`] re-touch every transaction for
//! every itemset: `O(rows × itemsets)` subset tests. This module stores the
//! dataset *vertically* instead — one transaction-id bitset per item — so
//! the support of an itemset is `popcount(AND of its item rows)`: word-level
//! bit operations over `ceil(n_transactions / 64)` words per item, with no
//! per-transaction branching at all.
//!
//! ## Row representations
//!
//! Each item row is stored in one of two per-item representations
//! ([`RowRepr`]):
//!
//! * **tidset** — bit `t` set iff transaction `t` contains the item (the
//!   classical Eclat layout, and what [`VerticalIndex::build`] produces
//!   for every item);
//! * **diffset** — the *complement*: bit `t` set iff transaction `t` does
//!   **not** contain the item. This is dEclat's `d(X) = t(∅) \ t(X)`
//!   against the full dataset. [`VerticalIndex::build_adaptive`] stores an
//!   item as a diffset when it is dense (support strictly above half the
//!   transactions), which keeps the stored rows sparse on dense data, and
//!   turns the intersection step into one ANDNOT against the cached
//!   prefix mask: `support(P ∪ {x}) = support(P) − |cover(P) ∩ d(x)| =
//!   popcount(mask & !d_row(x))`.
//!
//! Every counting entry point resolves the representation per item, so
//! mixed-layout indexes count `u64`-identically to all-tidset indexes and
//! to the horizontal scan — the differential suite enforces it.
//!
//! The layout is deterministic (item-major, 64-bit words, transaction `t`
//! at bit `t % 64` of word `t / 64`, bits at positions `≥ n_transactions`
//! always zero in *both* representations) and the parallel counters fan
//! out via [`focus_exec::map_reduce`] / [`focus_exec::map_indices`] with
//! exact `u64` partials — so counts are bit-identical to the sequential
//! fold for every thread count, exactly like the horizontal scans.
//!
//! Counting semantics match [`crate::model::count_itemsets_par`] case for
//! case: the empty itemset is supported by every transaction, and an item
//! outside the dataset's universe supports nothing.

use crate::data::TransactionSet;
use crate::region::Itemset;
use focus_exec::{map_indices, map_reduce, popcount_andnot_all, Parallelism, WORD_GRAIN};

/// How one item's row is stored in the bit matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowRepr {
    /// Bit `t` set iff transaction `t` contains the item.
    Tidset,
    /// Bit `t` set iff transaction `t` does **not** contain the item: the
    /// dEclat diffset against the full dataset, chosen for dense items.
    Diffset,
}

/// A CSR-invariant violation found by [`VerticalIndex::from_csr`].
///
/// The variants (and their [`std::fmt::Display`] wording) mirror the
/// invariants [`TransactionSet::from_parts`] enforces, string for string,
/// so a corrupt artifact surfaces identically on either decode path. At
/// the io seam the error converts to [`std::io::ErrorKind::InvalidData`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// The offsets column is empty or does not begin with 0.
    BadStart,
    /// The final offset does not equal the item column's length.
    Coverage {
        /// The last offset recorded in the column.
        last: usize,
        /// The actual number of items in the flat item column.
        items: usize,
    },
    /// The offsets column decreases at the given transaction.
    Decreasing {
        /// Index of the transaction whose end offset precedes its start.
        transaction: usize,
    },
    /// An item id at or beyond the declared universe size.
    ItemOutOfRange {
        /// Index of the offending transaction.
        transaction: usize,
        /// The out-of-range item id.
        item: u32,
        /// The declared universe size (valid ids are `0..n_items`).
        n_items: u32,
    },
    /// A transaction's items are not strictly increasing (the sorted +
    /// deduplicated contract).
    Unsorted {
        /// Index of the offending transaction.
        transaction: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::BadStart => write!(f, "offsets must start at 0"),
            CsrError::Coverage { last, items } => {
                write!(f, "last offset {last} does not cover the {items} items")
            }
            CsrError::Decreasing { transaction } => {
                write!(f, "offsets decrease at transaction {transaction}")
            }
            CsrError::ItemOutOfRange {
                transaction,
                item,
                n_items,
            } => write!(
                f,
                "transaction {transaction}: item {item} out of range 0..{n_items}"
            ),
            CsrError::Unsorted { transaction } => write!(
                f,
                "transaction {transaction} is not strictly increasing (sorted + deduplicated)"
            ),
        }
    }
}

impl std::error::Error for CsrError {}

impl From<CsrError> for std::io::Error {
    fn from(e: CsrError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// A vertical (item-major) tid-bitset index over a [`TransactionSet`].
///
/// Row `i` holds the membership bitset of item `i` in the representation
/// [`Self::row_repr`] reports: a tidset row sets bit `t` iff transaction
/// `t` contains item `i`; a diffset row stores the complement. All rows
/// share the same word count `ceil(n_transactions / 64)`; bits at
/// positions `≥ n_transactions` are always zero in either representation,
/// so popcounts over whole rows are exact supports (or exact
/// complement-cover sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalIndex {
    n_items: u32,
    n_transactions: usize,
    /// Words per item row: `ceil(n_transactions / 64)`.
    words: usize,
    /// Item-major bit matrix: `bits[item * words + w]`.
    bits: Vec<u64>,
    /// Per-item row representation (always `n_items` entries).
    repr: Vec<RowRepr>,
}

impl VerticalIndex {
    /// Builds the all-tidset index in one pass over `data`.
    pub fn build(data: &TransactionSet) -> Self {
        let n_items = data.n_items();
        let n_transactions = data.len();
        let words = n_transactions.div_ceil(64);
        let mut bits = vec![0u64; n_items as usize * words];
        for (t, txn) in data.iter().enumerate() {
            let (word, bit) = (t / 64, t % 64);
            for &it in txn {
                bits[it as usize * words + word] |= 1u64 << bit;
            }
        }
        Self {
            n_items,
            n_transactions,
            words,
            bits,
            repr: vec![RowRepr::Tidset; n_items as usize],
        }
    }

    /// [`Self::build`], then [`Self::into_adaptive`]: dense items (support
    /// strictly above half the transactions) are re-stored as diffset
    /// rows. Counts through the resulting mixed-layout index are
    /// bit-identical to the all-tidset index for every entry point.
    pub fn build_adaptive(data: &TransactionSet) -> Self {
        Self::build(data).into_adaptive()
    }

    /// Converts every dense row — support strictly above `n / 2`, the
    /// density crossover where the complement has fewer set bits than the
    /// cover — to the diffset representation, in place. Idempotent on an
    /// already-adaptive index (a stored diffset row of a dense item is
    /// sparse, so it stays put).
    pub fn into_adaptive(mut self) -> Self {
        let half = self.n_transactions as u64;
        for item in 0..self.n_items as usize {
            if self.repr[item] == RowRepr::Diffset {
                continue;
            }
            let start = item * self.words;
            let row = &self.bits[start..start + self.words];
            let support: u64 = row.iter().map(|w| u64::from(w.count_ones())).sum();
            if support * 2 > half {
                for w in 0..self.words {
                    let full = self.full_word(w);
                    self.bits[start + w] = !self.bits[start + w] & full;
                }
                self.repr[item] = RowRepr::Diffset;
            }
        }
        self
    }

    /// Builds the index straight from CSR parts (offsets + flat item
    /// column) without materialising a [`TransactionSet`] — the
    /// decode-to-index path used by the binary snapshot reader. The parts
    /// are validated against exactly the invariants
    /// [`TransactionSet::from_parts`] enforces, with identical error
    /// wording ([`CsrError`]'s `Display`), so a corrupt artifact surfaces
    /// the same way on either decode path; the resulting index is
    /// bit-identical to `VerticalIndex::build(&TransactionSet::from_parts(..)?)`.
    pub fn from_csr(n_items: u32, offsets: &[usize], items: &[u32]) -> Result<Self, CsrError> {
        if offsets.first() != Some(&0) {
            return Err(CsrError::BadStart);
        }
        let last = *offsets.last().expect("non-empty by the check above");
        if last != items.len() {
            return Err(CsrError::Coverage {
                last,
                items: items.len(),
            });
        }
        // Monotonicity first, over the whole array: with a non-decreasing
        // sequence ending at `items.len()`, every window then slices
        // safely below.
        for (t, w) in offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(CsrError::Decreasing { transaction: t });
            }
        }
        let n_transactions = offsets.len() - 1;
        let words = n_transactions.div_ceil(64);
        let mut bits = vec![0u64; n_items as usize * words];
        for (t, w) in offsets.windows(2).enumerate() {
            let txn = &items[w[0]..w[1]];
            if let Some(&max) = txn.last() {
                if max >= n_items {
                    return Err(CsrError::ItemOutOfRange {
                        transaction: t,
                        item: max,
                        n_items,
                    });
                }
            }
            if txn.windows(2).any(|p| p[1] <= p[0]) {
                return Err(CsrError::Unsorted { transaction: t });
            }
            let (word, bit) = (t / 64, t % 64);
            for &it in txn {
                bits[it as usize * words + word] |= 1u64 << bit;
            }
        }
        Ok(Self {
            n_items,
            n_transactions,
            words,
            bits,
            repr: vec![RowRepr::Tidset; n_items as usize],
        })
    }

    /// Size of the item universe the index was built over.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions the index was built over.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Words per item row (`ceil(n_transactions / 64)`).
    pub fn words_per_item(&self) -> usize {
        self.words
    }

    /// How `item`'s row is stored. Panics if `item` is outside the
    /// universe.
    pub fn row_repr(&self, item: u32) -> RowRepr {
        assert!(
            item < self.n_items,
            "item {item} out of range 0..{}",
            self.n_items
        );
        self.repr[item as usize]
    }

    /// Number of rows stored as diffsets (0 for a [`Self::build`] index).
    pub fn n_diffset_rows(&self) -> usize {
        self.repr.iter().filter(|r| **r == RowRepr::Diffset).count()
    }

    /// The stored bits of `item`'s row — the tid bitset for a tidset row,
    /// its complement for a diffset row (see [`Self::row_repr`]). Panics
    /// if `item` is outside the universe.
    pub fn item_bits(&self, item: u32) -> &[u64] {
        assert!(
            item < self.n_items,
            "item {item} out of range 0..{}",
            self.n_items
        );
        let start = item as usize * self.words;
        &self.bits[start..start + self.words]
    }

    /// The all-transactions mask word at position `w`: all ones, except
    /// the ragged tail of the last word, whose bits `≥ n_transactions`
    /// are zero.
    fn full_word(&self, w: usize) -> u64 {
        let tail = self.n_transactions % 64;
        if tail != 0 && w + 1 == self.words {
            (1u64 << tail) - 1
        } else {
            u64::MAX
        }
    }

    /// The all-transactions mask (the empty itemset's cover), ragged tail
    /// zeroed.
    fn full_mask(&self) -> Vec<u64> {
        (0..self.words).map(|w| self.full_word(w)).collect()
    }

    /// Support count of a single item. For a tidset row this is the
    /// popcount of the row; for a diffset row it is `n` minus the
    /// popcount of the stored complement. Items outside the universe
    /// support nothing and count 0.
    pub fn item_support(&self, item: u32) -> u64 {
        if item >= self.n_items {
            return 0;
        }
        let pop: u64 = self
            .item_bits(item)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        match self.repr[item as usize] {
            RowRepr::Tidset => pop,
            RowRepr::Diffset => self.n_transactions as u64 - pop,
        }
    }

    /// Support count of a sorted item slice: the popcount of the itemset's
    /// cover, folded over word chunks on `par` worker threads — tidset
    /// rows AND into the fold, diffset rows AND-NOT
    /// ([`focus_exec::popcount_andnot_all`]). The empty slice is the
    /// empty itemset (supported by every transaction); any item outside
    /// the universe makes the support 0.
    pub fn support_count(&self, items: &[u32], par: Parallelism) -> u64 {
        if items.is_empty() {
            return self.n_transactions as u64;
        }
        if items.iter().any(|&it| it >= self.n_items) {
            return 0;
        }
        let mut pos: Vec<&[u64]> = Vec::new();
        let mut neg: Vec<&[u64]> = Vec::new();
        for &it in items {
            match self.repr[it as usize] {
                RowRepr::Tidset => pos.push(self.item_bits(it)),
                RowRepr::Diffset => neg.push(self.item_bits(it)),
            }
        }
        if pos.is_empty() {
            // Every item is dense: base the ANDNOT fold on the
            // all-transactions mask so the ragged tail stays zeroed.
            let full = self.full_mask();
            return popcount_andnot_all(par, &[&full], &neg, WORD_GRAIN);
        }
        popcount_andnot_all(par, &pos, &neg, WORD_GRAIN)
    }

    /// Materialises the intersection of the given items' covers into
    /// `out` (resized to the row width): the fold starts from the
    /// all-transactions mask (ragged tail zeroed) and ANDs tidset rows /
    /// AND-NOTs diffset rows, so bits at positions `≥ n_transactions`
    /// stay zero regardless of representation. Returns `false` — leaving
    /// `out` all zeros — if any item is outside the universe. An empty
    /// `items` slice yields the all-transactions mask (the empty
    /// itemset's cover).
    pub fn intersect_into(&self, items: &[u32], out: &mut Vec<u64>) -> bool {
        out.clear();
        out.resize(self.words, 0u64);
        if items.iter().any(|&it| it >= self.n_items) {
            return false;
        }
        for (w, o) in out.iter_mut().enumerate() {
            *o = self.full_word(w);
        }
        for &it in items {
            let row = self.item_bits(it);
            match self.repr[it as usize] {
                RowRepr::Tidset => {
                    for (o, w) in out.iter_mut().zip(row) {
                        *o &= w;
                    }
                }
                RowRepr::Diffset => {
                    for (o, w) in out.iter_mut().zip(row) {
                        *o &= !w;
                    }
                }
            }
        }
        true
    }

    /// The number of transactions in `mask` whose transaction also
    /// contains `item`: `popcount(mask & row)` for a tidset row,
    /// `popcount(mask & !d_row)` for a diffset row — the dEclat
    /// prefix-extension step, `support(P ∪ {item}) = support(P) −
    /// |cover(P) ∩ d(item)|`, in one masked pass either way. `mask` is a
    /// cached (k−1)-prefix intersection and must have
    /// [`Self::words_per_item`] words with its ragged tail zeroed; items
    /// outside the universe count 0.
    pub fn count_with_mask(&self, mask: &[u64], item: u32) -> u64 {
        assert_eq!(mask.len(), self.words, "mask width must match the index");
        if item >= self.n_items {
            return 0;
        }
        let row = self.item_bits(item);
        match self.repr[item as usize] {
            RowRepr::Tidset => mask
                .iter()
                .zip(row)
                .map(|(m, w)| u64::from((m & w).count_ones()))
                .sum(),
            RowRepr::Diffset => mask
                .iter()
                .zip(row)
                .map(|(m, w)| u64::from((m & !w).count_ones()))
                .sum(),
        }
    }

    /// Bytes held by the index: the bit matrix (the dominant allocation)
    /// plus the one-byte-per-item representation table of the mixed
    /// layout.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8 + self.repr.len()
    }

    /// The size [`Self::build`] (or [`Self::build_adaptive`] — the mixed
    /// layout re-stores rows in place, never growing the matrix) would
    /// allocate for `data`, without building it:
    /// `n_items × ceil(n / 64) × 8` matrix bytes plus `n_items`
    /// representation-table bytes. Used by the counting cost model
    /// ([`crate::source::choose_backend`]) to refuse indexes over the
    /// index budget. Saturates at `usize::MAX` — a universe big enough to
    /// wrap the multiplication must read as "too big for the budget", not
    /// as a small wrapped product that would let the cost model wave an
    /// absurd allocation through.
    pub fn estimate_bytes(data: &TransactionSet) -> usize {
        Self::estimate_bytes_for(data.n_items(), data.len())
    }

    /// [`Self::estimate_bytes`] from the raw dimensions (saturating).
    pub fn estimate_bytes_for(n_items: u32, n_transactions: usize) -> usize {
        (n_items as usize)
            .checked_mul(n_transactions.div_ceil(64))
            .and_then(|words| words.checked_mul(8))
            .and_then(|bytes| bytes.checked_add(n_items as usize))
            .unwrap_or(usize::MAX)
    }
}

/// How an itemset is resolved by the vertical counter: without touching
/// the bit matrix, or via the word fold.
enum Resolved {
    /// The empty itemset: every transaction supports it.
    All,
    /// Contains an item outside the universe: nothing supports it.
    None,
    /// All items in range: fold the itemset's cover over word chunks.
    Fold,
}

/// Splits `itemsets` into trivially resolved counts (empty itemset → `n`,
/// out-of-range item → 0, pre-filled in the returned vector) and the slot
/// indices that need a real fold.
fn resolve_itemsets(index: &VerticalIndex, itemsets: &[Itemset]) -> (Vec<u64>, Vec<usize>) {
    let n = index.n_transactions() as u64;
    let resolved: Vec<Resolved> = itemsets
        .iter()
        .map(|s| {
            if s.is_empty() {
                Resolved::All
            } else if s.items().iter().any(|&it| it >= index.n_items()) {
                Resolved::None
            } else {
                Resolved::Fold
            }
        })
        .collect();
    let counts: Vec<u64> = resolved
        .iter()
        .map(|r| match r {
            Resolved::All => n,
            _ => 0,
        })
        .collect();
    let fold_slots: Vec<usize> = (0..itemsets.len())
        .filter(|&i| matches!(resolved[i], Resolved::Fold))
        .collect();
    (counts, fold_slots)
}

/// Counts, for each itemset, the number of supporting transactions using
/// the vertical index: the popcount of the itemset's cover (tidset rows
/// AND, diffset rows ANDNOT, on top of the all-transactions mask), with
/// the *word* range fanned out over `par` worker threads via
/// [`focus_exec::map_reduce`].
///
/// Per-chunk partial popcounts are `u64` and merge by addition in chunk
/// order, so the counts are bit-identical to the sequential fold — and to
/// [`count_itemsets_par`] — for every thread count and row
/// representation.
pub fn count_itemsets_vertical_par(
    index: &VerticalIndex,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    let (mut counts, fold_slots) = resolve_itemsets(index, itemsets);
    if fold_slots.is_empty() || index.words_per_item() == 0 {
        return counts;
    }

    let full = index.full_mask();
    let rows_per_slot: Vec<Vec<(&[u64], RowRepr)>> = fold_slots
        .iter()
        .map(|&i| {
            itemsets[i]
                .items()
                .iter()
                .map(|&it| (index.item_bits(it), index.row_repr(it)))
                .collect()
        })
        .collect();
    let folded = map_reduce(
        par,
        index.words_per_item(),
        WORD_GRAIN,
        |range| {
            let mut partial = vec![0u64; fold_slots.len()];
            for (slot, rows) in rows_per_slot.iter().enumerate() {
                let mut total = 0u64;
                for w in range.clone() {
                    let mut acc = full[w];
                    for &(row, repr) in rows {
                        acc &= match repr {
                            RowRepr::Tidset => row[w],
                            RowRepr::Diffset => !row[w],
                        };
                    }
                    total += u64::from(acc.count_ones());
                }
                partial[slot] = total;
            }
            partial
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
    .expect("words_per_item > 0");
    for (slot, &i) in fold_slots.iter().enumerate() {
        counts[i] = folded[slot];
    }
    counts
}

/// [`count_itemsets_vertical_par`] at the process-wide default parallelism.
pub fn count_itemsets_vertical(index: &VerticalIndex, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_vertical_par(index, itemsets, Parallelism::Global)
}

/// Batched prefix-run counting: sorts the workload internally (results
/// come back in the caller's order), groups consecutive itemsets of equal
/// length sharing their first `k − 1` items into runs, materialises **one
/// intersection mask per run** ([`VerticalIndex::intersect_into`]), and
/// counts every member with a single masked popcount against its last
/// item's row ([`VerticalIndex::count_with_mask`] — AND for tidset rows,
/// ANDNOT for diffset rows).
///
/// This is the same shared-`(k−1)`-prefix batching the Apriori level loop
/// uses, exposed for arbitrary workloads: a measure-extension scan over a
/// mined model's GCR pays the `(k−1)`-row fold once per sibling run
/// instead of once per itemset. Runs fan out over `par` worker threads in
/// run order and every count is an exact `u64` popcount of the same cover
/// [`count_itemsets_vertical_par`] folds, so the counts are bit-identical
/// to that ungrouped fold, to the horizontal scan, and to themselves for
/// any thread count.
pub fn count_itemsets_grouped_par(
    index: &VerticalIndex,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    let (mut counts, mut fold_slots) = resolve_itemsets(index, itemsets);
    if fold_slots.is_empty() || index.words_per_item() == 0 {
        return counts;
    }

    // Adjacency by (length, items): equal-length itemsets sharing a
    // (k−1)-prefix sort into consecutive runs. The sort is stable over
    // pre-sorted slot indices, so the run decomposition — and with it the
    // whole computation — is a pure function of the workload.
    fold_slots.sort_by(|&a, &b| {
        let (sa, sb) = (itemsets[a].items(), itemsets[b].items());
        sa.len().cmp(&sb.len()).then_with(|| sa.cmp(sb))
    });
    let prefix_of = |slot: usize| {
        let items = itemsets[slot].items();
        &items[..items.len() - 1]
    };
    let mut runs: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0;
    while start < fold_slots.len() {
        let k = itemsets[fold_slots[start]].len();
        let prefix = prefix_of(fold_slots[start]);
        let mut end = start + 1;
        while end < fold_slots.len()
            && itemsets[fold_slots[end]].len() == k
            && prefix_of(fold_slots[end]) == prefix
        {
            end += 1;
        }
        runs.push(start..end);
        start = end;
    }
    let per_run: Vec<Vec<u64>> = map_indices(par, runs.len(), |r| {
        let run = runs[r].clone();
        let mut mask = Vec::new();
        // Fold slots passed the range check wholesale, so the prefix is
        // always inside the universe and the mask is the real cover.
        index.intersect_into(prefix_of(fold_slots[run.start]), &mut mask);
        run.map(|j| {
            let items = itemsets[fold_slots[j]].items();
            index.count_with_mask(&mask, *items.last().expect("fold slots are non-empty"))
        })
        .collect()
    });
    for (run, partial) in runs.iter().zip(per_run) {
        for (j, c) in run.clone().zip(partial) {
            counts[fold_slots[j]] = c;
        }
    }
    counts
}

/// [`count_itemsets_grouped_par`] at the process-wide default parallelism.
pub fn count_itemsets_grouped(index: &VerticalIndex, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_grouped_par(index, itemsets, Parallelism::Global)
}

/// Counts itemset supports via whichever backend is profitable, as judged
/// by the deterministic cost model in [`crate::source`]: a one-shot
/// [`crate::source::CountSource`] over `data`, which builds a throwaway
/// [`VerticalIndex`] only when the workload amortises the build and the
/// index fits the process-wide budget, else falls through to the
/// horizontal [`crate::model::count_itemsets_par`]. Callers that count
/// repeatedly over the same dataset should hold their own `CountSource`
/// instead, so the index is built once and cached.
///
/// Both backends produce identical `u64` counts for every thread count —
/// the differential suite enforces this — so the dispatch heuristic can
/// never change a result, only its cost.
pub fn count_itemsets_auto_par(
    data: &TransactionSet,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    crate::source::CountSource::borrowed(data).counts(itemsets, par)
}

/// [`count_itemsets_auto_par`] at the process-wide default parallelism.
pub fn count_itemsets_auto(data: &TransactionSet, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_auto_par(data, itemsets, Parallelism::Global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_itemsets_par;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy() -> TransactionSet {
        // 4 transactions over items {0, 1} — the model.rs toy dataset.
        let mut ts = TransactionSet::new(2);
        ts.push(vec![0, 1]);
        ts.push(vec![0]);
        ts.push(vec![1]);
        ts.push(vec![0, 1]);
        ts
    }

    fn random_set(seed: u64, n: usize, n_items: u32, density: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items)
                .filter(|_| rng.gen::<f64>() < density)
                .collect();
            ts.push(t);
        }
        ts
    }

    #[test]
    fn counts_match_toy_example() {
        let ts = toy();
        let idx = VerticalIndex::build(&ts);
        let sets = vec![
            Itemset::from_slice(&[0]),
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[0, 1]),
        ];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![3, 3, 2]);
        // Both toy items are dense (support 3/4), so the adaptive index
        // stores them as diffsets — with identical counts.
        let adaptive = VerticalIndex::build_adaptive(&ts);
        assert_eq!(adaptive.n_diffset_rows(), 2);
        assert_eq!(adaptive.row_repr(0), RowRepr::Diffset);
        assert_eq!(count_itemsets_vertical(&adaptive, &sets), vec![3, 3, 2]);
        assert_eq!(count_itemsets_grouped(&adaptive, &sets), vec![3, 3, 2]);
    }

    #[test]
    fn empty_itemset_counts_every_transaction() {
        let ts = toy();
        let idx = VerticalIndex::build(&ts);
        let sets = vec![Itemset::new(vec![])];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![4]);
        assert_eq!(count_itemsets_grouped(&idx, &sets), vec![4]);
        assert_eq!(idx.support_count(&[], Parallelism::Sequential), 4);
    }

    #[test]
    fn out_of_range_items_count_zero() {
        let ts = toy();
        for idx in [
            VerticalIndex::build(&ts),
            VerticalIndex::build_adaptive(&ts),
        ] {
            let sets = vec![Itemset::from_slice(&[7]), Itemset::from_slice(&[0, 7])];
            assert_eq!(count_itemsets_vertical(&idx, &sets), vec![0, 0]);
            assert_eq!(count_itemsets_grouped(&idx, &sets), vec![0, 0]);
            assert_eq!(idx.item_support(7), 0);
            assert_eq!(idx.support_count(&[0, 7], Parallelism::Sequential), 0);
            assert_eq!(
                idx.count_with_mask(&vec![u64::MAX; idx.words_per_item()], 7),
                0
            );
        }
    }

    #[test]
    fn empty_dataset_counts_zero() {
        let ts = TransactionSet::new(5);
        let idx = VerticalIndex::build(&ts);
        assert_eq!(idx.words_per_item(), 0);
        let sets = vec![Itemset::new(vec![]), Itemset::from_slice(&[1])];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![0, 0]);
        assert_eq!(count_itemsets_grouped(&idx, &sets), vec![0, 0]);
        // An empty dataset has no dense items; adaptation is a no-op.
        assert_eq!(VerticalIndex::build_adaptive(&ts).n_diffset_rows(), 0);
    }

    #[test]
    fn ragged_tail_words_stay_zero() {
        // 129 transactions → 3 words, last word uses exactly one bit.
        let mut ts = TransactionSet::new(1);
        for _ in 0..129 {
            ts.push(vec![0]);
        }
        let idx = VerticalIndex::build(&ts);
        assert_eq!(idx.words_per_item(), 3);
        assert_eq!(idx.item_support(0), 129);
        assert_eq!(idx.item_bits(0)[2], 1, "only bit 128 set in the tail word");
        // The empty-itemset cover mask must honour the ragged tail too.
        let mut mask = Vec::new();
        assert!(idx.intersect_into(&[], &mut mask));
        assert_eq!(
            mask.iter().map(|w| w.count_ones()).sum::<u32>(),
            129,
            "all-transactions mask"
        );
        // The universally-supported item goes diffset under adaptation,
        // with an all-zero stored row — tail bits included.
        let adaptive = VerticalIndex::build_adaptive(&ts);
        assert_eq!(adaptive.row_repr(0), RowRepr::Diffset);
        assert!(adaptive.item_bits(0).iter().all(|&w| w == 0));
        assert_eq!(adaptive.item_support(0), 129);
        assert_eq!(adaptive.support_count(&[0], Parallelism::Sequential), 129);
        assert!(adaptive.intersect_into(&[0], &mut mask));
        assert_eq!(mask.iter().map(|w| w.count_ones()).sum::<u32>(), 129);
    }

    #[test]
    fn intersect_into_and_mask_extension_match_direct_counts() {
        let ts = random_set(3, 500, 12, 0.35);
        for idx in [
            VerticalIndex::build(&ts),
            VerticalIndex::build_adaptive(&ts),
        ] {
            let direct = idx.support_count(&[1, 4, 9], Parallelism::Sequential);
            let mut mask = Vec::new();
            assert!(idx.intersect_into(&[1, 4], &mut mask));
            assert_eq!(idx.count_with_mask(&mask, 9), direct);
            // Out-of-range prefix zeroes the mask.
            assert!(!idx.intersect_into(&[1, 99], &mut mask));
            assert!(mask.iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn agrees_with_horizontal_scan_on_random_data() {
        for (seed, n, n_items, density) in [
            (1u64, 300, 10u32, 0.3),
            (2, 777, 16, 0.2),
            (9, 65, 6, 0.6),
            // Dense enough that the adaptive index stores diffset rows.
            (17, 450, 8, 0.8),
        ] {
            let ts = random_set(seed, n, n_items, density);
            // Every 1- and 2-itemset, plus some larger and out-of-range ones.
            let mut sets: Vec<Itemset> = (0..n_items).map(|i| Itemset::new(vec![i])).collect();
            for a in 0..n_items {
                for b in (a + 1)..n_items {
                    sets.push(Itemset::from_slice(&[a, b]));
                }
            }
            sets.push(Itemset::new(vec![]));
            sets.push(Itemset::from_slice(&[0, 2, 4]));
            sets.push(Itemset::from_slice(&[n_items + 3]));
            let horizontal = count_itemsets_par(&ts, &sets, Parallelism::Sequential);
            for idx in [
                VerticalIndex::build(&ts),
                VerticalIndex::build_adaptive(&ts),
            ] {
                assert_eq!(count_itemsets_vertical(&idx, &sets), horizontal);
                assert_eq!(count_itemsets_grouped(&idx, &sets), horizontal);
            }
        }
    }

    #[test]
    fn adaptive_rows_follow_the_density_crossover() {
        // Item 0 in every transaction (dense), item 1 in a strict
        // majority, item 2 in exactly half, item 3 in none.
        let mut ts = TransactionSet::new(4);
        for t in 0..100 {
            let mut txn = vec![0u32];
            if t < 51 {
                txn.push(1);
            }
            if t < 50 {
                txn.push(2);
            }
            ts.push(txn);
        }
        let idx = VerticalIndex::build_adaptive(&ts);
        assert_eq!(idx.row_repr(0), RowRepr::Diffset);
        assert_eq!(idx.row_repr(1), RowRepr::Diffset);
        assert_eq!(
            idx.row_repr(2),
            RowRepr::Tidset,
            "exactly half stays tidset"
        );
        assert_eq!(idx.row_repr(3), RowRepr::Tidset);
        assert_eq!(idx.n_diffset_rows(), 2);
        // Idempotent: adapting again changes nothing.
        let again = idx.clone().into_adaptive();
        assert_eq!(again, idx);
        // Supports survive the mixed layout.
        assert_eq!(idx.item_support(0), 100);
        assert_eq!(idx.item_support(1), 51);
        assert_eq!(idx.item_support(2), 50);
        assert_eq!(idx.item_support(3), 0);
        assert_eq!(idx.support_count(&[0, 1, 2], Parallelism::Sequential), 50);
    }

    #[test]
    fn grouped_counting_shares_prefix_runs_in_any_input_order() {
        let ts = random_set(23, 400, 10, 0.4);
        let idx = VerticalIndex::build_adaptive(&ts);
        // A shuffled workload with heavy prefix sharing, duplicates, and
        // trivial cases interleaved.
        let mut sets = vec![
            Itemset::from_slice(&[0, 1, 2]),
            Itemset::from_slice(&[5]),
            Itemset::from_slice(&[0, 1, 7]),
            Itemset::new(vec![]),
            Itemset::from_slice(&[0, 1, 4]),
            Itemset::from_slice(&[2, 3]),
            Itemset::from_slice(&[0, 1, 2]),
            Itemset::from_slice(&[12]),
            Itemset::from_slice(&[2, 7]),
        ];
        let reference = count_itemsets_vertical(&idx, &sets);
        assert_eq!(count_itemsets_grouped(&idx, &sets), reference);
        // Order invariance: reversing the workload permutes the counts
        // identically.
        sets.reverse();
        let reversed = count_itemsets_grouped(&idx, &sets);
        let mut expect = reference;
        expect.reverse();
        assert_eq!(reversed, expect);
    }

    #[test]
    fn auto_dispatch_matches_horizontal_on_both_sides_of_the_gate() {
        // Small dataset (below AUTO_MIN_TRANSACTIONS) and large dataset
        // (above): identical counts either way.
        for n in [200usize, 2000] {
            let ts = random_set(11, n, 9, 0.4);
            let sets: Vec<Itemset> = (0..9u32)
                .map(|i| Itemset::from_slice(&[i]))
                .chain((0..8u32).map(|i| Itemset::from_slice(&[i, i + 1])))
                .collect();
            assert_eq!(
                count_itemsets_auto_par(&ts, &sets, Parallelism::Sequential),
                count_itemsets_par(&ts, &sets, Parallelism::Sequential),
                "n = {n}"
            );
        }
    }

    #[test]
    fn from_csr_matches_build_and_rejects_bad_parts() {
        // Well-formed CSR parts produce exactly the index `build` would.
        let ts = random_set(13, 300, 8, 0.3);
        let mut offsets = vec![0usize];
        let mut items = Vec::new();
        for txn in ts.iter() {
            items.extend_from_slice(txn);
            offsets.push(items.len());
        }
        let direct = VerticalIndex::from_csr(8, &offsets, &items).unwrap();
        assert_eq!(direct, VerticalIndex::build(&ts));
        // Every invariant violation is reported as a typed [`CsrError`]
        // whose Display wording matches `TransactionSet::from_parts`,
        // never repaired or panicked on. The bool marks cases safe to
        // cross-check against `from_parts` (an offset overshooting the
        // item column would make `from_parts` slice out of bounds before
        // its own decrease check).
        let cases: [(&[usize], &[u32], CsrError, bool); 6] = [
            (&[1, 3], &[1, 3, 5], CsrError::BadStart, true),
            (&[], &[], CsrError::BadStart, false),
            (
                &[0, 2],
                &[1, 3, 5],
                CsrError::Coverage { last: 2, items: 3 },
                true,
            ),
            (
                &[0, 2, 1, 2],
                &[1, 3],
                CsrError::Decreasing { transaction: 1 },
                true,
            ),
            (
                &[0, 1],
                &[10],
                CsrError::ItemOutOfRange {
                    transaction: 0,
                    item: 10,
                    n_items: 10,
                },
                true,
            ),
            (
                &[0, 2],
                &[3, 1],
                CsrError::Unsorted { transaction: 0 },
                true,
            ),
        ];
        for (offs, its, want, cross_check) in cases {
            let err = VerticalIndex::from_csr(10, offs, its).unwrap_err();
            assert_eq!(err, want, "{offs:?}/{its:?}");
            if cross_check {
                let same = TransactionSet::from_parts(10, offs.to_vec(), its.to_vec()).unwrap_err();
                assert_eq!(err.to_string(), same, "wording must match from_parts");
            }
        }
        // An overshooting offset (past the decrease check's reach in
        // from_parts) still reports the decrease by name.
        let err = VerticalIndex::from_csr(10, &[0, 5, 2], &[1, 3]).unwrap_err();
        assert_eq!(err, CsrError::Decreasing { transaction: 1 });
        // Empty dataset round-trips.
        let empty = VerticalIndex::from_csr(4, &[0], &[]).unwrap();
        assert_eq!(empty, VerticalIndex::build(&TransactionSet::new(4)));
    }

    #[test]
    fn csr_error_displays_and_reaches_io_as_invalid_data() {
        // Per-variant Display wording and the io-seam conversion.
        let cases: [(CsrError, &str); 5] = [
            (CsrError::BadStart, "offsets must start at 0"),
            (
                CsrError::Coverage { last: 7, items: 9 },
                "last offset 7 does not cover the 9 items",
            ),
            (
                CsrError::Decreasing { transaction: 3 },
                "offsets decrease at transaction 3",
            ),
            (
                CsrError::ItemOutOfRange {
                    transaction: 2,
                    item: 40,
                    n_items: 12,
                },
                "transaction 2: item 40 out of range 0..12",
            ),
            (
                CsrError::Unsorted { transaction: 5 },
                "transaction 5 is not strictly increasing (sorted + deduplicated)",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
            let io: std::io::Error = err.into();
            assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
            assert_eq!(io.to_string(), want, "io wrapper preserves the message");
        }
    }

    #[test]
    fn memory_accounting() {
        let ts = random_set(5, 130, 10, 0.3);
        let idx = VerticalIndex::build(&ts);
        // Bit matrix plus the per-item representation table.
        assert_eq!(idx.memory_bytes(), 10 * 3 * 8 + 10);
        assert_eq!(VerticalIndex::estimate_bytes(&ts), idx.memory_bytes());
        // Adaptation re-stores rows in place: same footprint either way.
        assert_eq!(
            VerticalIndex::build_adaptive(&ts).memory_bytes(),
            idx.memory_bytes()
        );
    }

    #[test]
    fn estimate_bytes_saturates_instead_of_wrapping() {
        // A pathological universe whose n_items × words × 8 product
        // overflows usize must read as "too big", never as a small
        // wrapped product the AUTO_MAX_INDEX_BYTES gate would accept.
        assert_eq!(
            VerticalIndex::estimate_bytes_for(u32::MAX, usize::MAX),
            usize::MAX
        );
        // Wraps in the word multiply, not just the ×8 step.
        assert_eq!(
            VerticalIndex::estimate_bytes_for(u32::MAX, usize::MAX / 2),
            usize::MAX
        );
        // Sane inputs are exact (matrix plus representation table).
        assert_eq!(VerticalIndex::estimate_bytes_for(10, 130), 10 * 3 * 8 + 10);
        assert_eq!(VerticalIndex::estimate_bytes_for(0, 1 << 40), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn item_bits_rejects_out_of_universe_items() {
        let idx = VerticalIndex::build(&toy());
        idx.item_bits(2);
    }
}
