//! Eclat-style vertical tid-bitset counting (Zaki, KDD '97 lineage).
//!
//! The horizontal scans in [`crate::model`] re-touch every transaction for
//! every itemset: `O(rows × itemsets)` subset tests. This module stores the
//! dataset *vertically* instead — one transaction-id bitset per item — so
//! the support of an itemset is `popcount(AND of its item rows)`: word-level
//! bit operations over `ceil(n_transactions / 64)` words per item, with no
//! per-transaction branching at all.
//!
//! The layout is deterministic (item-major, 64-bit words, transaction `t`
//! at bit `t % 64` of word `t / 64`) and the parallel counter fans out over
//! *word chunks* via [`focus_exec::map_reduce`], merging per-chunk `u64`
//! partials by addition — so counts are bit-identical to the sequential
//! fold for every thread count, exactly like the horizontal scans.
//!
//! Counting semantics match [`crate::model::count_itemsets_par`] case for
//! case: the empty itemset is supported by every transaction, and an item
//! outside the dataset's universe supports nothing.

use crate::data::TransactionSet;
use crate::region::Itemset;
use focus_exec::{map_reduce, popcount_and_all, Parallelism, WORD_GRAIN};

/// A vertical (item-major) tid-bitset index over a [`TransactionSet`].
///
/// Row `i` holds the membership bitset of item `i`: bit `t` is set iff
/// transaction `t` contains item `i`. All rows share the same word count
/// `ceil(n_transactions / 64)`; bits at positions `≥ n_transactions` are
/// always zero, so popcounts over whole rows are exact supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalIndex {
    n_items: u32,
    n_transactions: usize,
    /// Words per item row: `ceil(n_transactions / 64)`.
    words: usize,
    /// Item-major bit matrix: `bits[item * words + w]`.
    bits: Vec<u64>,
}

impl VerticalIndex {
    /// Builds the index in one pass over `data`.
    pub fn build(data: &TransactionSet) -> Self {
        let n_items = data.n_items();
        let n_transactions = data.len();
        let words = n_transactions.div_ceil(64);
        let mut bits = vec![0u64; n_items as usize * words];
        for (t, txn) in data.iter().enumerate() {
            let (word, bit) = (t / 64, t % 64);
            for &it in txn {
                bits[it as usize * words + word] |= 1u64 << bit;
            }
        }
        Self {
            n_items,
            n_transactions,
            words,
            bits,
        }
    }

    /// Builds the index straight from CSR parts (offsets + flat item
    /// column) without materialising a [`TransactionSet`] — the
    /// decode-to-index path used by the binary snapshot reader. The parts
    /// are validated against exactly the invariants
    /// [`TransactionSet::from_parts`] enforces, with identical error
    /// strings, so a corrupt artifact surfaces the same way on either
    /// decode path; the resulting index is bit-identical to
    /// `VerticalIndex::build(&TransactionSet::from_parts(..)?)`.
    pub fn from_csr(n_items: u32, offsets: &[usize], items: &[u32]) -> Result<Self, String> {
        if offsets.first() != Some(&0) {
            return Err("offsets must start at 0".to_string());
        }
        let last = *offsets.last().expect("non-empty by the check above");
        if last != items.len() {
            return Err(format!(
                "last offset {last} does not cover the {} items",
                items.len()
            ));
        }
        // Monotonicity first, over the whole array: with a non-decreasing
        // sequence ending at `items.len()`, every window then slices
        // safely below.
        for (t, w) in offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(format!("offsets decrease at transaction {t}"));
            }
        }
        let n_transactions = offsets.len() - 1;
        let words = n_transactions.div_ceil(64);
        let mut bits = vec![0u64; n_items as usize * words];
        for (t, w) in offsets.windows(2).enumerate() {
            let txn = &items[w[0]..w[1]];
            if let Some(&max) = txn.last() {
                if max >= n_items {
                    return Err(format!(
                        "transaction {t}: item {max} out of range 0..{n_items}"
                    ));
                }
            }
            if txn.windows(2).any(|p| p[1] <= p[0]) {
                return Err(format!(
                    "transaction {t} is not strictly increasing (sorted + deduplicated)"
                ));
            }
            let (word, bit) = (t / 64, t % 64);
            for &it in txn {
                bits[it as usize * words + word] |= 1u64 << bit;
            }
        }
        Ok(Self {
            n_items,
            n_transactions,
            words,
            bits,
        })
    }

    /// Size of the item universe the index was built over.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions the index was built over.
    pub fn n_transactions(&self) -> usize {
        self.n_transactions
    }

    /// Words per item row (`ceil(n_transactions / 64)`).
    pub fn words_per_item(&self) -> usize {
        self.words
    }

    /// The tid bitset of `item`. Panics if `item` is outside the universe.
    pub fn item_bits(&self, item: u32) -> &[u64] {
        assert!(
            item < self.n_items,
            "item {item} out of range 0..{}",
            self.n_items
        );
        let start = item as usize * self.words;
        &self.bits[start..start + self.words]
    }

    /// Support count of a single item: the popcount of its row. Items
    /// outside the universe support nothing and count 0.
    pub fn item_support(&self, item: u32) -> u64 {
        if item >= self.n_items {
            return 0;
        }
        self.item_bits(item)
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum()
    }

    /// Support count of a sorted item slice: `popcount(AND of the rows)`,
    /// folded over word chunks on `par` worker threads. The empty slice is
    /// the empty itemset (supported by every transaction); any item outside
    /// the universe makes the support 0.
    pub fn support_count(&self, items: &[u32], par: Parallelism) -> u64 {
        if items.is_empty() {
            return self.n_transactions as u64;
        }
        if items.iter().any(|&it| it >= self.n_items) {
            return 0;
        }
        let rows: Vec<&[u64]> = items.iter().map(|&it| self.item_bits(it)).collect();
        popcount_and_all(par, &rows, WORD_GRAIN)
    }

    /// Materialises the intersection of the given items' rows into `out`
    /// (resized to the row width). Returns `false` — leaving `out` all
    /// zeros — if any item is outside the universe. An empty `items` slice
    /// yields the all-transactions mask (the empty itemset's cover).
    pub fn intersect_into(&self, items: &[u32], out: &mut Vec<u64>) -> bool {
        out.clear();
        out.resize(self.words, 0u64);
        if items.iter().any(|&it| it >= self.n_items) {
            return false;
        }
        match items.split_first() {
            None => {
                // All transactions: full words, then the ragged tail.
                for w in out.iter_mut() {
                    *w = u64::MAX;
                }
                let tail = self.n_transactions % 64;
                if tail != 0 {
                    if let Some(last) = out.last_mut() {
                        *last = (1u64 << tail) - 1;
                    }
                }
            }
            Some((&first, rest)) => {
                out.copy_from_slice(self.item_bits(first));
                for &it in rest {
                    for (o, w) in out.iter_mut().zip(self.item_bits(it)) {
                        *o &= w;
                    }
                }
            }
        }
        true
    }

    /// `popcount(mask & row(item))`: the number of transactions in `mask`
    /// that also contain `item`. This is the Eclat prefix-extension step —
    /// `mask` is a cached (k−1)-prefix intersection and `item` the
    /// extension. `mask` must have [`Self::words_per_item`] words; items
    /// outside the universe count 0.
    pub fn count_with_mask(&self, mask: &[u64], item: u32) -> u64 {
        assert_eq!(mask.len(), self.words, "mask width must match the index");
        if item >= self.n_items {
            return 0;
        }
        mask.iter()
            .zip(self.item_bits(item))
            .map(|(m, w)| u64::from((m & w).count_ones()))
            .sum()
    }

    /// Bytes held by the bit matrix (the dominant allocation).
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// The bit-matrix size [`Self::build`] would allocate for `data`,
    /// without building it: `n_items × ceil(n / 64) × 8` bytes. Used by
    /// the counting cost model ([`crate::source::prefers_vertical`]) to
    /// refuse indexes over the index budget. Saturates at `usize::MAX` —
    /// a universe big enough to wrap the multiplication must read as "too
    /// big for the budget", not as a small wrapped product that would let
    /// the cost model wave an absurd allocation through.
    pub fn estimate_bytes(data: &TransactionSet) -> usize {
        Self::estimate_bytes_for(data.n_items(), data.len())
    }

    /// [`Self::estimate_bytes`] from the raw dimensions (saturating).
    pub fn estimate_bytes_for(n_items: u32, n_transactions: usize) -> usize {
        (n_items as usize)
            .checked_mul(n_transactions.div_ceil(64))
            .and_then(|words| words.checked_mul(8))
            .unwrap_or(usize::MAX)
    }
}

/// How an itemset is resolved by the vertical counter: without touching
/// the bit matrix, or via the word fold.
enum Resolved {
    /// The empty itemset: every transaction supports it.
    All,
    /// Contains an item outside the universe: nothing supports it.
    None,
    /// All items in range: fold `popcount(AND of rows)` over word chunks.
    Fold,
}

/// Counts, for each itemset, the number of supporting transactions using
/// the vertical index: `popcount(AND of item rows)`, with the *word* range
/// fanned out over `par` worker threads via [`focus_exec::map_reduce`].
///
/// Per-chunk partial popcounts are `u64` and merge by addition in chunk
/// order, so the counts are bit-identical to the sequential fold — and to
/// [`count_itemsets_par`] — for every thread count.
pub fn count_itemsets_vertical_par(
    index: &VerticalIndex,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    let n = index.n_transactions() as u64;
    let resolved: Vec<Resolved> = itemsets
        .iter()
        .map(|s| {
            if s.is_empty() {
                Resolved::All
            } else if s.items().iter().any(|&it| it >= index.n_items()) {
                Resolved::None
            } else {
                Resolved::Fold
            }
        })
        .collect();
    let mut counts: Vec<u64> = resolved
        .iter()
        .map(|r| match r {
            Resolved::All => n,
            _ => 0,
        })
        .collect();
    let fold_slots: Vec<usize> = (0..itemsets.len())
        .filter(|&i| matches!(resolved[i], Resolved::Fold))
        .collect();
    if fold_slots.is_empty() || index.words_per_item() == 0 {
        return counts;
    }

    let folded = map_reduce(
        par,
        index.words_per_item(),
        WORD_GRAIN,
        |range| {
            let mut partial = vec![0u64; fold_slots.len()];
            for (slot, &i) in fold_slots.iter().enumerate() {
                let items = itemsets[i].items();
                let first = index.item_bits(items[0]);
                let mut total = 0u64;
                for w in range.clone() {
                    let mut acc = first[w];
                    for &it in &items[1..] {
                        acc &= index.item_bits(it)[w];
                    }
                    total += u64::from(acc.count_ones());
                }
                partial[slot] = total;
            }
            partial
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
    .expect("words_per_item > 0");
    for (slot, &i) in fold_slots.iter().enumerate() {
        counts[i] = folded[slot];
    }
    counts
}

/// [`count_itemsets_vertical_par`] at the process-wide default parallelism.
pub fn count_itemsets_vertical(index: &VerticalIndex, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_vertical_par(index, itemsets, Parallelism::Global)
}

/// Counts itemset supports via whichever backend is profitable, as judged
/// by the deterministic cost model in [`crate::source`]: a one-shot
/// [`crate::source::CountSource`] over `data`, which builds a throwaway
/// [`VerticalIndex`] only when the workload amortises the build and the
/// index fits the process-wide budget, else falls through to the
/// horizontal [`crate::model::count_itemsets_par`]. Callers that count
/// repeatedly over the same dataset should hold their own `CountSource`
/// instead, so the index is built once and cached.
///
/// Both backends produce identical `u64` counts for every thread count —
/// the differential suite enforces this — so the dispatch heuristic can
/// never change a result, only its cost.
pub fn count_itemsets_auto_par(
    data: &TransactionSet,
    itemsets: &[Itemset],
    par: Parallelism,
) -> Vec<u64> {
    crate::source::CountSource::borrowed(data).counts(itemsets, par)
}

/// [`count_itemsets_auto_par`] at the process-wide default parallelism.
pub fn count_itemsets_auto(data: &TransactionSet, itemsets: &[Itemset]) -> Vec<u64> {
    count_itemsets_auto_par(data, itemsets, Parallelism::Global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::count_itemsets_par;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy() -> TransactionSet {
        // 4 transactions over items {0, 1} — the model.rs toy dataset.
        let mut ts = TransactionSet::new(2);
        ts.push(vec![0, 1]);
        ts.push(vec![0]);
        ts.push(vec![1]);
        ts.push(vec![0, 1]);
        ts
    }

    fn random_set(seed: u64, n: usize, n_items: u32, density: f64) -> TransactionSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = TransactionSet::new(n_items);
        for _ in 0..n {
            let t: Vec<u32> = (0..n_items)
                .filter(|_| rng.gen::<f64>() < density)
                .collect();
            ts.push(t);
        }
        ts
    }

    #[test]
    fn counts_match_toy_example() {
        let ts = toy();
        let idx = VerticalIndex::build(&ts);
        let sets = vec![
            Itemset::from_slice(&[0]),
            Itemset::from_slice(&[1]),
            Itemset::from_slice(&[0, 1]),
        ];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![3, 3, 2]);
    }

    #[test]
    fn empty_itemset_counts_every_transaction() {
        let ts = toy();
        let idx = VerticalIndex::build(&ts);
        let sets = vec![Itemset::new(vec![])];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![4]);
        assert_eq!(idx.support_count(&[], Parallelism::Sequential), 4);
    }

    #[test]
    fn out_of_range_items_count_zero() {
        let ts = toy();
        let idx = VerticalIndex::build(&ts);
        let sets = vec![Itemset::from_slice(&[7]), Itemset::from_slice(&[0, 7])];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![0, 0]);
        assert_eq!(idx.item_support(7), 0);
        assert_eq!(idx.support_count(&[0, 7], Parallelism::Sequential), 0);
        assert_eq!(
            idx.count_with_mask(&vec![u64::MAX; idx.words_per_item()], 7),
            0
        );
    }

    #[test]
    fn empty_dataset_counts_zero() {
        let ts = TransactionSet::new(5);
        let idx = VerticalIndex::build(&ts);
        assert_eq!(idx.words_per_item(), 0);
        let sets = vec![Itemset::new(vec![]), Itemset::from_slice(&[1])];
        assert_eq!(count_itemsets_vertical(&idx, &sets), vec![0, 0]);
    }

    #[test]
    fn ragged_tail_words_stay_zero() {
        // 129 transactions → 3 words, last word uses exactly one bit.
        let mut ts = TransactionSet::new(1);
        for _ in 0..129 {
            ts.push(vec![0]);
        }
        let idx = VerticalIndex::build(&ts);
        assert_eq!(idx.words_per_item(), 3);
        assert_eq!(idx.item_support(0), 129);
        assert_eq!(idx.item_bits(0)[2], 1, "only bit 128 set in the tail word");
        // The empty-itemset cover mask must honour the ragged tail too.
        let mut mask = Vec::new();
        assert!(idx.intersect_into(&[], &mut mask));
        assert_eq!(
            mask.iter().map(|w| w.count_ones()).sum::<u32>(),
            129,
            "all-transactions mask"
        );
    }

    #[test]
    fn intersect_into_and_mask_extension_match_direct_counts() {
        let ts = random_set(3, 500, 12, 0.35);
        let idx = VerticalIndex::build(&ts);
        let direct = idx.support_count(&[1, 4, 9], Parallelism::Sequential);
        let mut mask = Vec::new();
        assert!(idx.intersect_into(&[1, 4], &mut mask));
        assert_eq!(idx.count_with_mask(&mask, 9), direct);
        // Out-of-range prefix zeroes the mask.
        assert!(!idx.intersect_into(&[1, 99], &mut mask));
        assert!(mask.iter().all(|&w| w == 0));
    }

    #[test]
    fn agrees_with_horizontal_scan_on_random_data() {
        for (seed, n, n_items, density) in
            [(1u64, 300, 10u32, 0.3), (2, 777, 16, 0.2), (9, 65, 6, 0.6)]
        {
            let ts = random_set(seed, n, n_items, density);
            let idx = VerticalIndex::build(&ts);
            // Every 1- and 2-itemset, plus some larger and out-of-range ones.
            let mut sets: Vec<Itemset> = (0..n_items).map(|i| Itemset::new(vec![i])).collect();
            for a in 0..n_items {
                for b in (a + 1)..n_items {
                    sets.push(Itemset::from_slice(&[a, b]));
                }
            }
            sets.push(Itemset::new(vec![]));
            sets.push(Itemset::from_slice(&[0, 2, 4]));
            sets.push(Itemset::from_slice(&[n_items + 3]));
            let horizontal = count_itemsets_par(&ts, &sets, Parallelism::Sequential);
            assert_eq!(count_itemsets_vertical(&idx, &sets), horizontal);
        }
    }

    #[test]
    fn auto_dispatch_matches_horizontal_on_both_sides_of_the_gate() {
        // Small dataset (below AUTO_MIN_TRANSACTIONS) and large dataset
        // (above): identical counts either way.
        for n in [200usize, 2000] {
            let ts = random_set(11, n, 9, 0.4);
            let sets: Vec<Itemset> = (0..9u32)
                .map(|i| Itemset::from_slice(&[i]))
                .chain((0..8u32).map(|i| Itemset::from_slice(&[i, i + 1])))
                .collect();
            assert_eq!(
                count_itemsets_auto_par(&ts, &sets, Parallelism::Sequential),
                count_itemsets_par(&ts, &sets, Parallelism::Sequential),
                "n = {n}"
            );
        }
    }

    #[test]
    fn from_csr_matches_build_and_rejects_bad_parts() {
        // Well-formed CSR parts produce exactly the index `build` would.
        let ts = random_set(13, 300, 8, 0.3);
        let mut offsets = vec![0usize];
        let mut items = Vec::new();
        for txn in ts.iter() {
            items.extend_from_slice(txn);
            offsets.push(items.len());
        }
        let direct = VerticalIndex::from_csr(8, &offsets, &items).unwrap();
        assert_eq!(direct, VerticalIndex::build(&ts));
        // Every invariant violation is reported with the same wording as
        // `TransactionSet::from_parts`, never repaired or panicked on.
        // The bool marks cases safe to cross-check against `from_parts`
        // (an offset overshooting the item column would make `from_parts`
        // slice out of bounds before its own decrease check).
        let cases: [(&[usize], &[u32], &str, bool); 6] = [
            (&[1, 3], &[1, 3, 5], "offsets must start at 0", true),
            (&[0, 2], &[1, 3, 5], "does not cover", true),
            (
                &[0, 2, 1, 2],
                &[1, 3],
                "offsets decrease at transaction 1",
                true,
            ),
            (
                &[0, 5, 2],
                &[1, 3],
                "offsets decrease at transaction 1",
                false,
            ),
            (&[0, 1], &[10], "out of range", true),
            (&[0, 2], &[3, 1], "not strictly increasing", true),
        ];
        for (offs, its, want, cross_check) in cases {
            let err = VerticalIndex::from_csr(10, offs, its).unwrap_err();
            assert!(err.contains(want), "{offs:?}/{its:?}: {err}");
            if cross_check {
                let same = TransactionSet::from_parts(10, offs.to_vec(), its.to_vec()).unwrap_err();
                assert_eq!(err, same, "wording must match from_parts");
            }
        }
        // Empty dataset round-trips.
        let empty = VerticalIndex::from_csr(4, &[0], &[]).unwrap();
        assert_eq!(empty, VerticalIndex::build(&TransactionSet::new(4)));
    }

    #[test]
    fn memory_accounting() {
        let ts = random_set(5, 130, 10, 0.3);
        let idx = VerticalIndex::build(&ts);
        assert_eq!(idx.memory_bytes(), 10 * 3 * 8);
        assert_eq!(VerticalIndex::estimate_bytes(&ts), idx.memory_bytes());
    }

    #[test]
    fn estimate_bytes_saturates_instead_of_wrapping() {
        // A pathological universe whose n_items × words × 8 product
        // overflows usize must read as "too big", never as a small
        // wrapped product the AUTO_MAX_INDEX_BYTES gate would accept.
        assert_eq!(
            VerticalIndex::estimate_bytes_for(u32::MAX, usize::MAX),
            usize::MAX
        );
        // Wraps in the word multiply, not just the ×8 step.
        assert_eq!(
            VerticalIndex::estimate_bytes_for(u32::MAX, usize::MAX / 2),
            usize::MAX
        );
        // Sane inputs are exact.
        assert_eq!(VerticalIndex::estimate_bytes_for(10, 130), 10 * 3 * 8);
        assert_eq!(VerticalIndex::estimate_bytes_for(0, 1 << 40), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn item_bits_rejects_out_of_universe_items() {
        let idx = VerticalIndex::build(&toy());
        idx.item_bits(2);
    }
}
