//! Criterion bench B3: CART construction cost versus dataset size and the
//! dt deviation (overlay + two scans) cost — the per-replicate price of the
//! Figure 14 bootstrap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::deviation::dt_deviation;
use focus_core::diff::{AggFn, DiffFn};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_tree::{DecisionTree, TreeParams};
use std::hint::black_box;

fn params(n: usize) -> TreeParams {
    TreeParams::default()
        .max_depth(10)
        .min_leaf((n / 200).max(5))
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("cart");
    for &n in &[2_000usize, 10_000] {
        let data = ClassifyGen::new(ClassifyFn::F2).generate(n, 3);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, &n| {
            b.iter(|| black_box(DecisionTree::fit(&data, params(n))))
        });
    }
    // dt deviation between two fitted models.
    let n = 10_000;
    let d1 = ClassifyGen::new(ClassifyFn::F1).generate(n, 5);
    let d2 = ClassifyGen::new(ClassifyFn::F3).generate(n, 6);
    let m1 = DecisionTree::fit(&d1, params(n)).to_model();
    let m2 = DecisionTree::fit(&d2, params(n)).to_model();
    group.bench_function("dt_deviation_10k", |b| {
        b.iter(|| black_box(dt_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value))
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
