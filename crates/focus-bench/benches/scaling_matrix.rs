//! Criterion bench B8: thread-count scaling of the snapshot-collection
//! deviation-matrix engine (Section 4.1.1's exploratory loop).
//!
//! Three screening regimes over the same 8-snapshot collection:
//!
//! * `bounds_only` — threshold `+∞`: phase 1 alone, the model-only δ*
//!   sweep (the "Time for δ*" column of Figure 13);
//! * `screened` — a mid-range threshold: realistic mixed workload, some
//!   pairs pruned, some scanned;
//! * `full_scan` — negative threshold: every pair pays the exact
//!   two-dataset scan (the `δ` column).
//!
//! Results are bit-identical across the sweep (enforced by
//! `tests/parallel_equiv.rs`); only the wall clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::data::TransactionSet;
use focus_core::model::LitsModel;
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_exec::Parallelism;
use focus_mining::{Apriori, AprioriParams};
use focus_registry::{deviation_matrix_par, MatrixParams};
use std::hint::black_box;

/// The thread counts the scaling sweep visits.
const THREADS: [usize; 4] = [1, 2, 3, 4];

/// An 8-snapshot collection drawn from two generating processes, so the
/// bound spectrum splits into near pairs (same process) and far pairs.
fn collection() -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
    let miner = Apriori::new(AprioriParams::with_minsup(0.02).max_len(10));
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..8u64 {
        let pattern_seed = 1 + (i % 2) * 8;
        let gen = AssocGen::new(AssocGenParams::paper(500, 4.0), pattern_seed);
        datasets.push(gen.generate(4_000, 100 + i));
        names.push(format!("snap-{i}"));
    }
    let models = datasets.iter().map(|d| miner.mine(d)).collect();
    (models, datasets, names)
}

fn bench_scaling_matrix(c: &mut Criterion) {
    let (models, datasets, names) = collection();

    // A threshold between the intra- and inter-process bound levels, so
    // the screened regime genuinely prunes: use the median pair bound.
    let probe = deviation_matrix_par(
        &models,
        &datasets,
        names.clone(),
        &MatrixParams {
            threshold: f64::INFINITY,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        },
    );
    let mut bounds: Vec<f64> = (0..probe.len())
        .flat_map(|i| ((i + 1)..probe.len()).map(move |j| (i, j)))
        .map(|(i, j)| probe.bound(i, j))
        .collect();
    bounds.sort_by(f64::total_cmp);
    let mid = bounds[bounds.len() / 2];

    let mut group = c.benchmark_group("scaling_matrix");
    group.sample_size(10);
    for t in THREADS {
        let par = Parallelism::Threads(t);
        for (regime, threshold) in [
            ("bounds_only", f64::INFINITY),
            ("screened", mid),
            ("full_scan", -1.0),
        ] {
            let params = MatrixParams {
                threshold,
                par,
                ..MatrixParams::default()
            };
            group.bench_with_input(BenchmarkId::new(regime, t), &params, |b, params| {
                b.iter(|| {
                    black_box(deviation_matrix_par(
                        &models,
                        &datasets,
                        names.clone(),
                        params,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_matrix);
criterion_main!(benches);
