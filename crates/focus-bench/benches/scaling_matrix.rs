//! Criterion bench B8: thread-count scaling of the snapshot-collection
//! deviation-matrix engine (Section 4.1.1's exploratory loop), across all
//! three model families of the generic engine — every family now carries
//! a model-only δ* bound, so every group exercises the screened path.
//!
//! Three screening regimes over the same 8-snapshot lits collection:
//!
//! * `bounds_only` — threshold `+∞`: phase 1 alone, the model-only δ*
//!   sweep (the "Time for δ*" column of Figure 13);
//! * `screened` — a mid-range threshold: realistic mixed workload, some
//!   pairs pruned, some scanned;
//! * `full_scan` — `--top` set to the pair count: every pair pays the
//!   exact two-dataset scan (the `δ` column).
//!
//! The `dt` group runs the same regimes over decision-tree snapshots
//! built the way retraining pipelines produce them — a per-process split
//! skeleton refreshed with each day's measures — so the leaf-mass bound
//! is tight within a process and saturates across processes, and the
//! screened regime genuinely prunes. The `cluster` group does the same
//! with shared cluster boxes per process (centroid-mass/box-overlap
//! bound); its bound is not a metric, but screening is unaffected.
//!
//! Results are bit-identical across the sweep (enforced by
//! `tests/parallel_equiv.rs`); only the wall clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::data::{LabeledTable, Schema, Table, TransactionSet, Value};
use focus_core::family::{ClusterFamily, DtFamily, LitsFamily, ModelFamily};
use focus_core::model::{induce_dt_measures, ClusterModel, DtModel, LitsModel};
use focus_core::region::{BoxBuilder, BoxRegion};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_exec::Parallelism;
use focus_mining::{Apriori, AprioriParams};
use focus_registry::{deviation_matrix_par, DeviationMatrix, MatrixParams};
use focus_tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

/// The thread counts the scaling sweep visits.
const THREADS: [usize; 4] = [1, 2, 3, 4];

/// An 8-snapshot collection drawn from two generating processes, so the
/// bound spectrum splits into near pairs (same process) and far pairs.
fn collection() -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
    let miner = Apriori::new(AprioriParams::with_minsup(0.02).max_len(10));
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..8u64 {
        let pattern_seed = 1 + (i % 2) * 8;
        let gen = AssocGen::new(AssocGenParams::paper(500, 4.0), pattern_seed);
        datasets.push(gen.generate(4_000, 100 + i));
        names.push(format!("snap-{i}"));
    }
    let models = datasets.iter().map(|d| miner.mine(d)).collect();
    (models, datasets, names)
}

/// A 6-snapshot dt collection over two Agrawal functions. One split
/// skeleton is fitted per function and re-measured on each day's data —
/// the retraining pattern that makes the leaf-mass δ* bound informative:
/// matched leaves pair up within a function, nothing matches across.
fn dt_collection() -> (Vec<DtModel>, Vec<LabeledTable>, Vec<String>) {
    let params = TreeParams::default().max_depth(6).min_leaf(20);
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..6u64 {
        let function = if i % 2 == 0 {
            ClassifyFn::F2
        } else {
            ClassifyFn::F5
        };
        datasets.push(ClassifyGen::new(function).generate(4_000, 200 + i));
        names.push(format!("dt-{i}"));
    }
    let skeletons: Vec<Vec<BoxRegion>> = (0..2)
        .map(|f| {
            DecisionTree::fit(&datasets[f], params)
                .to_model()
                .leaves()
                .to_vec()
        })
        .collect();
    let models = datasets
        .iter()
        .enumerate()
        .map(|(i, d)| induce_dt_measures(skeletons[i % 2].clone(), d))
        .collect();
    (models, datasets, names)
}

/// A 6-snapshot cluster collection over two generating processes in
/// disjoint spans, with one shared set of cluster boxes per process and
/// per-day selectivity measures (the bound's dominance contract).
fn cluster_collection() -> (Vec<ClusterModel>, Vec<Table>, Vec<String>) {
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let boxes = |spans: &[(f64, f64)]| -> Vec<BoxRegion> {
        spans
            .iter()
            .map(|&(lo, hi)| BoxBuilder::new(&schema).range("x", lo, hi).build())
            .collect()
    };
    let process_boxes = [
        boxes(&[(0.0, 30.0), (50.0, 80.0)]),
        boxes(&[(100.0, 130.0), (150.0, 180.0)]),
    ];
    let mut datasets = Vec::new();
    let mut models = Vec::new();
    let mut names = Vec::new();
    for i in 0..6u64 {
        let shift = (i % 2) as f64 * 100.0;
        let mut rng = StdRng::seed_from_u64(300 + i);
        let mut t = Table::new(Arc::clone(&schema));
        for _ in 0..4_000 {
            t.push_row(&[Value::Num(shift + rng.gen::<f64>() * 90.0)]);
        }
        let bx = &process_boxes[(i % 2) as usize];
        let measures: Vec<f64> = bx
            .iter()
            .map(|b| t.rows().filter(|r| b.contains(r)).count() as f64 / t.len() as f64)
            .collect();
        models.push(ClusterModel::new(bx.clone(), measures, t.len() as u64));
        datasets.push(t);
        names.push(format!("cl-{i}"));
    }
    (models, datasets, names)
}

/// The median pair bound of a collection — a threshold between the
/// intra- and inter-process bound levels, so screening genuinely prunes.
fn median_bound(probe: &DeviationMatrix) -> f64 {
    let mut bounds: Vec<f64> = (0..probe.len())
        .flat_map(|i| ((i + 1)..probe.len()).map(move |j| (i, j)))
        .map(|(i, j)| probe.bound(i, j))
        .collect();
    bounds.sort_by(f64::total_cmp);
    bounds[bounds.len() / 2]
}

fn bench_family<F: ModelFamily>(
    c: &mut Criterion,
    group_name: &str,
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: &[String],
) where
    F::Model: Sync,
    F::Dataset: Sync,
{
    let probe = deviation_matrix_par::<F>(
        models,
        datasets,
        names.to_vec(),
        &MatrixParams {
            threshold: f64::INFINITY,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        },
    )
    .expect("valid params");
    let n_pairs = probe.n_pairs();
    let mid = median_bound(&probe);

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for t in THREADS {
        let par = Parallelism::Threads(t);
        for (regime, threshold, top) in [
            ("bounds_only", f64::INFINITY, None),
            ("screened", mid, None),
            ("full_scan", 0.0, Some(n_pairs)),
        ] {
            let params = MatrixParams {
                threshold,
                top,
                par,
                ..MatrixParams::default()
            };
            group.bench_with_input(BenchmarkId::new(regime, t), &params, |b, params| {
                b.iter(|| {
                    black_box(
                        deviation_matrix_par::<F>(models, datasets, names.to_vec(), params)
                            .expect("valid params"),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_scaling_matrix(c: &mut Criterion) {
    let (models, datasets, names) = collection();
    bench_family::<LitsFamily>(c, "scaling_matrix", &models, &datasets, &names);

    let (dt_models, dt_datasets, dt_names) = dt_collection();
    bench_family::<DtFamily>(c, "scaling_matrix_dt", &dt_models, &dt_datasets, &dt_names);

    let (cl_models, cl_datasets, cl_names) = cluster_collection();
    bench_family::<ClusterFamily>(
        c,
        "scaling_matrix_cluster",
        &cl_models,
        &cl_datasets,
        &cl_names,
    );
}

criterion_group!(benches, bench_scaling_matrix);
criterion_main!(benches);
