//! Criterion bench B8: thread-count scaling of the snapshot-collection
//! deviation-matrix engine (Section 4.1.1's exploratory loop), for both a
//! screenable (lits) and a boundless (dt) family of the generic engine.
//!
//! Three screening regimes over the same 8-snapshot lits collection:
//!
//! * `bounds_only` — threshold `+∞`: phase 1 alone, the model-only δ*
//!   sweep (the "Time for δ*" column of Figure 13);
//! * `screened` — a mid-range threshold: realistic mixed workload, some
//!   pairs pruned, some scanned;
//! * `full_scan` — `--top` set to the pair count: every pair pays the
//!   exact two-dataset scan (the `δ` column).
//!
//! The `dt` group runs the same engine over decision-tree snapshots —
//! no model-only bound exists there, so every pair is an exact overlay
//! scan and the group exercises the generic engine's boundless path.
//!
//! Results are bit-identical across the sweep (enforced by
//! `tests/parallel_equiv.rs`); only the wall clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::data::{LabeledTable, TransactionSet};
use focus_core::family::{DtFamily, LitsFamily};
use focus_core::model::{DtModel, LitsModel};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_exec::Parallelism;
use focus_mining::{Apriori, AprioriParams};
use focus_registry::{deviation_matrix_par, MatrixParams};
use focus_tree::{DecisionTree, TreeParams};
use std::hint::black_box;

/// The thread counts the scaling sweep visits.
const THREADS: [usize; 4] = [1, 2, 3, 4];

/// An 8-snapshot collection drawn from two generating processes, so the
/// bound spectrum splits into near pairs (same process) and far pairs.
fn collection() -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
    let miner = Apriori::new(AprioriParams::with_minsup(0.02).max_len(10));
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..8u64 {
        let pattern_seed = 1 + (i % 2) * 8;
        let gen = AssocGen::new(AssocGenParams::paper(500, 4.0), pattern_seed);
        datasets.push(gen.generate(4_000, 100 + i));
        names.push(format!("snap-{i}"));
    }
    let models = datasets.iter().map(|d| miner.mine(d)).collect();
    (models, datasets, names)
}

/// A 6-snapshot dt collection over two Agrawal functions, fitted trees.
fn dt_collection() -> (Vec<DtModel>, Vec<LabeledTable>, Vec<String>) {
    let params = TreeParams::default().max_depth(6).min_leaf(20);
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..6u64 {
        let function = if i % 2 == 0 {
            ClassifyFn::F2
        } else {
            ClassifyFn::F5
        };
        datasets.push(ClassifyGen::new(function).generate(4_000, 200 + i));
        names.push(format!("dt-{i}"));
    }
    let models = datasets
        .iter()
        .map(|d| DecisionTree::fit(d, params).to_model())
        .collect();
    (models, datasets, names)
}

fn bench_scaling_matrix(c: &mut Criterion) {
    let (models, datasets, names) = collection();

    // A threshold between the intra- and inter-process bound levels, so
    // the screened regime genuinely prunes: use the median pair bound.
    let probe = deviation_matrix_par::<LitsFamily>(
        &models,
        &datasets,
        names.clone(),
        &MatrixParams {
            threshold: f64::INFINITY,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        },
    )
    .expect("valid params");
    let n_pairs = probe.n_pairs();
    let mut bounds: Vec<f64> = (0..probe.len())
        .flat_map(|i| ((i + 1)..probe.len()).map(move |j| (i, j)))
        .map(|(i, j)| probe.bound(i, j))
        .collect();
    bounds.sort_by(f64::total_cmp);
    let mid = bounds[bounds.len() / 2];

    let mut group = c.benchmark_group("scaling_matrix");
    group.sample_size(10);
    for t in THREADS {
        let par = Parallelism::Threads(t);
        for (regime, threshold, top) in [
            ("bounds_only", f64::INFINITY, None),
            ("screened", mid, None),
            ("full_scan", 0.0, Some(n_pairs)),
        ] {
            let params = MatrixParams {
                threshold,
                top,
                par,
                ..MatrixParams::default()
            };
            group.bench_with_input(BenchmarkId::new(regime, t), &params, |b, params| {
                b.iter(|| {
                    black_box(
                        deviation_matrix_par::<LitsFamily>(
                            &models,
                            &datasets,
                            names.clone(),
                            params,
                        )
                        .expect("valid params"),
                    )
                })
            });
        }
    }
    group.finish();

    // The boundless path of the generic engine: dt snapshots, every pair
    // an exact overlay scan.
    let (dt_models, dt_datasets, dt_names) = dt_collection();
    let mut group = c.benchmark_group("scaling_matrix_dt");
    group.sample_size(10);
    for t in THREADS {
        let params = MatrixParams {
            par: Parallelism::Threads(t),
            ..MatrixParams::default()
        };
        group.bench_with_input(BenchmarkId::new("full_scan", t), &params, |b, params| {
            b.iter(|| {
                black_box(
                    deviation_matrix_par::<DtFamily>(
                        &dt_models,
                        &dt_datasets,
                        dt_names.clone(),
                        params,
                    )
                    .expect("valid params"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_matrix);
criterion_main!(benches);
