//! Criterion bench B1: exact deviation δ (one scan of both datasets) versus
//! the scan-free upper bound δ* — the "Time for δ" / "Time for δ*" columns
//! of Figure 13. Expect several orders of magnitude between them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::bound::lits_upper_bound;
use focus_core::deviation::lits_deviation;
use focus_core::diff::{AggFn, DiffFn};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_mining::{Apriori, AprioriParams};
use std::hint::black_box;

fn bench_delta_vs_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lits_deviation");
    for &n in &[2_000usize, 10_000] {
        let g1 = AssocGen::new(AssocGenParams::paper(1000, 4.0), 1);
        let g2 = AssocGen::new(AssocGenParams::paper(1200, 4.0), 2);
        let d1 = g1.generate(n, 3);
        let d2 = g2.generate(n, 4);
        let miner = Apriori::new(AprioriParams::with_minsup(0.01).max_len(10));
        let m1 = miner.mine(&d1);
        let m2 = miner.mine(&d2);

        group.bench_with_input(BenchmarkId::new("delta_exact", n), &n, |b, _| {
            b.iter(|| {
                black_box(lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value)
            })
        });
        group.bench_with_input(BenchmarkId::new("delta_star_bound", n), &n, |b, _| {
            b.iter(|| black_box(lits_upper_bound(&m1, &m2, AggFn::Sum)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta_vs_bound);
criterion_main!(benches);
