//! Criterion bench B6: clustering substrates — BIRCH (one CF-tree pass +
//! agglomerative merge) versus k-means (k-means++ + Lloyd) on blob data,
//! plus the cluster-model deviation (overlay-with-remainders GCR).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_cluster::{Birch, BirchParams, KMeans, KMeansParams};
use focus_core::data::{Schema, Table, Value};
use focus_core::deviation::cluster_deviation;
use focus_core::diff::{AggFn, DiffFn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn blobs(n_per: usize, centers: &[(f64, f64)], seed: u64) -> Table {
    let schema = Arc::new(Schema::new(vec![
        Schema::numeric("x"),
        Schema::numeric("y"),
    ]));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(schema);
    for &(cx, cy) in centers {
        for _ in 0..n_per {
            t.push_row(&[
                Value::Num(cx + rng.gen::<f64>() * 8.0),
                Value::Num(cy + rng.gen::<f64>() * 8.0),
            ]);
        }
    }
    t
}

fn bench_clustering(c: &mut Criterion) {
    let centers = [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)];
    let mut group = c.benchmark_group("clustering");
    for &n_per in &[500usize, 2_000] {
        let data = blobs(n_per, &centers, 1);
        group.bench_with_input(BenchmarkId::new("kmeans_k4", n_per * 4), &data, |b, d| {
            b.iter(|| black_box(KMeans::new(KMeansParams::new(4).seed(2)).fit(d)))
        });
        group.bench_with_input(BenchmarkId::new("birch_k4", n_per * 4), &data, |b, d| {
            b.iter(|| black_box(Birch::new(BirchParams::new(4.0, 4)).fit(d)))
        });
    }
    // Cluster-model deviation (GCR with remainders).
    let d1 = blobs(1_000, &centers, 3);
    let d2 = blobs(
        1_000,
        &[(5.0, 5.0), (55.0, 5.0), (5.0, 55.0), (55.0, 55.0)],
        4,
    );
    let m1 = KMeans::new(KMeansParams::new(4).seed(5))
        .fit(&d1)
        .to_model(&d1);
    let m2 = KMeans::new(KMeansParams::new(4).seed(6))
        .fit(&d2)
        .to_model(&d2);
    group.bench_function("cluster_deviation_4x4", |b| {
        b.iter(|| {
            black_box(cluster_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
