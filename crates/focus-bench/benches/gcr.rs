//! Criterion bench B4: greatest-common-refinement construction cost —
//! itemset-family union (lits) and leaf-partition overlay (dt) — the pure
//! structural work of Definition 3.6, without the dataset scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::gcr::{gcr_lits, gcr_partition};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_mining::{Apriori, AprioriParams};
use focus_tree::{DecisionTree, TreeParams};
use std::hint::black_box;

fn bench_gcr(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcr");

    // lits: union of two mined itemset families.
    let g1 = AssocGen::new(AssocGenParams::paper(2000, 4.0), 1);
    let g2 = AssocGen::new(AssocGenParams::paper(2500, 4.0), 2);
    let miner = Apriori::new(AprioriParams::with_minsup(0.01).max_len(10));
    let m1 = miner.mine(&g1.generate(5_000, 3));
    let m2 = miner.mine(&g2.generate(5_000, 4));
    group.bench_function(
        BenchmarkId::new("lits_union", format!("{}x{}", m1.len(), m2.len())),
        |b| b.iter(|| black_box(gcr_lits(m1.itemsets(), m2.itemsets()))),
    );

    // dt: overlay of two leaf partitions.
    for &n in &[2_000usize, 10_000] {
        let d1 = ClassifyGen::new(ClassifyFn::F2).generate(n, 5);
        let d2 = ClassifyGen::new(ClassifyFn::F4).generate(n, 6);
        let p = TreeParams::default()
            .max_depth(10)
            .min_leaf((n / 200).max(5));
        let t1 = DecisionTree::fit(&d1, p).to_model();
        let t2 = DecisionTree::fit(&d2, p).to_model();
        group.bench_with_input(
            BenchmarkId::new(
                "dt_overlay",
                format!("{}x{}_leaves", t1.leaves().len(), t2.leaves().len()),
            ),
            &n,
            |b, _| b.iter(|| black_box(gcr_partition(t1.leaves(), t2.leaves()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gcr);
criterion_main!(benches);
