//! Criterion bench B7: thread-count scaling of the parallel execution
//! engine — the three chunked dataset scans (itemset counting, partition
//! routing, box counting), the bootstrap per-replicate fan-out, and the
//! model-induction hot paths (decision-tree fitting, k-means Lloyd
//! iterations, monitor calibration), each at `--threads 1..=4`. Results
//! are bit-identical across the sweep (enforced by
//! `tests/parallel_equiv.rs`); only the wall clock should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_cluster::{KMeans, KMeansParams};
use focus_core::deviation::lits_deviation_par;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::model::{count_boxes_par, count_itemsets_par, count_partition_par};
use focus_core::qualify::qualify_transactions_par;
use focus_core::region::BoxBuilder;
use focus_core::stream::calibrate_threshold_par;
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_exec::Parallelism;
use focus_mining::{Apriori, AprioriParams};
use focus_tree::{DecisionTree, TreeParams};
use std::hint::black_box;

/// The thread counts the scaling sweep visits.
const THREADS: [usize; 4] = [1, 2, 3, 4];

fn bench_scaling(c: &mut Criterion) {
    let gen = AssocGen::new(AssocGenParams::paper(2000, 4.0), 3);
    let txns = gen.generate(20_000, 5);
    let model = Apriori::new(AprioriParams::with_minsup(0.01).max_len(10)).mine(&txns);
    let itemsets = model.itemsets().to_vec();

    let labeled = ClassifyGen::new(ClassifyFn::F2).generate(20_000, 7);
    let schema = labeled.table.schema().clone();
    let leaves = vec![
        BoxBuilder::new(&schema).lt("age", 40.0).build(),
        BoxBuilder::new(&schema).range("age", 40.0, 60.0).build(),
        BoxBuilder::new(&schema).ge("age", 60.0).build(),
    ];
    let boxes: Vec<_> = leaves.clone();

    let mut group = c.benchmark_group("scaling");
    for t in THREADS {
        let par = Parallelism::Threads(t);
        group.bench_with_input(BenchmarkId::new("count_itemsets", t), &par, |b, &par| {
            b.iter(|| black_box(count_itemsets_par(&txns, &itemsets, par)))
        });
        group.bench_with_input(BenchmarkId::new("count_partition", t), &par, |b, &par| {
            b.iter(|| black_box(count_partition_par(&labeled, &leaves, 2, par)))
        });
        group.bench_with_input(BenchmarkId::new("count_boxes", t), &par, |b, &par| {
            b.iter(|| black_box(count_boxes_par(&labeled.table, &boxes, par)))
        });
    }
    group.finish();

    // Bootstrap fan-out: each replicate re-mines both pseudo-datasets, so
    // this is the paper's full qualification pipeline (Section 3.4) under
    // the per-replicate fan-out. Smaller data keeps the bench short.
    let d1 = gen.generate(2_000, 11);
    let d2 = gen.generate(2_000, 12);
    let miner = Apriori::new(
        AprioriParams::with_minsup(0.02)
            .max_len(10)
            .min_count_floor(3),
    );
    let pipeline = |a: &focus_core::data::TransactionSet, b: &focus_core::data::TransactionSet| {
        let ma = miner.mine(a);
        let mb = miner.mine(b);
        lits_deviation_par(
            &ma,
            a,
            &mb,
            b,
            DiffFn::Absolute,
            AggFn::Sum,
            Parallelism::Sequential,
        )
        .value
    };
    let observed = pipeline(&d1, &d2);
    let mut group = c.benchmark_group("scaling_bootstrap");
    for t in THREADS {
        let par = Parallelism::Threads(t);
        group.bench_with_input(BenchmarkId::new("qualify", t), &par, |b, &par| {
            b.iter(|| {
                black_box(qualify_transactions_par(
                    &d1, &d2, observed, 8, 42, par, pipeline,
                ))
            })
        });
    }
    group.finish();

    // Model induction: greedy tree building (parallel split search +
    // sibling-subtree forks) and k-means Lloyd iterations (parallel
    // assignment + fixed-order centroid folds).
    let mut group = c.benchmark_group("scaling_induction");
    let km = KMeans::new(KMeansParams::new(8).seed(3).max_iters(25));
    for t in THREADS {
        let par = Parallelism::Threads(t);
        group.bench_with_input(BenchmarkId::new("dt_fit", t), &par, |b, &par| {
            b.iter(|| {
                black_box(DecisionTree::fit_par(
                    &labeled,
                    TreeParams::default().max_depth(8).min_leaf(20),
                    par,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("kmeans_fit", t), &par, |b, &par| {
            b.iter(|| black_box(km.fit_par(&labeled.table, par)))
        });
    }
    group.finish();

    // Monitor calibration: one full mine-and-deviate pipeline per
    // replicate, replicates fanned out with per-replicate seeds.
    let reference = gen.generate(2_000, 21);
    let cal_pipeline = |a: &focus_core::data::TransactionSet,
                        b: &focus_core::data::TransactionSet| {
        let ma = miner.mine(a);
        let mb = miner.mine(b);
        lits_deviation_par(
            &ma,
            a,
            &mb,
            b,
            DiffFn::Absolute,
            AggFn::Sum,
            Parallelism::Sequential,
        )
        .value
    };
    let mut group = c.benchmark_group("scaling_calibration");
    for t in THREADS {
        let par = Parallelism::Threads(t);
        group.bench_with_input(BenchmarkId::new("calibrate", t), &par, |b, &par| {
            b.iter(|| {
                black_box(calibrate_threshold_par(
                    &reference,
                    500,
                    0.95,
                    12,
                    9,
                    par,
                    &cal_pipeline,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
