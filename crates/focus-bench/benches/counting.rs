//! Criterion bench B5: support-counting backends — the prefix-guided DFS
//! used by the miner versus the classical hash tree of the original
//! Apriori paper, and the bitmap counter used for GCR measure extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_core::model::count_itemsets;
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_mining::{Apriori, AprioriParams, HashTree};
use std::hint::black_box;

fn bench_counting(c: &mut Criterion) {
    let gen = AssocGen::new(AssocGenParams::paper(2000, 4.0), 3);
    let data = gen.generate(5_000, 5);
    let model = Apriori::new(AprioriParams::with_minsup(0.008).max_len(10)).mine(&data);
    // Count the frequent pairs (usually the largest level).
    let pairs: Vec<Vec<u32>> = model
        .itemsets()
        .iter()
        .filter(|s| s.len() == 2)
        .map(|s| s.items().to_vec())
        .collect();
    let mut group = c.benchmark_group("counting");
    group.bench_with_input(
        BenchmarkId::new("hash_tree", pairs.len()),
        &pairs,
        |b, pairs| {
            let tree = HashTree::build(pairs, 2);
            b.iter(|| black_box(tree.count(data.iter())))
        },
    );
    let itemsets: Vec<focus_core::region::Itemset> = pairs
        .iter()
        .map(|p| focus_core::region::Itemset::from_slice(p))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("bitmap_scan", itemsets.len()),
        &itemsets,
        |b, sets| b.iter(|| black_box(count_itemsets(&data, sets))),
    );
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
