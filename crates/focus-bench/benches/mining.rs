//! Criterion bench B2: Apriori throughput versus minimum support on the
//! paper's association workload — the model-construction cost that the
//! deviation pipeline (and every bootstrap replicate) pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_mining::{Apriori, AprioriParams};
use std::hint::black_box;

fn bench_apriori(c: &mut Criterion) {
    let gen = AssocGen::new(AssocGenParams::paper(2000, 4.0), 7);
    let data = gen.generate(5_000, 11);
    let mut group = c.benchmark_group("apriori");
    for &minsup in &[0.02, 0.01, 0.006] {
        group.bench_with_input(
            BenchmarkId::new("mine_5k_txns", format!("minsup_{minsup}")),
            &minsup,
            |b, &ms| {
                b.iter(|| {
                    black_box(Apriori::new(AprioriParams::with_minsup(ms).max_len(10)).mine(&data))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apriori);
criterion_main!(benches);
