//! Snapshot collections for the deviation-matrix experiments — one per
//! model family, each drawn from **two generating processes** so the pair
//! bounds split into a near (intra-process) and a far (inter-process)
//! level and a mid-range threshold genuinely prunes.
//!
//! Shared between the `scaling_matrix` criterion bench and the
//! `matrix_baseline` binary that records `BENCH_matrix.json`.

use focus_core::data::{LabeledTable, Schema, Table, TransactionSet, Value};
use focus_core::model::{induce_dt_measures, ClusterModel, DtModel, LitsModel};
use focus_core::region::{BoxBuilder, BoxRegion};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_mining::{Apriori, AprioriParams};
use focus_registry::DeviationMatrix;
use focus_tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// An 8-snapshot lits collection (4000 transactions each) over two
/// pattern processes, mined at 2% minsup.
pub fn lits_collection() -> (Vec<LitsModel>, Vec<TransactionSet>, Vec<String>) {
    let miner = Apriori::new(AprioriParams::with_minsup(0.02).max_len(10));
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..8u64 {
        let pattern_seed = 1 + (i % 2) * 8;
        let gen = AssocGen::new(AssocGenParams::paper(500, 4.0), pattern_seed);
        datasets.push(gen.generate(4_000, 100 + i));
        names.push(format!("snap-{i}"));
    }
    let models = datasets.iter().map(|d| miner.mine(d)).collect();
    (models, datasets, names)
}

/// A 6-snapshot dt collection over two Agrawal functions. One split
/// skeleton is fitted per function and re-measured on each day's data —
/// the retraining pattern that makes the leaf-mass δ* bound informative:
/// matched leaves pair up within a function, nothing matches across.
pub fn dt_collection() -> (Vec<DtModel>, Vec<LabeledTable>, Vec<String>) {
    let params = TreeParams::default().max_depth(6).min_leaf(20);
    let mut datasets = Vec::new();
    let mut names = Vec::new();
    for i in 0..6u64 {
        let function = if i % 2 == 0 {
            ClassifyFn::F2
        } else {
            ClassifyFn::F5
        };
        datasets.push(ClassifyGen::new(function).generate(4_000, 200 + i));
        names.push(format!("dt-{i}"));
    }
    let skeletons: Vec<Vec<BoxRegion>> = (0..2)
        .map(|f| {
            DecisionTree::fit(&datasets[f], params)
                .to_model()
                .leaves()
                .to_vec()
        })
        .collect();
    let models = datasets
        .iter()
        .enumerate()
        .map(|(i, d)| induce_dt_measures(skeletons[i % 2].clone(), d))
        .collect();
    (models, datasets, names)
}

/// A 6-snapshot cluster collection over two generating processes in
/// disjoint spans, with one shared set of cluster boxes per process and
/// per-day selectivity measures (the bound's dominance contract).
pub fn cluster_collection() -> (Vec<ClusterModel>, Vec<Table>, Vec<String>) {
    let schema = Arc::new(Schema::new(vec![Schema::numeric("x")]));
    let boxes = |spans: &[(f64, f64)]| -> Vec<BoxRegion> {
        spans
            .iter()
            .map(|&(lo, hi)| BoxBuilder::new(&schema).range("x", lo, hi).build())
            .collect()
    };
    let process_boxes = [
        boxes(&[(0.0, 30.0), (50.0, 80.0)]),
        boxes(&[(100.0, 130.0), (150.0, 180.0)]),
    ];
    let mut datasets = Vec::new();
    let mut models = Vec::new();
    let mut names = Vec::new();
    for i in 0..6u64 {
        let shift = (i % 2) as f64 * 100.0;
        let mut rng = StdRng::seed_from_u64(300 + i);
        let mut t = Table::new(Arc::clone(&schema));
        for _ in 0..4_000 {
            t.push_row(&[Value::Num(shift + rng.gen::<f64>() * 90.0)]);
        }
        let bx = &process_boxes[(i % 2) as usize];
        let measures: Vec<f64> = bx
            .iter()
            .map(|b| t.rows().filter(|r| b.contains(r)).count() as f64 / t.len() as f64)
            .collect();
        models.push(ClusterModel::new(bx.clone(), measures, t.len() as u64));
        datasets.push(t);
        names.push(format!("cl-{i}"));
    }
    (models, datasets, names)
}

/// The median pair bound of a collection — a threshold between the
/// intra- and inter-process bound levels, so screening genuinely prunes.
pub fn median_bound(probe: &DeviationMatrix) -> f64 {
    let mut bounds: Vec<f64> = (0..probe.len())
        .flat_map(|i| ((i + 1)..probe.len()).map(move |j| (i, j)))
        .map(|(i, j)| probe.bound(i, j))
        .collect();
    bounds.sort_by(f64::total_cmp);
    bounds[bounds.len() / 2]
}
