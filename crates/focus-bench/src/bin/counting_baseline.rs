//! **Counting baseline** — itemset-support counting backends compared at
//! three sparse dataset scales plus a dense scale, recorded PR-over-PR in
//! `BENCH_counting.json`:
//!
//! ```text
//! cargo run --release -p focus-bench --bin counting_baseline -- --threads 4 > BENCH_counting.json
//! ```
//!
//! Per scale the binary generates a dataset, mines its frequent itemsets
//! once (the realistic counting workload: the measure extension re-counts
//! a model's itemsets against another dataset), and times the ways of
//! counting every itemset's support:
//!
//! * `bitmap_scan` — the horizontal `count_itemsets_par` scan (one
//!   membership bitmap per transaction, subset test per itemset);
//! * `hash_tree`   — per-level hash trees probed per transaction,
//!   tree build included;
//! * `vertical`    — the Eclat-style tid-bitset index of
//!   `focus_core::vertical`, **index build included**, counting each
//!   itemset with its own word fold;
//! * `diffset`     — the density-adaptive dEclat index
//!   (`VerticalIndex::build_adaptive`, build included; dense items store
//!   complement rows) counted through the batched prefix-run path, i.e.
//!   the adaptive tier exactly as the counting-source layer ships it;
//! * `extend_batched` — the warm measure-extension scan: one batched
//!   prefix-run pass over the prebuilt adaptive index (build excluded),
//!   the per-call cost `family.rs`'s `extend_supports` pays once a
//!   source's cache is hot.
//!
//! A further pair of rows measures **index reuse** — the matrix-run
//! regime, where the same snapshot is re-counted once per surviving
//! pair:
//!
//! * `vertical_rebuild_x4` — four scans, each rebuilding the index from
//!   scratch (the per-pair-load behaviour before the counting-source
//!   layer);
//! * `source_cached_x4` — four scans through one shared
//!   [`focus_core::source::CountSource`] handle, which builds its index
//!   lazily at most once and serves the remaining scans from the cache
//!   (through the batched prefix-run path).
//!
//! For the reuse rows `speedup_vs_bitmap` compares against four
//! horizontal scans — the bitmap cost of the same workload.
//!
//! The sparse scales use the paper's association generator; the `dense`
//! scale is an independent-Bernoulli dataset at 0.7 fill over 32 items —
//! past the diffset density crossover, so the adaptive index genuinely
//! stores complement rows and the mined workload (triples at minsup 0.3)
//! has deep shared prefixes for the batched path.
//!
//! All backends must (and are asserted to) produce identical `u64`
//! counts. Each regime runs `--samples` times; the recorded time is the
//! minimum. One JSON object per (scale, backend) lands on stdout — with
//! `threads` and `commit` machine-context fields — and the human table
//! goes to stderr.

use focus_bench::{git_commit, timed, ExpConfig};
use focus_core::data::TransactionSet;
use focus_core::model::count_itemsets_par;
use focus_core::region::Itemset;
use focus_core::source::{CountSource, DEFAULT_INDEX_BUDGET};
use focus_core::vertical::{
    count_itemsets_grouped_par, count_itemsets_vertical_par, VerticalIndex,
};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_exec::Parallelism;
use focus_mining::{Apriori, AprioriParams, HashTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scans per reuse row — stands in for a matrix run's repeated re-counts
/// of one snapshot (one per surviving pair).
const REUSE_SCANS: usize = 4;

struct Row {
    scale: &'static str,
    transactions: usize,
    itemsets: usize,
    backend: &'static str,
    secs: f64,
    speedup_vs_bitmap: f64,
}

/// Counts every itemset through per-level hash trees (the classical
/// backend handles one candidate length per tree), reassembling counts in
/// itemset order. Tree builds are part of the measured work.
fn hash_tree_counts(data: &TransactionSet, itemsets: &[Itemset], par: Parallelism) -> Vec<u64> {
    let mut counts = vec![0u64; itemsets.len()];
    let max_k = itemsets.iter().map(|s| s.len()).max().unwrap_or(0);
    for k in 1..=max_k {
        let slots: Vec<usize> = (0..itemsets.len())
            .filter(|&i| itemsets[i].len() == k)
            .collect();
        if slots.is_empty() {
            continue;
        }
        let level: Vec<Vec<u32>> = slots
            .iter()
            .map(|&i| itemsets[i].items().to_vec())
            .collect();
        let tree = HashTree::build(&level, k);
        for (&slot, c) in slots.iter().zip(tree.count_set(data, par)) {
            counts[slot] = c;
        }
    }
    counts
}

/// Runs one backend `samples` times, checks every run against the
/// reference counts, and returns the minimum elapsed seconds.
fn best_of(samples: usize, reference: &[u64], mut run: impl FnMut() -> Vec<u64>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let (counts, secs) = timed(&mut run);
        assert_eq!(counts, reference, "counting backends disagree");
        best = best.min(secs);
    }
    best
}

/// An independent-Bernoulli dense dataset: every item present with the
/// given probability, past the diffset density crossover.
fn dense_transactions(n: usize, n_items: u32, density: f64, seed: u64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = TransactionSet::new(n_items);
    for _ in 0..n {
        let t: Vec<u32> = (0..n_items)
            .filter(|_| rng.gen::<f64>() < density)
            .collect();
        data.push(t);
    }
    data
}

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let par = Parallelism::Global;
    let base = cfg.rows(250_000);
    let threads = par.threads();
    let commit = git_commit();
    let mut rows = Vec::new();

    // (scale, dataset, mining params): the sparse scales carry the
    // paper-shaped association workload; the dense scale sits past the
    // diffset crossover with a triple-heavy mined workload.
    let scales: Vec<(&'static str, TransactionSet, AprioriParams)> = vec![
        ("small", AprioriParams::with_minsup(0.01), base),
        ("medium", AprioriParams::with_minsup(0.01), base * 4),
        ("large", AprioriParams::with_minsup(0.01), base * 16),
    ]
    .into_iter()
    .map(|(scale, params, n)| {
        let gen = AssocGen::new(AssocGenParams::paper(500, 4.0), cfg.seed);
        (
            scale,
            gen.generate(n, cfg.seed + 1),
            params.max_len(10).min_count_floor(2),
        )
    })
    .chain(std::iter::once((
        "dense",
        dense_transactions(base * 16, 32, 0.7, cfg.seed + 7),
        AprioriParams::with_minsup(0.3)
            .max_len(4)
            .min_count_floor(2),
    )))
    .collect();

    for (scale, data, mine_params) in scales {
        // The realistic workload: a mined model's itemsets, re-counted the
        // way the measure-extension step re-counts them against a second
        // dataset.
        let model = Apriori::new(mine_params).mine(&data);
        let itemsets = model.itemsets().to_vec();
        let reference = count_itemsets_par(&data, &itemsets, par);

        let bitmap_secs = best_of(cfg.samples, &reference, || {
            count_itemsets_par(&data, &itemsets, par)
        });
        let hash_secs = best_of(cfg.samples, &reference, || {
            hash_tree_counts(&data, &itemsets, par)
        });
        let vertical_secs = best_of(cfg.samples, &reference, || {
            let index = VerticalIndex::build(&data);
            count_itemsets_vertical_par(&index, &itemsets, par)
        });
        // The adaptive dEclat tier, cold: adaptive build + batched
        // prefix-run counting — what a cold CountSource pays when the
        // cost model picks the diffset layout.
        let diffset_secs = best_of(cfg.samples, &reference, || {
            let index = VerticalIndex::build_adaptive(&data);
            count_itemsets_grouped_par(&index, &itemsets, par)
        });
        // The warm measure-extension scan: batched counting over the
        // prebuilt adaptive index, build excluded.
        let warm_index = VerticalIndex::build_adaptive(&data);
        let extend_secs = best_of(cfg.samples, &reference, || {
            count_itemsets_grouped_par(&warm_index, &itemsets, par)
        });

        // Reuse regime: the same itemsets re-counted REUSE_SCANS times,
        // once rebuilding the index per scan, once through a shared
        // CountSource whose cache pays the build exactly once.
        let rebuild_secs = best_of(cfg.samples, &reference, || {
            let mut counts = Vec::new();
            for _ in 0..REUSE_SCANS {
                let index = VerticalIndex::build(&data);
                counts = count_itemsets_vertical_par(&index, &itemsets, par);
            }
            counts
        });
        let cached_secs = best_of(cfg.samples, &reference, || {
            let source = CountSource::borrowed(&data).with_index_budget(DEFAULT_INDEX_BUDGET);
            let mut counts = Vec::new();
            for _ in 0..REUSE_SCANS {
                counts = source.counts(&itemsets, par);
            }
            counts
        });

        for (backend, secs, one_scan_bitmap) in [
            ("bitmap_scan", bitmap_secs, 1),
            ("hash_tree", hash_secs, 1),
            ("vertical", vertical_secs, 1),
            ("diffset", diffset_secs, 1),
            ("extend_batched", extend_secs, 1),
            ("vertical_rebuild_x4", rebuild_secs, REUSE_SCANS),
            ("source_cached_x4", cached_secs, REUSE_SCANS),
        ] {
            rows.push(Row {
                scale,
                transactions: data.len(),
                itemsets: itemsets.len(),
                backend,
                secs,
                speedup_vs_bitmap: bitmap_secs * one_scan_bitmap as f64 / secs,
            });
        }
    }

    // JSON lines to stdout (the `BENCH_counting.json` payload), the human
    // table to stderr so a redirect stays machine-readable.
    eprintln!(
        "{:>7}  {:>12}  {:>8}  {:>18}  {:>10}  {:>8}",
        "Scale", "Transactions", "Itemsets", "Backend", "Best s", "Speedup"
    );
    for r in &rows {
        println!(
            "{{\"bench\":\"counting\",\"scale\":\"{}\",\"transactions\":{},\"itemsets\":{},\
             \"backend\":\"{}\",\"secs\":{:.6},\"speedup_vs_bitmap\":{:.2},\
             \"threads\":{},\"commit\":\"{}\"}}",
            r.scale,
            r.transactions,
            r.itemsets,
            r.backend,
            r.secs,
            r.speedup_vs_bitmap,
            threads,
            commit
        );
        eprintln!(
            "{:>7}  {:>12}  {:>8}  {:>18}  {:>10.4}  {:>7.2}x",
            r.scale, r.transactions, r.itemsets, r.backend, r.secs, r.speedup_vs_bitmap
        );
    }
}
