//! **Figures 10–12** — dt-models: sample deviation (SD) versus sample
//! fraction (SF).
//!
//! One figure per dataset size — 1M, 0.75M, 0.5M tuples (scaled by
//! `--scale`) — each with four curves for classification functions F1–F4,
//! all using `δ(f_a, g_sum)`. Each printed point is the mean SD over
//! `--samples` draws.
//!
//! Expected shape: SD decreases with SF, with diminishing returns past
//! SF ≈ 0.2–0.3; absolute SD values are an order of magnitude below the
//! lits curves (the dt structural component is far coarser).

use focus_bench::runner::{dt_sd_sets, SAMPLE_FRACTIONS};
use focus_bench::{fmt, print_table, ExpConfig};
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_stats::describe::mean;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let sizes = [
        (1_000_000usize, "Figure 10"),
        (750_000, "Figure 11"),
        (500_000, "Figure 12"),
    ];
    let functions = [
        ClassifyFn::F1,
        ClassifyFn::F2,
        ClassifyFn::F3,
        ClassifyFn::F4,
    ];

    for (paper_rows, figure) in sizes {
        let n = cfg.rows(paper_rows);
        eprintln!(
            "# {figure}: {n} tuples, mean SD over {} samples",
            cfg.samples
        );
        let mut curves: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        for f in functions {
            let data = ClassifyGen::new(f).generate(n, cfg.seed ^ paper_rows as u64);
            let sets = dt_sd_sets(&data, &SAMPLE_FRACTIONS, cfg.samples, cfg.seed);
            curves.push((
                f.name(),
                sets.iter().map(|(sf, v)| (*sf, mean(v))).collect(),
            ));
        }
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, &sf) in SAMPLE_FRACTIONS.iter().enumerate() {
            let mut row = vec![format!("{sf}")];
            for (_, curve) in &curves {
                row.push(fmt(curve[i].1));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("SF".to_string())
            .chain(curves.iter().map(|(name, _)| format!("f_a,g_sum:{name}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!("== {figure}: SD vs SF, {} tuples ==", n);
        print_table(&header_refs, &rows);
        println!();

        if cfg.json {
            for (name, curve) in &curves {
                for (sf, sd) in curve {
                    println!(
                        "{{\"figure\":\"{figure}\",\"function\":\"{name}\",\"sf\":{sf},\"sd\":{sd}}}"
                    );
                }
            }
        }
    }
}
