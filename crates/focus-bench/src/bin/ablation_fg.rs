//! **Ablation A1** — all four (difference, aggregate) combinations on the
//! Figure 13 workload.
//!
//! The paper presents `δ(f_a, g_sum)` results and notes the other three
//! combinations behave consistently (relegating their plots to the full
//! version). This ablation sweeps `f ∈ {f_a, f_s}` × `g ∈ {sum, max}` over
//! the same dataset family so the orderings can be compared: all four
//! instantiations must agree on *which* datasets drift (the paper's claim
//! that FOCUS is robust to the choice of f and g), even though their
//! absolute scales differ wildly.

use focus_bench::runner::mine;
use focus_bench::{fmt, print_table, ExpConfig};
use focus_core::data::TransactionSet;
use focus_core::deviation::lits_deviation;
use focus_core::diff::{AggFn, DiffFn};
use focus_data::assoc::{AssocGen, AssocGenParams};

const MINSUP: f64 = 0.01;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let n = cfg.base_rows();
    let base_gen = AssocGen::new(AssocGenParams::paper(4000, 4.0), cfg.seed);
    let d = base_gen.generate(n, cfg.seed ^ 0xD);
    eprintln!("# Ablation: f × g sweep on the Figure 13 family ({n} transactions)");

    let processes = [
        AssocGenParams::paper(6000, 4.0),
        AssocGenParams::paper(4000, 5.0),
        AssocGenParams::paper(5000, 5.0),
    ];
    let mut family: Vec<(String, TransactionSet)> = Vec::new();
    family.push(("D(1)".into(), base_gen.generate(n / 2, cfg.seed ^ 0x11)));
    for (i, p) in processes.iter().enumerate() {
        let g = AssocGen::new(*p, cfg.seed.wrapping_add(100 + i as u64));
        family.push((
            format!("D({})", i + 2),
            g.generate(n, cfg.seed ^ (0x22 + i as u64)),
        ));
    }

    let combos: [(&str, DiffFn, AggFn); 4] = [
        ("f_a,g_sum", DiffFn::Absolute, AggFn::Sum),
        ("f_a,g_max", DiffFn::Absolute, AggFn::Max),
        ("f_s,g_sum", DiffFn::Scaled, AggFn::Sum),
        ("f_s,g_max", DiffFn::Scaled, AggFn::Max),
    ];

    let m_d = mine(&d, MINSUP);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); combos.len()];
    for (label, other) in &family {
        let m_o = mine(other, MINSUP);
        let mut row = vec![label.clone()];
        for (c, (_, f, g)) in combos.iter().enumerate() {
            let dev = lits_deviation(&m_d, &d, &m_o, other, *f, *g).value;
            columns[c].push(dev);
            row.push(fmt(dev));
            if cfg.json {
                println!(
                    "{{\"ablation\":\"fg\",\"dataset\":\"{label}\",\"combo\":\"{}\",\"delta\":{dev}}}",
                    combos[c].0
                );
            }
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("Dataset")
        .chain(combos.iter().map(|(n, _, _)| *n))
        .collect();
    print_table(&headers, &rows);

    // Sanity summary: does every combination rank the same-process control
    // D(1) lowest?
    let all_rank_control_lowest = columns
        .iter()
        .all(|col| col[0] <= col[1..].iter().cloned().fold(f64::INFINITY, f64::min) + 1e-12);
    println!(
        "\nAll four (f,g) combinations rank the same-process dataset D(1) lowest: {}",
        all_rank_control_lowest
    );
}
