//! **Ablation A3** — width of the bootstrap null versus dataset scale.
//!
//! Context: Figure 14's appended-block rows (`D+δ(5)`…`(7)`) carry a fixed
//! deviation signal of ≈0.05 (5% foreign rows), while the bootstrap null —
//! deviations between two same-process resamples — *narrows* as the
//! dataset grows. The paper (at 1M rows) reports those rows as 99%
//! significant; scaled-down runs do not. This ablation measures the null's
//! median and 99th percentile across scales so the crossover point is an
//! observable, not an article of faith.
//!
//! Prints, per scale: |D|, null q50, null q99, the fixed block signal, and
//! whether the signal clears the q99 alarm line.

use focus_bench::runner::fit_dt;
use focus_bench::{fmt, print_table, ExpConfig};

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    run(cfg);
}

fn run(cfg: ExpConfig) {
    use focus_core::deviation::dt_deviation;
    use focus_core::diff::{AggFn, DiffFn};
    use focus_data::classify::{ClassifyFn, ClassifyGen};

    let scales = [0.02, 0.05, 0.1, 0.2];
    eprintln!(
        "# Ablation: bootstrap-null width vs scale ({} reps per scale)",
        cfg.reps.max(9)
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for scale in scales {
        let n = (1_000_000.0 * scale) as usize;
        let d = ClassifyGen::new(ClassifyFn::F1).generate(n, cfg.seed);
        let block = ClassifyGen::new(ClassifyFn::F3).generate(n / 20, cfg.seed ^ 1);
        let d_plus = d.concat(&block);

        // Observed block signal.
        let m_d = fit_dt(&d);
        let m_plus = fit_dt(&d_plus);
        let signal = dt_deviation(&m_d, &d, &m_plus, &d_plus, DiffFn::Absolute, AggFn::Sum).value;

        // Null: deviations between two same-process resamples of the pool.
        let reps = cfg.reps.max(9);
        let q =
            focus_core::qualify::qualify_tables(&d, &d_plus, signal, reps, cfg.seed ^ 2, |a, b| {
                let ma = fit_dt(a);
                let mb = fit_dt(b);
                dt_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
            });
        let q50 = focus_stats::describe::percentile(&q.null_distribution, 50.0);
        let q99 = focus_stats::describe::percentile(&q.null_distribution, 99.0);
        rows.push(vec![
            format!("{n}"),
            fmt(q50),
            fmt(q99),
            fmt(signal),
            (signal > q99).to_string(),
        ]);
        if cfg.json {
            println!(
                "{{\"ablation\":\"null\",\"n\":{n},\"q50\":{q50},\"q99\":{q99},\"signal\":{signal}}}"
            );
        }
    }
    print_table(
        &[
            "|D|",
            "null q50",
            "null q99",
            "block signal δ",
            "significant",
        ],
        &rows,
    );
    println!(
        "\nThe null narrows with |D| while the 5%-block signal stays ≈ constant;\n\
         the paper's 1M-row setting sits past the crossover."
    );
}
