//! **Matrix baseline** — screened vs full-scan deviation-matrix timings
//! for all three model families, recorded PR-over-PR in
//! `BENCH_matrix.json`:
//!
//! ```text
//! cargo run --release -p focus-bench --bin matrix_baseline -- --threads 4 > BENCH_matrix.json
//! ```
//!
//! One JSON object per (family, regime) lands on stdout; the human table
//! goes to stderr. Per family the binary builds the two-process snapshot
//! collection of `focus_bench::collections`, picks the median pair bound
//! as the screening threshold, and times
//!
//! * `full_scan` — threshold 0: every pair pays the exact GCR scan;
//! * `screened` — median threshold: δ* bounds first, exact scans only
//!   for the surviving pairs.
//!
//! Each regime runs `--samples` times (default 15); the recorded time is
//! the minimum (the usual low-noise estimator for a deterministic
//! computation). The prune fraction is exact and sample-independent:
//! screening decisions are deterministic and bit-identical across thread
//! counts.

use focus_bench::collections::{cluster_collection, dt_collection, lits_collection, median_bound};
use focus_bench::{timed, ExpConfig};
use focus_core::family::ModelFamily;
use focus_exec::Parallelism;
use focus_registry::{deviation_matrix_par, DeviationMatrix, MatrixParams};

struct Row {
    family: &'static str,
    regime: &'static str,
    threshold: f64,
    scanned: usize,
    pruned: usize,
    n_pairs: usize,
    secs: f64,
}

fn run_family<F: ModelFamily>(
    family: &'static str,
    models: &[F::Model],
    datasets: &[F::Dataset],
    names: &[String],
    samples: usize,
    rows: &mut Vec<Row>,
) where
    F::Model: Sync,
    F::Dataset: Sync,
{
    let probe = deviation_matrix_par::<F>(
        models,
        datasets,
        names.to_vec(),
        &MatrixParams {
            threshold: f64::INFINITY,
            par: Parallelism::Sequential,
            ..MatrixParams::default()
        },
    )
    .expect("valid params");
    let mid = median_bound(&probe);

    for (regime, threshold) in [("full_scan", 0.0), ("screened", mid)] {
        let params = MatrixParams {
            threshold,
            par: Parallelism::Global,
            ..MatrixParams::default()
        };
        let mut best: Option<(DeviationMatrix, f64)> = None;
        for _ in 0..samples {
            let (m, secs) = timed(|| {
                deviation_matrix_par::<F>(models, datasets, names.to_vec(), &params)
                    .expect("valid params")
            });
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                best = Some((m, secs));
            }
        }
        let (m, secs) = best.expect("samples >= 2");
        rows.push(Row {
            family,
            regime,
            threshold,
            scanned: m.scanned(),
            pruned: m.pruned(),
            n_pairs: m.n_pairs(),
            secs,
        });
    }
}

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let mut rows = Vec::new();

    let (models, datasets, names) = lits_collection();
    run_family::<focus_core::family::LitsFamily>(
        "lits",
        &models,
        &datasets,
        &names,
        cfg.samples,
        &mut rows,
    );
    let (models, datasets, names) = dt_collection();
    run_family::<focus_core::family::DtFamily>(
        "dt",
        &models,
        &datasets,
        &names,
        cfg.samples,
        &mut rows,
    );
    let (models, datasets, names) = cluster_collection();
    run_family::<focus_core::family::ClusterFamily>(
        "cluster",
        &models,
        &datasets,
        &names,
        cfg.samples,
        &mut rows,
    );

    // JSON lines to stdout (the `BENCH_matrix.json` payload), the human
    // table to stderr so a redirect stays machine-readable.
    eprintln!(
        "{:>8}  {:>9}  {:>9}  {:>5}  {:>7}  {:>6}  {:>6}  {:>8}",
        "Family", "Regime", "Threshold", "Pairs", "Scanned", "Pruned", "Prune%", "Best s"
    );
    for r in &rows {
        let frac = r.pruned as f64 / r.n_pairs as f64;
        println!(
            "{{\"bench\":\"matrix\",\"family\":\"{}\",\"regime\":\"{}\",\"threshold\":{},\
             \"pairs\":{},\"scanned\":{},\"pruned\":{},\"prune_fraction\":{:.4},\"secs\":{:.6}}}",
            r.family, r.regime, r.threshold, r.n_pairs, r.scanned, r.pruned, frac, r.secs
        );
        eprintln!(
            "{:>8}  {:>9}  {:>9.4}  {:>5}  {:>7}  {:>6}  {:>6.2}  {:>8.4}",
            r.family, r.regime, r.threshold, r.n_pairs, r.scanned, r.pruned, frac, r.secs
        );
    }
}
