//! **Extension E1** — the δ* metric embedding of Section 4.1.1.
//!
//! Theorem 4.2 makes δ* a metric on models, so a *collection* of datasets
//! can be placed in a low-dimensional space for visual comparison — without
//! a single dataset scan. This binary mines the Figure 13 dataset family,
//! computes the pairwise δ*(g_sum) matrix from the models alone, runs
//! classical MDS, and prints 2-D coordinates plus the embedding stress.
//!
//! Expected shape: the same-process dataset `D(1)` lands near `D`; the
//! `patlen`-drifted processes form their own distant group; the `D+δ`
//! variants hug `D`.

use focus_bench::runner::mine;
use focus_bench::{fmt, print_table, ExpConfig};
use focus_core::embed::DistanceMatrix;
use focus_core::model::LitsModel;
use focus_data::assoc::{AssocGen, AssocGenParams};

const MINSUP: f64 = 0.01;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let n = cfg.base_rows();
    let block = (n / 20).max(50);
    eprintln!("# δ* embedding of the Figure 13 dataset family ({n} transactions)");

    let base_gen = AssocGen::new(AssocGenParams::paper(4000, 4.0), cfg.seed);
    let d = base_gen.generate(n, cfg.seed ^ 0xD);
    let processes = [
        AssocGenParams::paper(6000, 4.0),
        AssocGenParams::paper(4000, 5.0),
        AssocGenParams::paper(5000, 5.0),
    ];

    let mut names: Vec<String> = vec!["D".into()];
    let mut models: Vec<LitsModel> = vec![mine(&d, MINSUP)];

    names.push("D(1)".into());
    models.push(mine(&base_gen.generate(n / 2, cfg.seed ^ 0x11), MINSUP));
    for (i, p) in processes.iter().enumerate() {
        let g = AssocGen::new(*p, cfg.seed.wrapping_add(100 + i as u64));
        names.push(format!("D({})", i + 2));
        models.push(mine(&g.generate(n, cfg.seed ^ (0x22 + i as u64)), MINSUP));
    }
    for (i, p) in processes.iter().enumerate() {
        let g = AssocGen::new(*p, cfg.seed.wrapping_add(100 + i as u64));
        let delta = g.generate(block, cfg.seed ^ (0x33 + i as u64));
        names.push(format!("D+δ({})", i + 5));
        models.push(mine(&d.concat(&delta), MINSUP));
    }

    // δ* is computed from the models only — no dataset scans.
    let dist = DistanceMatrix::from_lits_models(&models);
    let coords = dist.embed(2);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        rows.push(vec![
            name.clone(),
            fmt(coords[i][0]),
            fmt(coords[i][1]),
            fmt(dist.get(0, i)),
        ]);
        if cfg.json {
            println!(
                "{{\"embed\":{{\"name\":\"{name}\",\"x\":{},\"y\":{},\"dstar_to_D\":{}}}}}",
                coords[i][0],
                coords[i][1],
                dist.get(0, i)
            );
        }
    }
    print_table(&["Dataset", "x", "y", "δ* to D"], &rows);
    println!("\nembedding stress: {:.4}", dist.stress(&coords));

    // Sanity summary printed for the reader: grouping structure.
    let euclid = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let d_to_d1 = euclid(&coords[0], &coords[1]);
    let d_to_d3 = euclid(&coords[0], &coords[3]);
    println!(
        "same-process D(1) sits {:.1}× closer to D than the drifted D(3)",
        d_to_d3 / d_to_d1.max(1e-12)
    );
}
