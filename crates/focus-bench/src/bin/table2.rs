//! **Table 2** — dt-models: % significance of the decrease in sample
//! deviation when moving from sample fraction `s_i` to `s_{i+1}`.
//!
//! Workload: the paper's `1M.F1` dataset (scaled by `--scale`), CART trees,
//! `--samples` sample-deviation values per fraction, Wilcoxon rank-sum
//! between adjacent fractions.

use focus_bench::runner::{adjacent_significance, dt_sd_sets, SAMPLE_FRACTIONS};
use focus_bench::{fmt_sig, print_table, ExpConfig};
use focus_data::classify::{ClassifyFn, ClassifyGen};

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let gen = ClassifyGen::new(ClassifyFn::F1);
    let n = cfg.base_rows();
    eprintln!(
        "# Table 2: dataset {} (scaled to {n} tuples), {} samples/fraction",
        gen.dataset_name(1_000_000),
        cfg.samples
    );
    let data = gen.generate(n, cfg.seed);

    let fractions: Vec<f64> = SAMPLE_FRACTIONS[..10].to_vec();
    let sets = dt_sd_sets(&data, &fractions, cfg.samples, cfg.seed);
    let sig = adjacent_significance(&sets);

    let headers: Vec<String> = sets.iter().map(|(sf, _)| format!("{sf}")).collect();
    let header_refs: Vec<&str> = std::iter::once("Sample Fraction")
        .chain(headers.iter().map(|s| s.as_str()))
        .collect();
    let mut row = vec!["Significance".to_string()];
    for (i, _) in sets.iter().enumerate() {
        if i < sig.len() {
            row.push(fmt_sig(sig[i].1));
        } else {
            row.push("-".to_string());
        }
    }
    print_table(&header_refs, &[row.clone()]);

    if cfg.json {
        for (i, (sf, s)) in sig.iter().enumerate() {
            println!(
                "{{\"table\":2,\"sf_from\":{sf},\"sf_to\":{},\"significance\":{s}}}",
                sets[i + 1].0
            );
        }
    }
}
