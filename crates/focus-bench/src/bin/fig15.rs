//! **Figure 15** — misclassification error versus deviation.
//!
//! For each dataset in the Figure 14 family (minus the same-process
//! control), plot the misclassification error of the tree built on `D`
//! w.r.t. the second dataset against `δ(f_a, g_sum)` between the two
//! datasets. The paper reports "a strong positive correlation"; we print
//! the scatter points and the Pearson correlation coefficient.

use focus_bench::runner::fit_dt;
use focus_bench::{fmt, print_table, ExpConfig};
use focus_core::data::LabeledTable;
use focus_core::deviation::dt_deviation;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::monitor::misclassification_error;
use focus_data::classify::{ClassifyFn, ClassifyGen};
use focus_stats::describe::pearson;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let n = cfg.base_rows();
    let block = (n / 20).max(50);
    eprintln!("# Figure 15: ME vs deviation, D = 1M.F1 scaled to {n}");

    let d = ClassifyGen::new(ClassifyFn::F1).generate(n, cfg.seed ^ 0xD);
    let drift_fns = [ClassifyFn::F2, ClassifyFn::F3, ClassifyFn::F4];

    let mut family: Vec<(String, LabeledTable)> = Vec::new();
    for (i, f) in drift_fns.iter().enumerate() {
        family.push((
            format!("D({})", i + 2),
            ClassifyGen::new(*f).generate(n, cfg.seed ^ (0x22 + i as u64)),
        ));
    }
    for (i, f) in drift_fns.iter().enumerate() {
        let delta = ClassifyGen::new(*f).generate(block, cfg.seed ^ (0x33 + i as u64));
        family.push((format!("δ({})", i + 5), d.concat(&delta)));
    }

    let m_d = fit_dt(&d);
    let mut devs = Vec::new();
    let mut mes = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, other) in &family {
        let m_o = fit_dt(other);
        let dev = dt_deviation(&m_d, &d, &m_o, other, DiffFn::Absolute, AggFn::Sum).value;
        let me = misclassification_error(&m_d, other);
        devs.push(dev);
        mes.push(me);
        if cfg.json {
            println!("{{\"figure\":15,\"dataset\":\"{label}\",\"deviation\":{dev},\"me\":{me}}}");
        }
        rows.push(vec![label.clone(), fmt(dev), fmt(me)]);
    }
    print_table(&["Dataset", "Deviation", "ME"], &rows);
    let r = pearson(&devs, &mes);
    println!("\nPearson correlation (deviation, ME): {r:.4}");
    if cfg.json {
        println!("{{\"figure\":15,\"pearson\":{r}}}");
    }
}
