//! **Ablation A2** — the GCR versus coarser common refinements
//! (empirical witness of Theorems 4.1 and 4.3: the greatest common
//! refinement gives the *least* deviation over all common refinements).
//!
//! For lits-models, any superset of the GCR (union of the structures) is a
//! common refinement; we compare the deviation over the GCR against the
//! deviation over refinements padded with extra itemsets, and over dt
//! overlays further split by gratuitous extra boundaries.

use focus_bench::runner::{fit_dt, mine};
use focus_bench::{fmt, print_table, ExpConfig};
use focus_core::deviation::{deviation_fixed, dt_deviation, lits_deviation, lits_deviation_over};
use focus_core::diff::{AggFn, DiffFn};
use focus_core::gcr::{gcr_lits, gcr_partition};
use focus_core::model::count_partition;
use focus_core::region::{AttrConstraint, BoxRegion, Itemset};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::classify::{ClassifyFn, ClassifyGen};

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let n = cfg.base_rows();
    eprintln!("# Ablation: GCR vs finer common refinements ({n} rows)");
    let mut rows: Vec<Vec<String>> = Vec::new();

    // ---- lits: pad the GCR with extra itemsets ------------------------
    let g1 = AssocGen::new(AssocGenParams::paper(4000, 4.0), cfg.seed);
    let g2 = AssocGen::new(AssocGenParams::paper(4000, 5.0), cfg.seed + 1);
    let d1 = g1.generate(n, cfg.seed ^ 1);
    let d2 = g2.generate(n, cfg.seed ^ 2);
    let m1 = mine(&d1, 0.01);
    let m2 = mine(&d2, 0.01);
    let gcr_value = lits_deviation(&m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;

    // A finer refinement: the GCR plus every pairwise union of GCR
    // itemsets (capped), i.e. strictly more regions.
    let gcr = gcr_lits(m1.itemsets(), m2.itemsets());
    let mut padded: Vec<Itemset> = gcr.clone();
    'outer: for (i, a) in gcr.iter().enumerate() {
        for b in gcr.iter().skip(i + 1) {
            let u = a.union(b);
            if u.len() <= 4 && !padded.contains(&u) {
                padded.push(u);
                if padded.len() >= gcr.len() + 200 {
                    break 'outer;
                }
            }
        }
    }
    padded.sort();
    padded.dedup();
    let padded_value =
        lits_deviation_over(&padded, &m1, &d1, &m2, &d2, DiffFn::Absolute, AggFn::Sum).value;
    rows.push(vec![
        "lits".into(),
        format!("{} regions", gcr.len()),
        fmt(gcr_value),
        format!("{} regions", padded.len()),
        fmt(padded_value),
        (gcr_value <= padded_value + 1e-9).to_string(),
    ]);
    if cfg.json {
        println!(
            "{{\"ablation\":\"gcr\",\"class\":\"lits\",\"gcr\":{gcr_value},\"finer\":{padded_value}}}"
        );
    }

    // ---- dt: split every GCR cell with an extra hyperplane ------------
    let t1_data = ClassifyGen::new(ClassifyFn::F1).generate(n, cfg.seed ^ 3);
    let t2_data = ClassifyGen::new(ClassifyFn::F2).generate(n, cfg.seed ^ 4);
    let m1 = fit_dt(&t1_data);
    let m2 = fit_dt(&t2_data);
    let gcr_value = dt_deviation(&m1, &t1_data, &m2, &t2_data, DiffFn::Absolute, AggFn::Sum).value;

    // A strictly finer common refinement: cut the overlay once more with a
    // gratuitous salary = 85K hyperplane. Every original cell is the union
    // of its (at most two) pieces, so measures still add up — a valid
    // common refinement in the sense of Definition 3.4.
    let schema = t1_data.table.schema();
    let salary = schema.index_of("salary").expect("salary attribute");
    let cells = gcr_partition(m1.leaves(), m2.leaves());
    let mut finer: Vec<BoxRegion> = Vec::new();
    for c in &cells {
        let mut lo_side = c.region.clone();
        let mut hi_side = c.region.clone();
        if let AttrConstraint::Interval { lo, hi } = c.region.constraints[salary] {
            const CUT: f64 = 85_000.0;
            if lo < CUT && CUT < hi {
                lo_side.constraints[salary] = AttrConstraint::Interval { lo, hi: CUT };
                hi_side.constraints[salary] = AttrConstraint::Interval { lo: CUT, hi };
                finer.push(lo_side);
                finer.push(hi_side);
                continue;
            }
        }
        finer.push(c.region.clone());
    }
    let k = t1_data.n_classes;
    let counts1 = count_partition(&t1_data, &finer, k);
    let counts2 = count_partition(&t2_data, &finer, k);
    let finer_value = deviation_fixed(
        &counts1,
        &counts2,
        t1_data.len() as u64,
        t2_data.len() as u64,
        DiffFn::Absolute,
        AggFn::Sum,
    );
    rows.push(vec![
        "dt".into(),
        format!("{} cells", cells.len()),
        fmt(gcr_value),
        format!("{} cells", finer.len()),
        fmt(finer_value),
        (gcr_value <= finer_value + 1e-9).to_string(),
    ]);
    if cfg.json {
        println!(
            "{{\"ablation\":\"gcr\",\"class\":\"dt\",\"gcr\":{gcr_value},\"finer\":{finer_value}}}"
        );
    }

    print_table(
        &[
            "Class",
            "GCR size",
            "δ over GCR",
            "Finer refinement",
            "δ over finer",
            "GCR ≤ finer (Thm 4.1/4.3)",
        ],
        &rows,
    );
}
