//! Registry storage-tier baseline — records `BENCH_registry.json`.
//!
//! Three regimes:
//!
//! * **load** — one lits snapshot (transactions + mined model) per scale,
//!   persisted as text and as the binary columnar format, then loaded
//!   back through each storage path: the text readers, an owned
//!   `read`-to-`Vec` binary decode, and the memory-mapped zero-copy
//!   decode ([`focus_registry::MappedBytes::open`]). Every decoded
//!   artifact is equality-checked against the text-loaded baseline
//!   before its timing is accepted.
//! * **index** — the binary transactions section decoded into a vertical
//!   tid-bitset index both ways: `decode_then_build` materialises a
//!   `TransactionSet` first and builds `VerticalIndex` from it, while
//!   `decode_to_index` is the one-pass
//!   [`focus_registry::binfmt::decode_transactions_to_index`] seam that
//!   `Registry::load_snapshot_source` uses. Both are equality-checked
//!   against an index built from the original rows; `speedup` is
//!   decode-then-build seconds over this row's seconds.
//! * **matrix** — the same snapshot collection in a classic flat/text
//!   registry, a flat/binary one and a sharded/binary one, timing
//!   [`Registry::matrix_of`] end to end (manifest + model + dataset IO
//!   plus the deviation scans) and asserting identical scan/prune
//!   counts across tiers.
//!
//! JSON lines go to stdout (redirect into `BENCH_registry.json`); the
//! human-readable table goes to stderr. `speedup` is text-load seconds
//! over this row's seconds, so the acceptance bar — binary and mmap
//! loads at least 5× faster than text at the largest scale — can be
//! read straight off the largest-scale rows.

use focus_bench::{timed, ExpConfig};
use focus_core::data::TransactionSet;
use focus_core::family::LitsFamily;
use focus_core::model::LitsModel;
use focus_core::persist::{read_lits_model, write_lits_model};
use focus_core::vertical::VerticalIndex;
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_data::io::{read_transactions, write_transactions};
use focus_mining::{Apriori, AprioriParams};
use focus_registry::binfmt::{
    decode_lits_model, decode_transactions, decode_transactions_to_index, encode_lits_model,
    encode_transactions,
};
use focus_registry::{
    mmap_active, MappedBytes, MatrixParams, Registry, RegistryLayout, StorageFormat,
};
use std::fs::File;
use std::path::{Path, PathBuf};

const MINSUP: f64 = 0.05;

struct Row {
    regime: &'static str,
    format: &'static str,
    txns: usize,
    bytes: u64,
    secs: f64,
    speedup: f64,
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus-registry-baseline-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn snapshot(n_txns: usize, pattern_seed: u64, seed: u64) -> (TransactionSet, LitsModel) {
    let data = AssocGen::new(AssocGenParams::paper(500, 4.0), pattern_seed).generate(n_txns, seed);
    let model = Apriori::new(AprioriParams::with_minsup(MINSUP).max_len(6)).mine(&data);
    (data, model)
}

/// Best-of-`samples` minimum of a load routine, checking each result
/// against the in-memory originals so a wrong read can never post a time.
fn best_of(
    samples: usize,
    data: &TransactionSet,
    model: &LitsModel,
    load: impl Fn() -> (TransactionSet, LitsModel),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let ((d, m), secs) = timed(&load);
        assert_eq!(&d, data, "loaded dataset differs from the original");
        assert_eq!(&m, model, "loaded model differs from the original");
        best = best.min(secs);
    }
    best
}

/// The text vs binary vs mmap load comparison at one scale.
fn run_load(dir: &Path, n_txns: usize, samples: usize, rows: &mut Vec<Row>) {
    let (data, model) = snapshot(n_txns, 1, 100 + n_txns as u64);

    let data_txt = dir.join(format!("{n_txns}.txt"));
    let model_txt = dir.join(format!("{n_txns}.model"));
    write_transactions(&data, File::create(&data_txt).unwrap()).unwrap();
    write_lits_model(&model, File::create(&model_txt).unwrap()).unwrap();
    let data_bin = dir.join(format!("{n_txns}.bin"));
    let model_bin = dir.join(format!("{n_txns}.model.bin"));
    std::fs::write(&data_bin, encode_transactions(&data)).unwrap();
    std::fs::write(&model_bin, encode_lits_model(&model)).unwrap();

    let text_bytes = data_txt.metadata().unwrap().len() + model_txt.metadata().unwrap().len();
    let bin_bytes = data_bin.metadata().unwrap().len() + model_bin.metadata().unwrap().len();

    let text = best_of(samples, &data, &model, || {
        (
            read_transactions(File::open(&data_txt).unwrap()).unwrap(),
            read_lits_model(File::open(&model_txt).unwrap()).unwrap(),
        )
    });
    let owned = best_of(samples, &data, &model, || {
        (
            decode_transactions(&MappedBytes::read_owned(&data_bin).unwrap()).unwrap(),
            decode_lits_model(&MappedBytes::read_owned(&model_bin).unwrap()).unwrap(),
        )
    });
    let mmap = best_of(samples, &data, &model, || {
        (
            decode_transactions(&MappedBytes::open(&data_bin).unwrap()).unwrap(),
            decode_lits_model(&MappedBytes::open(&model_bin).unwrap()).unwrap(),
        )
    });

    for (format, bytes, secs) in [
        ("text", text_bytes, text),
        ("bin", bin_bytes, owned),
        ("mmap", bin_bytes, mmap),
    ] {
        rows.push(Row {
            regime: "load",
            format,
            txns: n_txns,
            bytes,
            secs,
            speedup: text / secs,
        });
    }
}

/// Decode-then-build vs the one-pass decode-to-index seam at one scale.
fn run_index(dir: &Path, n_txns: usize, samples: usize, rows: &mut Vec<Row>) {
    let (data, _) = snapshot(n_txns, 1, 100 + n_txns as u64);
    let path = dir.join(format!("{n_txns}.index.bin"));
    std::fs::write(&path, encode_transactions(&data)).unwrap();
    let bytes = path.metadata().unwrap().len();
    let reference = VerticalIndex::build(&data);

    let best_of_index = |build: &dyn Fn() -> VerticalIndex| {
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let (index, secs) = timed(build);
            assert_eq!(index, reference, "decoded index differs from the original");
            best = best.min(secs);
        }
        best
    };
    let then_build = best_of_index(&|| {
        VerticalIndex::build(&decode_transactions(&MappedBytes::open(&path).unwrap()).unwrap())
    });
    let to_index = best_of_index(&|| {
        decode_transactions_to_index(&MappedBytes::open(&path).unwrap()).unwrap()
    });

    for (format, secs) in [
        ("decode_then_build", then_build),
        ("decode_to_index", to_index),
    ] {
        rows.push(Row {
            regime: "index",
            format,
            txns: n_txns,
            bytes,
            secs,
            speedup: then_build / secs,
        });
    }
}

/// End-to-end `matrix_of` wall time over the three storage tiers.
fn run_matrix(dir: &Path, n_txns: usize, samples: usize, rows: &mut Vec<Row>) {
    let snapshots: Vec<(String, TransactionSet)> = (0..6u64)
        .map(|i| {
            let (data, _) = snapshot(n_txns, 1 + (i % 2) * 8, 200 + i);
            (format!("snap-{i}"), data)
        })
        .collect();
    let layouts = [
        ("text", RegistryLayout::flat_text()),
        (
            "bin",
            RegistryLayout {
                shards: 0,
                format: StorageFormat::Binary,
            },
        ),
        (
            "bin-sharded",
            RegistryLayout {
                shards: 4,
                format: StorageFormat::Binary,
            },
        ),
    ];
    let params = MatrixParams::default();
    let mut baseline: Option<(f64, usize, usize)> = None;
    for (tag, layout) in layouts {
        let root = dir.join(format!("reg-{tag}"));
        let mut reg = Registry::open_or_create_with(&root, layout).unwrap();
        for (name, data) in &snapshots {
            reg.add(name, data, MINSUP).unwrap();
        }
        let reg = Registry::open(&root).unwrap();
        let mut best = f64::INFINITY;
        let mut counts = (0, 0);
        for _ in 0..samples.max(1) {
            let (matrix, secs) = timed(|| reg.matrix_of::<LitsFamily>(&params).unwrap());
            counts = (matrix.scanned(), matrix.pruned());
            best = best.min(secs);
        }
        let (text_secs, scanned, pruned) = *baseline.get_or_insert((best, counts.0, counts.1));
        assert_eq!(
            counts,
            (scanned, pruned),
            "{tag}: matrix scan/prune counts diverge from the text tier"
        );
        rows.push(Row {
            regime: "matrix",
            format: tag,
            txns: n_txns * snapshots.len(),
            bytes: 0,
            secs: best,
            speedup: text_secs / best,
        });
    }
}

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let dir = scratch();

    // Paper-fraction scales: `--scale 0.02` (the default) makes the
    // largest snapshot 20K transactions of the paper's 1M-row base.
    let base = ((1_000_000.0 * cfg.scale) as usize).max(100);
    let scales = [base / 10, base / 3, base];

    let mut rows = Vec::new();
    for n in scales {
        run_load(&dir, n, cfg.samples, &mut rows);
    }
    for n in scales {
        run_index(&dir, n, cfg.samples, &mut rows);
    }
    run_matrix(&dir, base / 5, cfg.samples, &mut rows);
    std::fs::remove_dir_all(&dir).ok();

    // JSON lines to stdout (the `BENCH_registry.json` payload), the
    // human table to stderr so a redirect stays machine-readable.
    eprintln!("mmap active: {}", mmap_active());
    eprintln!(
        "{:>8}  {:>12}  {:>8}  {:>9}  {:>10}  {:>8}",
        "Regime", "Format", "Txns", "Bytes", "Best s", "Speedup"
    );
    for r in &rows {
        println!(
            "{{\"bench\":\"registry\",\"regime\":\"{}\",\"format\":\"{}\",\"txns\":{},\
             \"bytes\":{},\"mmap_active\":{},\"secs\":{:.6},\"speedup\":{:.2}}}",
            r.regime,
            r.format,
            r.txns,
            r.bytes,
            mmap_active(),
            r.secs,
            r.speedup
        );
        eprintln!(
            "{:>8}  {:>12}  {:>8}  {:>9}  {:>10.6}  {:>8.2}",
            r.regime, r.format, r.txns, r.bytes, r.secs, r.speedup
        );
    }
}
