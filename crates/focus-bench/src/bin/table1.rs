//! **Table 1** — lits-models: % significance of the increase in
//! representativeness when moving from sample fraction `s_i` to `s_{i+1}`.
//!
//! Workload: the paper's `1M.20L.1K.4000pats.4patlen` dataset (scaled by
//! `--scale`), mined at 1% minimum support; `--samples` sample-deviation
//! values per fraction; Wilcoxon rank-sum between adjacent fractions.

use focus_bench::runner::{adjacent_significance, lits_sd_sets, SAMPLE_FRACTIONS};
use focus_bench::{fmt_sig, print_table, ExpConfig};
use focus_data::assoc::{AssocGen, AssocGenParams};

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let params = AssocGenParams::paper(4000, 4.0);
    let n = cfg.base_rows();
    eprintln!(
        "# Table 1: dataset {} (scaled to {n} transactions), minsup 1%, {} samples/fraction",
        params.dataset_name(1_000_000),
        cfg.samples
    );
    let gen = AssocGen::new(params, cfg.seed);
    let data = gen.generate(n, cfg.seed.wrapping_add(1));

    // The paper's Table 1 compares s_i against s_{i+1} for SF 0.01 … 0.8.
    let fractions: Vec<f64> = SAMPLE_FRACTIONS[..10].to_vec();
    let sets = lits_sd_sets(&data, 0.01, &fractions, cfg.samples, cfg.seed);
    let sig = adjacent_significance(&sets);

    let headers: Vec<String> = sets.iter().map(|(sf, _)| format!("{sf}")).collect();
    let header_refs: Vec<&str> = std::iter::once("Sample Fraction")
        .chain(headers.iter().map(|s| s.as_str()))
        .collect();
    let mut row = vec!["Significance".to_string()];
    for (i, _) in sets.iter().enumerate() {
        if i < sig.len() {
            row.push(fmt_sig(sig[i].1));
        } else {
            row.push("-".to_string());
        }
    }
    print_table(&header_refs, &[row.clone()]);

    if cfg.json {
        for (i, (sf, s)) in sig.iter().enumerate() {
            println!(
                "{{\"table\":1,\"sf_from\":{sf},\"sf_to\":{},\"significance\":{s}}}",
                sets[i + 1].0
            );
        }
    }
}
