//! **Figures 7–9** — lits-models: sample deviation (SD) versus sample
//! fraction (SF).
//!
//! One figure per dataset size — 1M, 0.75M, 0.5M transactions (scaled by
//! `--scale`) — each with three curves for minimum support 1%, 0.8%, 0.6%,
//! all using `δ(f_a, g_sum)`. Each printed point is the mean SD over
//! `--samples` draws.
//!
//! Expected shape (paper's conclusions): SD falls steeply until SF ≈ 0.3
//! and flattens after; lower minimum support shifts every curve upward.

use focus_bench::runner::{lits_sd_sets, SAMPLE_FRACTIONS};
use focus_bench::{fmt, print_table, ExpConfig};
use focus_data::assoc::{AssocGen, AssocGenParams};
use focus_stats::describe::mean;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let sizes = [
        (1_000_000usize, "Figure 7"),
        (750_000, "Figure 8"),
        (500_000, "Figure 9"),
    ];
    let minsups = [0.01, 0.008, 0.006];
    let params = AssocGenParams::paper(4000, 4.0);
    let gen = AssocGen::new(params, cfg.seed);

    for (paper_rows, figure) in sizes {
        let n = cfg.rows(paper_rows);
        eprintln!(
            "# {figure}: {} (scaled to {n}), mean SD over {} samples",
            params.dataset_name(paper_rows),
            cfg.samples
        );
        let data = gen.generate(n, cfg.seed ^ paper_rows as u64);
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut curves: Vec<(f64, Vec<(f64, f64)>)> = Vec::new();
        for &ms in &minsups {
            let sets = lits_sd_sets(&data, ms, &SAMPLE_FRACTIONS, cfg.samples, cfg.seed);
            let curve: Vec<(f64, f64)> = sets.iter().map(|(sf, v)| (*sf, mean(v))).collect();
            curves.push((ms, curve));
        }
        for (i, &sf) in SAMPLE_FRACTIONS.iter().enumerate() {
            let mut row = vec![format!("{sf}")];
            for (_, curve) in &curves {
                row.push(fmt(curve[i].1));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("SF".to_string())
            .chain(minsups.iter().map(|ms| format!("f_a,g_sum;minSup={ms}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!(
            "== {figure}: SD vs SF, {} ==",
            params.dataset_name(paper_rows)
        );
        print_table(&header_refs, &rows);
        println!();

        if cfg.json {
            for (ms, curve) in &curves {
                for (sf, sd) in curve {
                    println!("{{\"figure\":\"{figure}\",\"minsup\":{ms},\"sf\":{sf},\"sd\":{sd}}}");
                }
            }
        }
    }
}
