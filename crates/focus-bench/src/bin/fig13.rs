//! **Figure 13** — lits-models: deviation of a family of datasets from
//! `D = 1M.20L.1K.4000pats.4patlen`, with bootstrap significance, the
//! upper bound δ*, and the time to compute δ versus δ*.
//!
//! Dataset family (scaled by `--scale`):
//! * `D(1)` — same generating process as `D`, half the size (expected:
//!   small deviation, NOT significant);
//! * `D(2)`…`D(4)` — different processes: (6000 pats, 4 patlen),
//!   (4000, 5), (5000, 5) (expected: large, significant deviations; the
//!   `patlen` parameter has the larger influence);
//! * `D+δ(5)`…`D+δ(7)` — `D` extended with a 5%-size block from the three
//!   processes above (expected: the `patlen`-changing blocks (6),(7) are
//!   significant, the `pats`-only block (5) is not).
//!
//! Columns: δ(f_a,g_sum), %sig (bootstrap over `--reps` replicates), δ*,
//! time for δ, time for δ*.

use focus_bench::runner::mine;
use focus_bench::{fmt, fmt_sig, print_table, timed, ExpConfig};
use focus_core::bound::lits_upper_bound;
use focus_core::data::TransactionSet;
use focus_core::deviation::lits_deviation;
use focus_core::diff::{AggFn, DiffFn};
use focus_core::qualify::qualify_transactions;
use focus_data::assoc::{AssocGen, AssocGenParams};

const MINSUP: f64 = 0.01;

fn main() {
    let cfg = ExpConfig::parse(std::env::args().skip(1));
    let n = cfg.base_rows();
    let block = (n / 20).max(50); // the paper's 50K blocks on a 1M base
    let base_params = AssocGenParams::paper(4000, 4.0);
    eprintln!(
        "# Figure 13: D = {} (scaled to {n}), minsup 1%, {} bootstrap reps",
        base_params.dataset_name(1_000_000),
        cfg.reps
    );

    let base_gen = AssocGen::new(base_params, cfg.seed);
    let d = base_gen.generate(n, cfg.seed ^ 0xD);

    let processes = [
        AssocGenParams::paper(6000, 4.0),
        AssocGenParams::paper(4000, 5.0),
        AssocGenParams::paper(5000, 5.0),
    ];

    // (label, dataset)
    let mut family: Vec<(String, TransactionSet)> = Vec::new();
    family.push(("D(1)".into(), base_gen.generate(n / 2, cfg.seed ^ 0x11)));
    for (i, p) in processes.iter().enumerate() {
        let g = AssocGen::new(*p, cfg.seed.wrapping_add(100 + i as u64));
        family.push((
            format!("D({})", i + 2),
            g.generate(n, cfg.seed ^ (0x22 + i as u64)),
        ));
    }
    for (i, p) in processes.iter().enumerate() {
        let g = AssocGen::new(*p, cfg.seed.wrapping_add(100 + i as u64));
        let delta = g.generate(block, cfg.seed ^ (0x33 + i as u64));
        family.push((format!("D+δ({})", i + 5), d.concat(&delta)));
    }

    let m_d = mine(&d, MINSUP);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (label, other) in &family {
        let m_o = mine(other, MINSUP);
        let (dev, t_delta) =
            timed(|| lits_deviation(&m_d, &d, &m_o, other, DiffFn::Absolute, AggFn::Sum).value);
        let (bound, t_bound) = timed(|| lits_upper_bound(&m_d, &m_o, AggFn::Sum));
        let sig = if cfg.reps > 0 {
            let q = qualify_transactions(&d, other, dev, cfg.reps, cfg.seed ^ 0x55, |a, b| {
                let ma = mine(a, MINSUP);
                let mb = mine(b, MINSUP);
                lits_deviation(&ma, a, &mb, b, DiffFn::Absolute, AggFn::Sum).value
            });
            fmt_sig(q.significance_percent)
        } else {
            "-".to_string()
        };
        if cfg.json {
            println!(
                "{{\"figure\":13,\"dataset\":\"{label}\",\"delta\":{dev},\"sig\":\"{sig}\",\"bound\":{bound},\"t_delta\":{t_delta},\"t_bound\":{t_bound}}}"
            );
        }
        rows.push(vec![
            label.clone(),
            fmt(dev),
            sig,
            fmt(bound),
            format!("{t_delta:.3}"),
            format!("{t_bound:.5}"),
        ]);
    }
    print_table(
        &["Dataset", "δ", "%sig(δ)", "δ*", "Time δ (s)", "Time δ* (s)"],
        &rows,
    );
}
