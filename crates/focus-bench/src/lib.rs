//! # focus-bench — experiment harness for the FOCUS paper
//!
//! One binary per table/figure of the paper's evaluation (Sections 6–7),
//! plus Criterion micro-benchmarks. Every binary prints the same rows or
//! series the paper reports, at a configurable scale.
//!
//! | binary        | reproduces                    |
//! |---------------|-------------------------------|
//! | `table1`      | Table 1 — lits sample-size significance (Wilcoxon) |
//! | `table2`      | Table 2 — dt sample-size significance (Wilcoxon)   |
//! | `fig7_9`      | Figures 7–9 — lits SD vs SF curves                 |
//! | `fig10_12`    | Figures 10–12 — dt SD vs SF curves                 |
//! | `fig13`       | Figure 13 — lits deviations, %sig, δ*, timings     |
//! | `fig14`       | Figure 14 — dt deviations and %sig                 |
//! | `fig15`       | Figure 15 — ME vs deviation correlation            |
//! | `ablation_fg` | all four (f, g) combinations on the Fig. 13 workload |
//! | `ablation_gcr`| GCR vs coarser refinements (Theorems 4.1/4.3)      |
//! | `ablation_null`| bootstrap-null width vs dataset scale (A3)        |
//! | `embed`       | δ* metric embedding via classical MDS (Sec. 4.1.1) |
//! | `matrix_baseline` | screened vs full-scan matrix timings → `BENCH_matrix.json` |
//! | `counting_baseline` | vertical vs bitmap-scan vs hash-tree support counting → `BENCH_counting.json` |
//! | `registry_baseline` | text vs binary vs mmap snapshot loads and registry matrix wall time → `BENCH_registry.json` |
//!
//! All binaries accept `--scale <fraction>` (default 0.02 — 2% of the
//! paper's 1M-row base, i.e. 20K rows), `--samples <n>` (default 15, paper
//! 50) and `--seed <u64>`. `--full` restores the paper's scale (takes
//! hours). Results are printed as aligned text tables and, with `--json`,
//! as machine-readable JSON lines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;

pub mod collections;
pub mod config;
pub mod runner;

pub use config::ExpConfig;

/// Times a closure, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints an aligned text table: header row + data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with 4 significant decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a significance percentage the way the paper prints it
/// (two decimals, e.g. `99.99`).
pub fn fmt_sig(x: f64) -> String {
    format!("{x:.2}")
}

/// The short git commit hash of the working tree, for the machine-context
/// fields appended to bench JSON lines; `"unknown"` when git (or a repo)
/// is unavailable, so bench bins never fail over provenance.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_value_and_duration() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(0.12345678), "0.1235");
        assert_eq!(fmt_sig(99.99), "99.99");
    }

    #[test]
    fn git_commit_is_nonempty() {
        // In a checkout this is the short hash; outside one, the fallback.
        assert!(!git_commit().is_empty());
    }
}
